// Workload characterization: fitting the paper's ON-OFF model to an
// observed demand trace.
//
// The paper assumes the four-tuple (p_on, p_off, Rb, Re) is known; in a
// real cloud it must be estimated from monitoring data (the model-fitting
// line of work the paper cites: Mi et al. [5], Casale et al. [21], [22]).
// The estimator:
//
//   1. splits the samples into low/high clusters by 1-D 2-means
//   2. Rb = mean(low cluster), Rp = mean(high cluster), Re = Rp - Rb
//   3. p_on  = (# OFF -> ON transitions) / (# slots spent OFF)
//      p_off = (# ON -> OFF transitions) / (# slots spent ON)
//
// which are the maximum-likelihood estimates of the geometric dwell
// times.  Tests verify parameter recovery on synthetic traces.

#pragma once

#include <span>
#include <vector>

#include "placement/spec.h"
#include "sim/workload_gen.h"

namespace burstq {

/// Result of fitting one VM's trace.
struct FittedVm {
  VmSpec spec;              ///< recovered four-tuple
  double threshold{0.0};    ///< demand level separating OFF from ON
  std::size_t on_slots{0};  ///< samples classified ON
  std::size_t off_slots{0};
  bool bursty{true};  ///< false when the trace never leaves one level
};

/// Fits the ON-OFF model to a single demand series (one sample per slot).
/// Requires at least 2 samples.  Traces that never switch state are
/// reported with bursty = false, Re = 0 and conservative default switch
/// probabilities (1 / trace length).
FittedVm fit_onoff_from_trace(std::span<const double> demand);

/// Fits every VM of a recorded DemandTrace (trace[t][i] = demand of VM i
/// at slot t) and assembles a ProblemInstance with the given PM fleet.
ProblemInstance instance_from_traces(const DemandTrace& trace,
                                     std::vector<PmSpec> pms);

/// 1-D 2-means (Lloyd's algorithm): returns the boundary between the two
/// clusters, i.e. the midpoint of the final centroids.  Requires a
/// non-empty input; degenerate (constant) input returns that constant.
double two_means_threshold(std::span<const double> values);

}  // namespace burstq
