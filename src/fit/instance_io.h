// Problem-instance persistence: CSV round-tripping of VM and PM specs so
// consolidation inputs can be versioned, diffed and shared between the
// CLI, the benches and external tooling.
//
// VM file format:  header "p_on,p_off,rb,re", one row per VM.
// PM file format:  header "capacity",        one row per PM.

#pragma once

#include <string>
#include <vector>

#include "placement/spec.h"

namespace burstq {

/// Writes the VM specs of `inst` to `path`.
void write_vm_specs_csv(const std::string& path,
                        const std::vector<VmSpec>& vms);

/// Reads VM specs; throws InvalidArgument on malformed rows or specs that
/// fail validation.
std::vector<VmSpec> read_vm_specs_csv(const std::string& path);

/// Writes PM specs to `path`.
void write_pm_specs_csv(const std::string& path,
                        const std::vector<PmSpec>& pms);

/// Reads PM specs; throws InvalidArgument on malformed input.
std::vector<PmSpec> read_pm_specs_csv(const std::string& path);

}  // namespace burstq
