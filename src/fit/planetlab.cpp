#include "fit/planetlab.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>

#include "common/error.h"

namespace burstq {

std::vector<double> read_planetlab_file(const std::string& path,
                                        double scale) {
  BURSTQ_REQUIRE(scale > 0.0, "scale must be positive");
  std::ifstream in(path);
  BURSTQ_REQUIRE(in.is_open(), "cannot open PlanetLab trace: " + path);

  std::vector<double> demand;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Trim leading/trailing spaces (real PlanetLab files have some).
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank line
    const auto last = line.find_last_not_of(" \t");
    const std::string token = line.substr(first, last - first + 1);
    double v = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), v);
    BURSTQ_REQUIRE(res.ec == std::errc{} &&
                       res.ptr == token.data() + token.size(),
                   path + ":" + std::to_string(line_no) +
                       ": malformed utilization value '" + token + "'");
    BURSTQ_REQUIRE(v >= 0.0, path + ":" + std::to_string(line_no) +
                                 ": negative utilization");
    demand.push_back(v * scale);
  }
  BURSTQ_REQUIRE(!demand.empty(), "PlanetLab trace has no samples: " + path);
  return demand;
}

DemandTrace read_planetlab_traces(const std::vector<std::string>& files,
                                  double scale) {
  BURSTQ_REQUIRE(!files.empty(), "no trace files given");
  std::vector<std::vector<double>> columns;
  columns.reserve(files.size());
  std::size_t shortest = static_cast<std::size_t>(-1);
  for (const auto& f : files) {
    columns.push_back(read_planetlab_file(f, scale));
    shortest = std::min(shortest, columns.back().size());
  }
  BURSTQ_REQUIRE(shortest >= 2, "traces too short after truncation");

  DemandTrace trace(shortest, std::vector<double>(files.size()));
  for (std::size_t i = 0; i < columns.size(); ++i)
    for (std::size_t t = 0; t < shortest; ++t) trace[t][i] = columns[i][t];
  return trace;
}

void write_planetlab_file(const std::string& path,
                          const std::vector<double>& demand, double scale) {
  BURSTQ_REQUIRE(scale > 0.0, "scale must be positive");
  BURSTQ_REQUIRE(!demand.empty(), "refusing to write an empty trace");
  std::ofstream out(path);
  BURSTQ_REQUIRE(out.is_open(), "cannot open for writing: " + path);
  for (double d : demand)
    out << static_cast<long long>(std::llround(d / scale)) << '\n';
}

}  // namespace burstq
