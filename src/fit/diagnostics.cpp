#include "fit/diagnostics.h"

#include <cmath>

#include "common/error.h"
#include "markov/burstiness.h"

namespace burstq {

BurstinessDiagnostics diagnose_burstiness(std::span<const double> demand,
                                          std::size_t idc_window) {
  BURSTQ_REQUIRE(idc_window >= 2, "IDC window must span at least 2 slots");
  BURSTQ_REQUIRE(demand.size() >= 4 * idc_window,
                 "series too short for IDC estimation");

  BurstinessDiagnostics d;
  d.lag1_acf = empirical_autocorrelation(demand, 1);

  const FittedVm fit = fit_onoff_from_trace(demand);
  d.fitted_decay = correlation_decay(fit.spec.onoff);

  // Non-overlapping window sums.
  const std::size_t windows = demand.size() / idc_window;
  double sum = 0.0;
  double sumsq = 0.0;
  for (std::size_t w = 0; w < windows; ++w) {
    double s = 0.0;
    for (std::size_t t = 0; t < idc_window; ++t)
      s += demand[w * idc_window + t];
    sum += s;
    sumsq += s * s;
  }
  const double mean = sum / static_cast<double>(windows);
  const double var =
      sumsq / static_cast<double>(windows) - mean * mean;
  BURSTQ_REQUIRE(mean > 0.0, "IDC needs a positive-mean series");
  d.empirical_idc = var / mean;

  d.bursty = fit.bursty && d.lag1_acf > 0.5;
  return d;
}

bool is_bursty(std::span<const double> demand, double acf_threshold) {
  // A constant series has undefined ACF; treat as non-bursty.
  double first = demand.empty() ? 0.0 : demand[0];
  bool constant = true;
  for (double x : demand) {
    if (x != first) {
      constant = false;
      break;
    }
  }
  if (constant) return false;
  return empirical_autocorrelation(demand, 1) > acf_threshold;
}

double acf_fit_error(std::span<const double> demand, const FittedVm& fit,
                     std::size_t max_lag) {
  BURSTQ_REQUIRE(max_lag >= 1, "need at least one lag");
  BURSTQ_REQUIRE(demand.size() > max_lag, "series shorter than max lag");
  double err = 0.0;
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    const double empirical = empirical_autocorrelation(demand, lag);
    const double model = demand_autocorrelation(fit.spec.onoff, lag);
    err += std::abs(empirical - model);
  }
  return err / static_cast<double>(max_lag);
}

}  // namespace burstq
