#include "fit/instance_io.h"

#include <charconv>
#include <fstream>

#include "common/csv.h"
#include "common/error.h"

namespace burstq {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

double parse_double(const std::string& s, std::size_t line_no) {
  double v = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  BURSTQ_REQUIRE(res.ec == std::errc{} && res.ptr == s.data() + s.size(),
                 "line " + std::to_string(line_no) +
                     ": malformed numeric field '" + s + "'");
  return v;
}

std::vector<std::vector<double>> read_rows(const std::string& path,
                                           std::size_t arity) {
  std::ifstream in(path);
  BURSTQ_REQUIRE(in.is_open(), "cannot open spec CSV: " + path);
  std::string line;
  BURSTQ_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "spec CSV has no header: " + path);

  std::vector<std::vector<double>> rows;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.back() == '\r') line.pop_back();
    const auto fields = split_fields(line);
    BURSTQ_REQUIRE(fields.size() == arity,
                   "line " + std::to_string(line_no) + ": expected " +
                       std::to_string(arity) + " fields");
    std::vector<double> row;
    row.reserve(arity);
    for (const auto& f : fields) row.push_back(parse_double(f, line_no));
    rows.push_back(std::move(row));
  }
  BURSTQ_REQUIRE(!rows.empty(), "spec CSV has no data rows: " + path);
  return rows;
}

}  // namespace

void write_vm_specs_csv(const std::string& path,
                        const std::vector<VmSpec>& vms) {
  BURSTQ_REQUIRE(!vms.empty(), "refusing to write zero VM specs");
  CsvWriter csv(path);
  csv.row({"p_on", "p_off", "rb", "re"});
  for (const auto& v : vms) {
    csv.begin_row();
    csv.field(v.onoff.p_on).field(v.onoff.p_off).field(v.rb).field(v.re);
    csv.end_row();
  }
  csv.flush();
}

std::vector<VmSpec> read_vm_specs_csv(const std::string& path) {
  const auto rows = read_rows(path, 4);
  std::vector<VmSpec> vms;
  vms.reserve(rows.size());
  for (const auto& r : rows) {
    VmSpec v{OnOffParams{r[0], r[1]}, r[2], r[3]};
    v.validate();
    vms.push_back(v);
  }
  return vms;
}

void write_pm_specs_csv(const std::string& path,
                        const std::vector<PmSpec>& pms) {
  BURSTQ_REQUIRE(!pms.empty(), "refusing to write zero PM specs");
  CsvWriter csv(path);
  csv.row({"capacity"});
  for (const auto& p : pms) {
    csv.begin_row();
    csv.field(p.capacity);
    csv.end_row();
  }
  csv.flush();
}

std::vector<PmSpec> read_pm_specs_csv(const std::string& path) {
  const auto rows = read_rows(path, 1);
  std::vector<PmSpec> pms;
  pms.reserve(rows.size());
  for (const auto& r : rows) {
    PmSpec p{r[0]};
    p.validate();
    pms.push_back(p);
  }
  return pms;
}

}  // namespace burstq
