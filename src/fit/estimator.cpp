#include "fit/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace burstq {

double two_means_threshold(std::span<const double> values) {
  BURSTQ_REQUIRE(!values.empty(), "cannot cluster an empty series");
  const auto [lo_it, hi_it] =
      std::minmax_element(values.begin(), values.end());
  double c_lo = *lo_it;
  double c_hi = *hi_it;
  if (c_lo == c_hi) return c_lo;

  for (int iter = 0; iter < 64; ++iter) {
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    std::size_t n_lo = 0;
    std::size_t n_hi = 0;
    const double boundary = 0.5 * (c_lo + c_hi);
    for (double v : values) {
      if (v <= boundary) {
        sum_lo += v;
        ++n_lo;
      } else {
        sum_hi += v;
        ++n_hi;
      }
    }
    if (n_lo == 0 || n_hi == 0) return boundary;
    const double new_lo = sum_lo / static_cast<double>(n_lo);
    const double new_hi = sum_hi / static_cast<double>(n_hi);
    if (new_lo == c_lo && new_hi == c_hi) break;
    c_lo = new_lo;
    c_hi = new_hi;
  }
  return 0.5 * (c_lo + c_hi);
}

FittedVm fit_onoff_from_trace(std::span<const double> demand) {
  BURSTQ_REQUIRE(demand.size() >= 2, "trace too short to fit");

  FittedVm fit;
  fit.threshold = two_means_threshold(demand);

  // Classify and accumulate cluster means.
  std::vector<bool> on(demand.size());
  double sum_off = 0.0;
  double sum_on = 0.0;
  for (std::size_t t = 0; t < demand.size(); ++t) {
    on[t] = demand[t] > fit.threshold;
    if (on[t]) {
      sum_on += demand[t];
      ++fit.on_slots;
    } else {
      sum_off += demand[t];
      ++fit.off_slots;
    }
  }

  const double fallback_p =
      1.0 / static_cast<double>(demand.size());  // "rarer than observed"

  if (fit.on_slots == 0 || fit.off_slots == 0) {
    // Never switches: flat workload.  Rb is the overall mean; assume
    // non-bursty with conservative tiny switch probabilities.
    fit.bursty = false;
    fit.spec.rb = (sum_on + sum_off) / static_cast<double>(demand.size());
    fit.spec.re = 0.0;
    fit.spec.onoff = OnOffParams{fallback_p, 1.0};
    return fit;
  }

  fit.spec.rb = sum_off / static_cast<double>(fit.off_slots);
  const double rp = sum_on / static_cast<double>(fit.on_slots);
  fit.spec.re = std::max(0.0, rp - fit.spec.rb);

  // MLE of the geometric dwell parameters.  The final slot has no
  // successor, so count dwell slots among t in [0, T-2].
  std::size_t off_dwell = 0;
  std::size_t on_dwell = 0;
  std::size_t off_to_on = 0;
  std::size_t on_to_off = 0;
  for (std::size_t t = 0; t + 1 < demand.size(); ++t) {
    if (on[t]) {
      ++on_dwell;
      if (!on[t + 1]) ++on_to_off;
    } else {
      ++off_dwell;
      if (on[t + 1]) ++off_to_on;
    }
  }
  auto clamp_p = [fallback_p](std::size_t events, std::size_t dwell) {
    if (dwell == 0) return fallback_p;
    const double p =
        static_cast<double>(events) / static_cast<double>(dwell);
    return std::clamp(p, fallback_p, 1.0);
  };
  fit.spec.onoff.p_on = clamp_p(off_to_on, off_dwell);
  fit.spec.onoff.p_off = clamp_p(on_to_off, on_dwell);
  return fit;
}

ProblemInstance instance_from_traces(const DemandTrace& trace,
                                     std::vector<PmSpec> pms) {
  BURSTQ_REQUIRE(!trace.empty(), "empty trace");
  BURSTQ_REQUIRE(!pms.empty(), "need at least one PM spec");
  const std::size_t n_vms = trace.front().size();
  BURSTQ_REQUIRE(n_vms > 0, "trace has no VM columns");
  for (const auto& row : trace)
    BURSTQ_REQUIRE(row.size() == n_vms, "ragged demand trace");

  ProblemInstance inst;
  inst.pms = std::move(pms);
  inst.vms.reserve(n_vms);
  std::vector<double> series(trace.size());
  for (std::size_t i = 0; i < n_vms; ++i) {
    for (std::size_t t = 0; t < trace.size(); ++t) series[t] = trace[t][i];
    inst.vms.push_back(fit_onoff_from_trace(series).spec);
  }
  return inst;
}

}  // namespace burstq
