// Trace diagnostics: is this workload bursty, and does a fitted ON-OFF
// model actually explain the observed series?
//
// burstiness_score combines the two second-order signatures of a
// two-state modulated workload: slowly decaying autocorrelation (r close
// to 1) and an index of dispersion well above the uncorrelated baseline.
// goodness_of_fit compares an observed trace's ACF against the fitted
// model's geometric prediction over several lags.

#pragma once

#include <cstddef>
#include <span>

#include "fit/estimator.h"

namespace burstq {

struct BurstinessDiagnostics {
  double lag1_acf{0.0};        ///< empirical lag-1 autocorrelation
  double fitted_decay{0.0};    ///< r = 1 - p_on - p_off of the fitted model
  double empirical_idc{0.0};   ///< window-sum variance / (window * mean)
  bool bursty{false};          ///< verdict (see is_bursty)
};

/// Computes the diagnostics of one demand series.  The IDC estimate uses
/// non-overlapping windows of `idc_window` slots.  Requires the series to
/// span at least 4 windows and be non-constant.
BurstinessDiagnostics diagnose_burstiness(std::span<const double> demand,
                                          std::size_t idc_window = 100);

/// Verdict rule: a workload counts as bursty when its lag-1 ACF exceeds
/// `acf_threshold` (default 0.5: spikes persist across slots).  Constant
/// series are never bursty.
bool is_bursty(std::span<const double> demand, double acf_threshold = 0.5);

/// Mean absolute deviation between the empirical ACF of `demand` and the
/// fitted model's geometric ACF over lags 1..max_lag.  Small (<~0.05)
/// means the two-state model explains the trace's memory structure.
double acf_fit_error(std::span<const double> demand, const FittedVm& fit,
                     std::size_t max_lag = 10);

}  // namespace burstq
