// Demand-trace persistence: CSV round-tripping so traces recorded from a
// monitoring system (or from burstq's own simulator) can feed the
// estimator and the trace-driven experiments.
//
// Format: header "slot,vm0,vm1,...", one row per slot.

#pragma once

#include <string>

#include "sim/workload_gen.h"

namespace burstq {

/// Writes trace[t][i] to `path`.  Throws InvalidArgument on I/O failure
/// or a ragged trace.
void write_demand_trace_csv(const std::string& path,
                            const DemandTrace& trace);

/// Reads a trace written by write_demand_trace_csv (or any CSV with a
/// header row and a leading slot column).  Throws InvalidArgument on
/// malformed input.
DemandTrace read_demand_trace_csv(const std::string& path);

}  // namespace burstq
