// PlanetLab-format trace import.
//
// The de-facto public dataset for VM-consolidation studies (shipped with
// CloudSim) stores one file per VM: a single column of integer CPU
// utilization percentages, one line per 5-minute interval.  This module
// reads that format into burstq's DemandTrace so the estimator and the
// trace-replay evaluation run on real-world-shaped data.

#pragma once

#include <string>
#include <vector>

#include "sim/workload_gen.h"

namespace burstq {

/// Reads one PlanetLab-style file: one numeric utilization value per
/// line (blank lines ignored).  `scale` converts percentage points to
/// resource units (default 0.2: 100% CPU of a PlanetLab node ~ 20 units,
/// in the same range as the paper's Rb/Re draws).  Throws InvalidArgument
/// on malformed lines or an empty file.
std::vector<double> read_planetlab_file(const std::string& path,
                                        double scale = 0.2);

/// Reads several files into a DemandTrace (VM i = files[i]).  All files
/// must have the same number of intervals; longer ones are truncated to
/// the shortest and a trace shorter than 2 slots is rejected.
DemandTrace read_planetlab_traces(const std::vector<std::string>& files,
                                  double scale = 0.2);

/// Writes a demand series in PlanetLab format (for round-trip tests and
/// for exporting burstq-generated workloads to CloudSim-based tools).
/// Values are written as their nearest integer percentage after applying
/// 1/scale.
void write_planetlab_file(const std::string& path,
                          const std::vector<double>& demand,
                          double scale = 0.2);

}  // namespace burstq
