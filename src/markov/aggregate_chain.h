// The aggregate chain theta(t): number of simultaneously-ON VMs among k
// collocated independent ON-OFF chains (paper Section IV-B, Figure 4).
//
// theta(t+1) = theta(t) - O(t) + I(t) with O ~ B(theta, p_off) and
// I ~ B(k - theta, p_on) independent, giving the one-step transition
// probabilities of Eq. (12).  In queuing terms this is a discrete-time,
// finite-source Geom/Geom/K system with no waiting room.
//
// Three stationary-distribution backends are provided:
//   * kGaussian   — the paper's Algorithm 1 (Eq. 14 via Gaussian elimination)
//   * kPower      — Eq. (13), Pi = lim Pi0 P^t, iterated on the damped
//                   (P + I)/2 with a relaxation-scaled budget (falls back
//                   to kGaussian for extreme slow-mixing params)
//   * kClosedForm — Binomial(k, p_on/(p_on+p_off)), exact because the k
//                   chains are independent
// Tests pin all three to each other; benches compare their cost.

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "markov/onoff.h"

namespace burstq {

enum class StationaryMethod { kGaussian, kPower, kClosedForm };

/// Returns the (k+1)x(k+1) one-step transition matrix P of theta(t) per
/// Eq. (12).  Row i, column j is P[theta(t+1)=j | theta(t)=i].
/// Requires k >= 0 and valid params.
Matrix aggregate_transition_matrix(std::size_t k, const OnOffParams& params);

/// Stationary distribution of theta(t), length k+1, computed with the
/// chosen backend.  Total over the whole valid domain p_on, p_off in
/// (0, 1].  Two boundary regimes need care (Proposition 1 gives neither
/// aperiodicity nor, at one corner, irreducibility):
///   * p_on = p_off = 1: theta(t+1) = k - theta(t) deterministically.
///     For k = 1 the chain is irreducible but periodic — the damped
///     (P + I)/2 iteration used by kPower handles it.  For k >= 2 it is
///     reducible (closed classes {i, k-i}) and Pi P = Pi is not unique;
///     every backend returns the parameter-continuous solution
///     Binomial(k, 1/2), which satisfies Pi P = Pi exactly (counter
///     `markov.stationary.degenerate_corner`).
///   * Slow mixing (damped spectral gap below ~4e-5, e.g. p_on = p_off =
///     1e-6): kPower's relaxation-scaled iteration budget would exceed its
///     cap, so it falls back to the Gaussian backend instead of failing
///     (counter `markov.power.fallbacks`, event `markov.power_fallback`).
/// Throws InternalError only if the Gaussian elimination itself
/// degenerates, which no valid params produce (fuzzed across the domain
/// boundaries by `burstq_fuzz`).
std::vector<double> aggregate_stationary_distribution(
    std::size_t k, const OnOffParams& params,
    StationaryMethod method = StationaryMethod::kGaussian);

/// Simulates k independent chains for `slots` steps and returns the
/// empirical occupancy histogram of theta (length k+1, sums to 1).  Used by
/// property tests as a model-free oracle.
std::vector<double> simulate_occupancy(std::size_t k,
                                       const OnOffParams& params,
                                       std::size_t slots, Rng& rng);

}  // namespace burstq
