#include "markov/burstiness.h"

#include <cmath>

#include "common/error.h"

namespace burstq {

double correlation_decay(const OnOffParams& params) {
  params.validate();
  return 1.0 - params.p_on - params.p_off;
}

double demand_autocorrelation(const OnOffParams& params, std::size_t t) {
  return std::pow(correlation_decay(params), static_cast<double>(t));
}

double demand_variance(const OnOffParams& params, double re) {
  params.validate();
  BURSTQ_REQUIRE(re >= 0.0, "spike size must be non-negative");
  const double q = params.stationary_on_probability();
  return q * (1.0 - q) * re * re;
}

double index_of_dispersion(const OnOffParams& params, double rb, double re) {
  params.validate();
  BURSTQ_REQUIRE(rb >= 0.0 && re >= 0.0, "demand levels must be non-negative");
  const double q = params.stationary_on_probability();
  const double mean = rb + q * re;
  BURSTQ_REQUIRE(mean > 0.0, "index of dispersion needs positive mean demand");
  const double var = demand_variance(params, re);
  const double r = correlation_decay(params);
  // Var[sum_{s<t} W(s)] ~ t * var * (1+r)/(1-r) for a geometrically
  // correlated process; normalize by t * mean.
  return var / mean * (1.0 + r) / (1.0 - r);
}

double empirical_autocorrelation(std::span<const double> series,
                                 std::size_t t) {
  BURSTQ_REQUIRE(series.size() > t, "series shorter than requested lag");
  const auto n = series.size();
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);

  double denom = 0.0;
  for (double x : series) denom += (x - mean) * (x - mean);
  BURSTQ_REQUIRE(denom > 0.0, "constant series has undefined ACF");

  double num = 0.0;
  for (std::size_t s = 0; s + t < n; ++s)
    num += (series[s] - mean) * (series[s + t] - mean);
  return num / denom;
}

}  // namespace burstq
