#include "markov/transient.h"

#include <cmath>

#include "common/error.h"
#include "linalg/gaussian.h"
#include "markov/aggregate_chain.h"

namespace burstq {

std::vector<double> aggregate_distribution_at(std::size_t k,
                                              const OnOffParams& params,
                                              std::size_t t,
                                              std::size_t initial_on) {
  BURSTQ_REQUIRE(initial_on <= k, "initial ON count exceeds k");
  const Matrix p = aggregate_transition_matrix(k, params);
  std::vector<double> dist(k + 1, 0.0);
  dist[initial_on] = 1.0;
  for (std::size_t step = 0; step < t; ++step)
    dist = p.left_multiply(dist);
  return dist;
}

double expected_slots_to_overflow(std::size_t k, const OnOffParams& params,
                                  std::size_t servers,
                                  std::size_t initial_on) {
  BURSTQ_REQUIRE(servers < k,
                 "with servers >= k overflow never happens (infinite time)");
  BURSTQ_REQUIRE(initial_on <= servers,
                 "the start state must not itself overflow");
  const Matrix p = aggregate_transition_matrix(k, params);

  // Transient states 0..servers; everything above is absorbing.  Solve
  // (I - Q) x = 1: x[i] = expected slots to absorption from state i.
  const std::size_t n = servers + 1;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = (i == j ? 1.0 : 0.0) - p(i, j);
  const std::vector<double> ones(n, 1.0);
  const auto x = solve_linear_system(a, ones);
  BURSTQ_ASSERT(x.has_value(),
                "fundamental system is non-singular for an irreducible chain");
  return (*x)[initial_on];
}

double mean_slots_between_overflows(std::size_t k,
                                    const OnOffParams& params,
                                    std::size_t servers) {
  BURSTQ_REQUIRE(servers < k,
                 "with servers >= k overflow never happens (infinite time)");
  const auto pi = aggregate_stationary_distribution(
      k, params, StationaryMethod::kClosedForm);
  double overflow = 0.0;
  for (std::size_t i = servers + 1; i <= k; ++i) overflow += pi[i];
  BURSTQ_ASSERT(overflow > 0.0, "positive q implies positive overflow mass");
  return 1.0 / overflow;
}

std::size_t mixing_slots(std::size_t k, const OnOffParams& params,
                         double eps, std::size_t max_slots) {
  BURSTQ_REQUIRE(eps > 0.0, "eps must be positive");
  const Matrix p = aggregate_transition_matrix(k, params);
  const auto pi = aggregate_stationary_distribution(
      k, params, StationaryMethod::kClosedForm);

  std::vector<double> dist(k + 1, 0.0);
  dist[0] = 1.0;
  for (std::size_t t = 0; t <= max_slots; ++t) {
    double tv = 0.0;
    for (std::size_t i = 0; i <= k; ++i) tv += std::abs(dist[i] - pi[i]);
    if (tv <= eps) return t;
    dist = p.left_multiply(dist);
  }
  return max_slots;
}

}  // namespace burstq
