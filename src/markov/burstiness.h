// Burstiness diagnostics of the ON-OFF demand process.
//
// The model-fitting literature the paper builds on (Mi et al. [5],
// Casale et al. [21][22]) characterizes burstiness by the demand
// process's second-order structure.  For a two-state chain these have
// closed forms:
//
//   lag-t autocorrelation  ACF(t) = (1 - p_on - p_off)^t
//   demand variance        Var    = q (1 - q) Re^2
//   index of dispersion    IDC    = lim Var[sum_{s<=t} W(s)] / (t E[W])
//                                 = (Var/E[W]) * (1 + r) / (1 - r),
//                                   r = 1 - p_on - p_off
//
// These let tests and the trace estimator cross-check a fitted model
// against an observed trace beyond first moments, and quantify "how
// bursty" a workload is on a common scale (IDC shrinks to a
// Poisson-like baseline as r -> 0 and grows without bound as spikes
// lengthen).

#pragma once

#include <cstddef>
#include <span>

#include "markov/onoff.h"

namespace burstq {

/// Correlation decay factor r = 1 - p_on - p_off of the two-state chain.
/// |r| < 1 for valid parameters; r near 1 means long-memory (bursty).
double correlation_decay(const OnOffParams& params);

/// Analytic lag-t autocorrelation of the stationary demand process.
/// ACF(0) = 1.  Demand is an affine function of the ON indicator, so its
/// ACF equals the indicator's.
double demand_autocorrelation(const OnOffParams& params, std::size_t t);

/// Stationary demand variance of one VM with spike size re:
/// q (1 - q) re^2.  Requires re >= 0.
double demand_variance(const OnOffParams& params, double re);

/// Asymptotic index of dispersion for counts of the demand process of a
/// VM with normal level rb and spike size re.  Dimensionless; requires
/// rb + q re > 0 (positive mean demand) and re >= 0.
double index_of_dispersion(const OnOffParams& params, double rb, double re);

/// Empirical lag-t autocorrelation of a series (biased estimator, the
/// standard choice for ACF plots).  Requires series.size() > t and a
/// non-constant series.
double empirical_autocorrelation(std::span<const double> series,
                                 std::size_t t);

}  // namespace burstq
