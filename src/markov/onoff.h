// The paper's workload model: a discrete-time two-state (ON/OFF) Markov
// chain per VM (Figure 2).
//
// State OFF = normal traffic, demand Rb.  State ON = traffic surge, demand
// Rp = Rb + Re.  p_on is the OFF->ON switch probability per slot (spike
// frequency); p_off is the ON->OFF switch probability (1 / expected spike
// duration).  Spike durations and gaps are therefore geometric.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace burstq {

enum class VmState : std::uint8_t { kOff = 0, kOn = 1 };

/// Parameters of one two-state chain.  Probabilities must lie in (0, 1]
/// for the chain to be irreducible (the paper assumes p_on, p_off > 0).
struct OnOffParams {
  double p_on{0.01};   ///< P[OFF -> ON] per slot
  double p_off{0.09};  ///< P[ON -> OFF] per slot

  /// Validates 0 < p <= 1 for both switch probabilities.
  void validate() const;

  /// Stationary probability of being ON: q = p_on / (p_on + p_off).
  [[nodiscard]] double stationary_on_probability() const;

  /// Expected spike duration in slots: 1 / p_off.
  [[nodiscard]] double expected_spike_duration() const;

  /// Expected gap between spikes in slots: 1 / p_on.
  [[nodiscard]] double expected_gap_duration() const;
};

/// A single simulatable ON-OFF chain.
class OnOffChain {
 public:
  /// Starts in OFF (the paper's queue starts empty: Pi0 = (1,0,...,0)).
  explicit OnOffChain(OnOffParams params, VmState initial = VmState::kOff);

  [[nodiscard]] VmState state() const { return state_; }
  [[nodiscard]] bool on() const { return state_ == VmState::kOn; }
  [[nodiscard]] const OnOffParams& params() const { return params_; }

  /// Swaps the switch probabilities mid-simulation, keeping the current
  /// state.  Models non-stationary workloads (flash crowds, diurnal
  /// waves) where every tenant's burstiness shifts at a known slot.
  /// Validates the new params.
  void set_params(OnOffParams params) {
    params.validate();
    params_ = params;
  }

  /// Advances one slot; returns the new state.
  VmState step(Rng& rng);

  /// Draws the state directly from the stationary law (used to start
  /// simulations in steady state and skip burn-in).
  void reset_stationary(Rng& rng);

  void reset(VmState s) { state_ = s; }

 private:
  OnOffParams params_;
  VmState state_;
};

/// Generates a state trace of `slots` steps (including the initial state at
/// index 0), for trace-driven tests and the Figure 8 workload sample.
std::vector<VmState> generate_state_trace(const OnOffParams& params,
                                          std::size_t slots, Rng& rng,
                                          bool start_stationary = true);

}  // namespace burstq
