#include "markov/aggregate_chain.h"

#include <cmath>

#include "common/error.h"
#include "linalg/gaussian.h"
#include "linalg/power_iteration.h"
#include "prob/binomial.h"
#include "prob/combinatorics.h"

namespace burstq {

Matrix aggregate_transition_matrix(std::size_t k, const OnOffParams& params) {
  params.validate();
  const auto ki = static_cast<std::int64_t>(k);
  Matrix p(k + 1, k + 1);

  // Eq. (12): p_ij = sum_r C(i,r) p_off^r (1-p_off)^(i-r)
  //                        * C(k-i, j-i+r) p_on^(j-i+r) (1-p_on)^(k-j-r)
  // where r counts ON->OFF departures and j-i+r counts OFF->ON arrivals.
  for (std::int64_t i = 0; i <= ki; ++i) {
    for (std::int64_t j = 0; j <= ki; ++j) {
      double acc = 0.0;
      for (std::int64_t r = 0; r <= i; ++r) {
        const std::int64_t arrivals = j - i + r;
        if (arrivals < 0 || arrivals > ki - i) continue;
        acc += binomial_pmf(i, r, params.p_off) *
               binomial_pmf(ki - i, arrivals, params.p_on);
      }
      p(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = acc;
    }
  }
  BURSTQ_ASSERT(p.is_row_stochastic(1e-9),
                "Eq.(12) matrix failed row-stochastic check");
  return p;
}

std::vector<double> aggregate_stationary_distribution(
    std::size_t k, const OnOffParams& params, StationaryMethod method) {
  params.validate();
  switch (method) {
    case StationaryMethod::kClosedForm:
      // theta is a sum of k independent Bernoulli(q) indicators in steady
      // state, hence exactly Binomial(k, q).
      return binomial_pmf_vector(static_cast<std::int64_t>(k),
                                 params.stationary_on_probability());
    case StationaryMethod::kGaussian: {
      const Matrix p = aggregate_transition_matrix(k, params);
      auto pi = stationary_distribution_gaussian(p);
      BURSTQ_ASSERT(pi.has_value(),
                    "Gaussian stationary solve failed on an irreducible chain");
      return std::move(*pi);
    }
    case StationaryMethod::kPower: {
      const Matrix p = aggregate_transition_matrix(k, params);
      auto res = stationary_distribution_power(p);
      BURSTQ_ASSERT(res.has_value(),
                    "power iteration failed on an aperiodic chain");
      return std::move(res->distribution);
    }
  }
  BURSTQ_ASSERT(false, "unknown StationaryMethod");
  return {};
}

std::vector<double> simulate_occupancy(std::size_t k,
                                       const OnOffParams& params,
                                       std::size_t slots, Rng& rng) {
  params.validate();
  BURSTQ_REQUIRE(slots > 0, "simulate_occupancy needs at least one slot");
  std::vector<OnOffChain> chains(k, OnOffChain(params));
  for (auto& c : chains) c.reset_stationary(rng);

  std::vector<std::size_t> counts(k + 1, 0);
  for (std::size_t t = 0; t < slots; ++t) {
    std::size_t on = 0;
    for (auto& c : chains) {
      if (c.on()) ++on;
      c.step(rng);
    }
    ++counts[on];
  }
  std::vector<double> freq(k + 1);
  for (std::size_t i = 0; i <= k; ++i)
    freq[i] = static_cast<double>(counts[i]) / static_cast<double>(slots);
  return freq;
}

}  // namespace burstq
