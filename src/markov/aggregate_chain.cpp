#include "markov/aggregate_chain.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/gaussian.h"
#include "linalg/power_iteration.h"
#include "obs/obs.h"
#include "prob/binomial.h"
#include "prob/combinatorics.h"

namespace burstq {

namespace {

/// Hard ceiling on the power-iteration budget.  Chains whose damped
/// spectral gap needs more steps than this (gap below ~4e-5) are solved by
/// the Gaussian backend instead — burning tens of millions of matvecs to
/// reproduce a result Gaussian elimination gets exactly is not a useful
/// way to fail.
constexpr std::size_t kPowerIterationCap = 1000000;

/// e-folds of contraction requested from the damped iteration: e^-40 is
/// ~4e-18, comfortably past the 1e-13 step tolerance even with modest
/// constants in front of the leading mode.
constexpr double kPowerIterationEfolds = 40.0;

/// Gaussian-elimination solve shared by the kGaussian backend and the
/// kPower slow-mixing fallback.
std::vector<double> stationary_via_gaussian(const Matrix& p) {
  auto pi = stationary_distribution_gaussian(p);
  BURSTQ_ASSERT(pi.has_value(),
                "Gaussian stationary solve failed on an irreducible chain");
  return std::move(*pi);
}

}  // namespace

Matrix aggregate_transition_matrix(std::size_t k, const OnOffParams& params) {
  params.validate();
  const auto ki = static_cast<std::int64_t>(k);
  Matrix p(k + 1, k + 1);

  // Eq. (12): p_ij = sum_r C(i,r) p_off^r (1-p_off)^(i-r)
  //                        * C(k-i, j-i+r) p_on^(j-i+r) (1-p_on)^(k-j-r)
  // where r counts ON->OFF departures and j-i+r counts OFF->ON arrivals.
  for (std::int64_t i = 0; i <= ki; ++i) {
    for (std::int64_t j = 0; j <= ki; ++j) {
      double acc = 0.0;
      for (std::int64_t r = 0; r <= i; ++r) {
        const std::int64_t arrivals = j - i + r;
        if (arrivals < 0 || arrivals > ki - i) continue;
        acc += binomial_pmf(i, r, params.p_off) *
               binomial_pmf(ki - i, arrivals, params.p_on);
      }
      p(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = acc;
    }
  }
  BURSTQ_ASSERT(p.is_row_stochastic(1e-9),
                "Eq.(12) matrix failed row-stochastic check");
  return p;
}

std::vector<double> aggregate_stationary_distribution(
    std::size_t k, const OnOffParams& params, StationaryMethod method) {
  params.validate();
  // p_on = p_off = 1 is the single point of the valid domain where theta(t)
  // is *reducible* (theta(t+1) = k - theta(t) deterministically, closed
  // classes {i, k - i}), so for k >= 2 the system Pi P = Pi has multiple
  // solutions: Gaussian elimination degenerates and (damped) power
  // iteration converges to a Pi0-dependent vector.  The model still
  // determines a unique answer — the k chains are independent, and the
  // stationary law at every interior point is Binomial(k, q), whose
  // parameter-continuous extension Binomial(k, 1/2) satisfies Pi P = Pi at
  // the corner exactly.  Return it for every backend.  (k = 1 stays
  // irreducible — a plain 2-cycle — and needs no special case.)
  if (params.p_on == 1.0 && params.p_off == 1.0 && k >= 2) {
    BURSTQ_COUNT("markov.stationary.degenerate_corner", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "markov.degenerate_corner",
                 {"k", k});
    return binomial_pmf_vector(static_cast<std::int64_t>(k), 0.5);
  }
  switch (method) {
    case StationaryMethod::kClosedForm:
      // theta is a sum of k independent Bernoulli(q) indicators in steady
      // state, hence exactly Binomial(k, q).
      return binomial_pmf_vector(static_cast<std::int64_t>(k),
                                 params.stationary_on_probability());
    case StationaryMethod::kGaussian: {
      const Matrix p = aggregate_transition_matrix(k, params);
      return stationary_via_gaussian(p);
    }
    case StationaryMethod::kPower: {
      const Matrix p = aggregate_transition_matrix(k, params);
      // The eigenvalues of Eq. (12) are (1 - s)^j, j = 0..k, with
      // s = p_on + p_off, so the damped iteration's slowest transient mode
      // is (1 + lambda)/2 with lambda the largest positive power of 1 - s:
      // j = 1 when s <= 1, j = 2 (present for k >= 2) when s > 1.  Size
      // the budget to this known relaxation time instead of a fixed
      // constant: the old fixed 200000-step budget made p_on = p_off =
      // 1e-6 (gap ~1e-6, a *valid* slow-mixing chain per Proposition 1) a
      // guaranteed crash.
      const double s = params.p_on + params.p_off;
      double slow = 1.0 - s;                                   // j = 1
      if (s > 1.0) slow = k >= 2 ? (s - 1.0) * (s - 1.0) : 0.0;  // j = 2
      const double gap = 0.5 * (1.0 - slow);
      const double needed = std::ceil(kPowerIterationEfolds / gap);
      if (needed > static_cast<double>(kPowerIterationCap)) {
        BURSTQ_COUNT("markov.power.fallbacks", 1);
        BURSTQ_EVENT(obs::EventLevel::kDecisions, "markov.power_fallback",
                     {"k", k}, {"p_on", params.p_on},
                     {"p_off", params.p_off}, {"gap", gap});
        return stationary_via_gaussian(p);
      }
      const auto budget = std::max<std::size_t>(
          200000, static_cast<std::size_t>(needed));
      auto res = stationary_distribution_power(p, 1e-13, budget);
      if (!res.has_value()) {
        // The analytic budget should always suffice; treat an unexpected
        // miss the same way as a predicted one rather than crashing.
        BURSTQ_COUNT("markov.power.fallbacks", 1);
        BURSTQ_EVENT(obs::EventLevel::kDecisions, "markov.power_fallback",
                     {"k", k}, {"p_on", params.p_on},
                     {"p_off", params.p_off}, {"gap", gap});
        return stationary_via_gaussian(p);
      }
      return std::move(res->distribution);
    }
  }
  BURSTQ_ASSERT(false, "unknown StationaryMethod");
  return {};
}

std::vector<double> simulate_occupancy(std::size_t k,
                                       const OnOffParams& params,
                                       std::size_t slots, Rng& rng) {
  params.validate();
  BURSTQ_REQUIRE(slots > 0, "simulate_occupancy needs at least one slot");
  std::vector<OnOffChain> chains(k, OnOffChain(params));
  for (auto& c : chains) c.reset_stationary(rng);

  std::vector<std::size_t> counts(k + 1, 0);
  for (std::size_t t = 0; t < slots; ++t) {
    std::size_t on = 0;
    for (auto& c : chains) {
      if (c.on()) ++on;
      c.step(rng);
    }
    ++counts[on];
  }
  std::vector<double> freq(k + 1);
  for (std::size_t i = 0; i <= k; ++i)
    freq[i] = static_cast<double>(counts[i]) / static_cast<double>(slots);
  return freq;
}

}  // namespace burstq
