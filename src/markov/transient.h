// Transient analysis of the aggregate theta(t) chain.
//
// The stationary law (Eq. 13's limit) answers "what fraction of time is
// the PM overloaded"; operators also ask *when*: how is theta distributed
// t slots after consolidation (the system starts with the queue empty,
// Pi0 = (1,0,...,0)), how long until the first capacity violation, and
// how quickly the chain forgets its start.  All three reduce to standard
// Markov-chain computations on the Eq. (12) matrix:
//
//   distribution_at        Pi0 P^t            (finite-t version of Eq. 13)
//   expected_first_passage E[min{t : theta(t) > K}] via the fundamental
//                          system (I - Q) x = 1 over transient states
//   mixing_slots           smallest t with ||Pi0 P^t - Pi||_1 <= eps

#pragma once

#include <cstddef>
#include <vector>

#include "markov/onoff.h"

namespace burstq {

/// Distribution of theta(t) after exactly `t` slots, starting from
/// `initial_on` VMs ON at t = 0.  Length k+1.
std::vector<double> aggregate_distribution_at(std::size_t k,
                                              const OnOffParams& params,
                                              std::size_t t,
                                              std::size_t initial_on = 0);

/// Expected number of slots until theta first exceeds `servers`, starting
/// from `initial_on` ON VMs (initial_on must be <= servers: the start
/// state must itself be non-overflowing).  Computed exactly by solving
/// (I - Q) x = 1 where Q is the transition matrix restricted to states
/// {0..servers}.  Requires servers < k (otherwise overflow is impossible
/// and the expectation is infinite — rejected).
double expected_slots_to_overflow(std::size_t k, const OnOffParams& params,
                                  std::size_t servers,
                                  std::size_t initial_on = 0);

/// Expected slots between overflow episodes in steady state: by renewal
/// reward, 1 / P[theta > K] per overflowing slot; this helper reports the
/// reciprocal of the stationary overflow probability.  Infinite (rejected)
/// when servers >= k.
double mean_slots_between_overflows(std::size_t k,
                                    const OnOffParams& params,
                                    std::size_t servers);

/// Smallest t such that the total-variation distance between Pi0 P^t and
/// the stationary law is <= eps (Pi0 = all OFF).  Bounded search up to
/// `max_slots`; returns max_slots if not reached.
std::size_t mixing_slots(std::size_t k, const OnOffParams& params,
                         double eps = 1e-3, std::size_t max_slots = 100000);

}  // namespace burstq
