#include "markov/onoff.h"

#include "common/error.h"

namespace burstq {

void OnOffParams::validate() const {
  BURSTQ_REQUIRE(p_on > 0.0 && p_on <= 1.0, "p_on must lie in (0, 1]");
  BURSTQ_REQUIRE(p_off > 0.0 && p_off <= 1.0, "p_off must lie in (0, 1]");
}

double OnOffParams::stationary_on_probability() const {
  return p_on / (p_on + p_off);
}

double OnOffParams::expected_spike_duration() const { return 1.0 / p_off; }

double OnOffParams::expected_gap_duration() const { return 1.0 / p_on; }

OnOffChain::OnOffChain(OnOffParams params, VmState initial)
    : params_(params), state_(initial) {
  params_.validate();
}

VmState OnOffChain::step(Rng& rng) {
  if (state_ == VmState::kOn) {
    if (rng.bernoulli(params_.p_off)) state_ = VmState::kOff;
  } else {
    if (rng.bernoulli(params_.p_on)) state_ = VmState::kOn;
  }
  return state_;
}

void OnOffChain::reset_stationary(Rng& rng) {
  state_ = rng.bernoulli(params_.stationary_on_probability())
               ? VmState::kOn
               : VmState::kOff;
}

std::vector<VmState> generate_state_trace(const OnOffParams& params,
                                          std::size_t slots, Rng& rng,
                                          bool start_stationary) {
  OnOffChain chain(params);
  if (start_stationary) chain.reset_stationary(rng);
  std::vector<VmState> trace;
  trace.reserve(slots);
  if (slots == 0) return trace;
  trace.push_back(chain.state());
  for (std::size_t t = 1; t < slots; ++t) trace.push_back(chain.step(rng));
  return trace;
}

}  // namespace burstq
