// Binomial coefficients and related combinatorics, evaluated in log space.
//
// Eq. (12) of the paper multiplies binomial coefficients by powers of small
// probabilities; for k up to a few hundred a naive product under/overflows,
// so every probability mass is assembled as exp(log-terms).  The paper's
// convention "C(n, x) = 0 when x > n or x < 0" is preserved.

#pragma once

#include <cstdint>

namespace burstq {

/// Natural log of x! for x >= 0, via lgamma.  log(0!) == 0.
double log_factorial(std::int64_t x);

/// Natural log of C(n, x).  Requires 0 <= x <= n (use binomial_coefficient
/// for the paper's zero-extension convention).
double log_choose(std::int64_t n, std::int64_t x);

/// C(n, x) with the paper's convention: 0 when x < 0 or x > n; exact for
/// small arguments, lgamma-based otherwise.  Requires n >= 0.
double binomial_coefficient(std::int64_t n, std::int64_t x);

/// P[Binomial(n, p) == x]: C(n,x) p^x (1-p)^(n-x), 0 outside support.
/// Requires n >= 0 and p in [0, 1].  Handles the p==0 / p==1 edges exactly.
double binomial_pmf(std::int64_t n, std::int64_t x, double p);

}  // namespace burstq
