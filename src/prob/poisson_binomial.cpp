#include "prob/poisson_binomial.h"

#include <algorithm>

#include "common/error.h"

namespace burstq {

std::vector<double> poisson_binomial_pmf(std::span<const double> qs) {
  for (double q : qs)
    BURSTQ_REQUIRE(q >= 0.0 && q <= 1.0,
                   "Poisson-binomial needs q in [0, 1]");
  // DP over variables: after processing i variables, pmf[x] is the
  // probability the partial sum equals x.
  std::vector<double> pmf(qs.size() + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t processed = 0;
  for (double q : qs) {
    ++processed;
    // Walk x downward so pmf[x-1] still refers to the previous round.
    for (std::size_t x = processed; x >= 1; --x)
      pmf[x] = pmf[x] * (1.0 - q) + pmf[x - 1] * q;
    pmf[0] *= 1.0 - q;
  }
  return pmf;
}

double poisson_binomial_cdf(std::span<const double> qs, std::int64_t x) {
  if (x < 0) return 0.0;
  const auto k = static_cast<std::int64_t>(qs.size());
  if (x >= k) return 1.0;
  const auto pmf = poisson_binomial_pmf(qs);
  double acc = 0.0;
  for (std::int64_t i = 0; i <= x; ++i)
    acc += pmf[static_cast<std::size_t>(i)];
  return std::min(acc, 1.0);
}

std::int64_t poisson_binomial_quantile(std::span<const double> qs,
                                       double prob) {
  BURSTQ_REQUIRE(prob >= 0.0 && prob <= 1.0,
                 "quantile probability must lie in [0, 1]");
  const auto pmf = poisson_binomial_pmf(qs);
  double acc = 0.0;
  for (std::size_t x = 0; x < pmf.size(); ++x) {
    acc += pmf[x];
    if (acc >= prob) return static_cast<std::int64_t>(x);
  }
  return static_cast<std::int64_t>(qs.size());
}

double poisson_binomial_mean(std::span<const double> qs) {
  double m = 0.0;
  for (double q : qs) m += q;
  return m;
}

double poisson_binomial_variance(std::span<const double> qs) {
  double v = 0.0;
  for (double q : qs) v += q * (1.0 - q);
  return v;
}

}  // namespace burstq
