#include "prob/combinatorics.h"

#include <cmath>

#include "common/error.h"

namespace burstq {

double log_factorial(std::int64_t x) {
  BURSTQ_REQUIRE(x >= 0, "log_factorial requires x >= 0");
  return std::lgamma(static_cast<double>(x) + 1.0);
}

double log_choose(std::int64_t n, std::int64_t x) {
  BURSTQ_REQUIRE(n >= 0 && x >= 0 && x <= n, "log_choose requires 0<=x<=n");
  return log_factorial(n) - log_factorial(x) - log_factorial(n - x);
}

double binomial_coefficient(std::int64_t n, std::int64_t x) {
  BURSTQ_REQUIRE(n >= 0, "binomial_coefficient requires n >= 0");
  if (x < 0 || x > n) return 0.0;  // the paper's zero-extension convention
  if (x == 0 || x == n) return 1.0;
  // Exact multiplicative form while it fits a double exactly (n <= 60ish);
  // beyond that, lgamma's relative error (~1e-15) is more than enough.
  if (n <= 60) {
    double r = 1.0;
    const std::int64_t kk = x < n - x ? x : n - x;
    for (std::int64_t i = 1; i <= kk; ++i)
      r = r * static_cast<double>(n - kk + i) / static_cast<double>(i);
    return std::round(r);
  }
  return std::exp(log_choose(n, x));
}

double binomial_pmf(std::int64_t n, std::int64_t x, double p) {
  BURSTQ_REQUIRE(n >= 0, "binomial_pmf requires n >= 0");
  BURSTQ_REQUIRE(p >= 0.0 && p <= 1.0, "binomial_pmf requires p in [0,1]");
  if (x < 0 || x > n) return 0.0;
  if (p == 0.0) return x == 0 ? 1.0 : 0.0;
  if (p == 1.0) return x == n ? 1.0 : 0.0;
  const double log_pmf = log_choose(n, x) +
                         static_cast<double>(x) * std::log(p) +
                         static_cast<double>(n - x) * std::log1p(-p);
  return std::exp(log_pmf);
}

}  // namespace burstq
