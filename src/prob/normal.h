// Standard normal CDF and quantile.
//
// Used by the stochastic-bin-packing baseline (related work [6], [10],
// [18] of the paper model VM demand as a normal random variable and pack
// by an effective size mu + z * sigma) and by the web-server workload's
// renewal-CLT generator.

#pragma once

namespace burstq {

/// Phi(x): standard normal CDF, via erfc.  Accurate to ~1e-15.
double normal_cdf(double x);

/// Phi^{-1}(p) for p in (0, 1): Acklam's rational approximation refined
/// with one Halley step (absolute error < 1e-9 over the full range).
/// Throws InvalidArgument outside (0, 1).
double normal_quantile(double p);

}  // namespace burstq
