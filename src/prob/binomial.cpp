#include "prob/binomial.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "prob/combinatorics.h"

namespace burstq {

double binomial_cdf(std::int64_t n, std::int64_t x, double p) {
  BURSTQ_REQUIRE(n >= 0, "binomial_cdf requires n >= 0");
  BURSTQ_REQUIRE(p >= 0.0 && p <= 1.0, "binomial_cdf requires p in [0,1]");
  if (x < 0) return 0.0;
  if (x >= n) return 1.0;
  double acc = 0.0;
  for (std::int64_t i = 0; i <= x; ++i) acc += binomial_pmf(n, i, p);
  return std::min(acc, 1.0);
}

std::int64_t binomial_quantile(std::int64_t n, double prob, double p) {
  BURSTQ_REQUIRE(n >= 0, "binomial_quantile requires n >= 0");
  BURSTQ_REQUIRE(prob >= 0.0 && prob <= 1.0,
                 "binomial_quantile requires prob in [0,1]");
  BURSTQ_REQUIRE(p >= 0.0 && p <= 1.0, "binomial_quantile requires p in [0,1]");
  double acc = 0.0;
  for (std::int64_t x = 0; x <= n; ++x) {
    acc += binomial_pmf(n, x, p);
    if (acc >= prob) return x;
  }
  return n;  // prob == 1 with accumulated roundoff
}

std::vector<double> binomial_pmf_vector(std::int64_t n, double p) {
  BURSTQ_REQUIRE(n >= 0, "binomial_pmf_vector requires n >= 0");
  std::vector<double> pmf(static_cast<std::size_t>(n) + 1);
  for (std::int64_t x = 0; x <= n; ++x)
    pmf[static_cast<std::size_t>(x)] = binomial_pmf(n, x, p);
  return pmf;
}

double binomial_mean(std::int64_t n, double p) {
  return static_cast<double>(n) * p;
}

double binomial_variance(std::int64_t n, double p) {
  return static_cast<double>(n) * p * (1.0 - p);
}

}  // namespace burstq
