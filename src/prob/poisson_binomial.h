// Poisson-binomial distribution: the law of a sum of independent,
// *non-identically* distributed Bernoulli variables.
//
// When collocated VMs have heterogeneous (p_on, p_off), the stationary
// ON-count theta is exactly PoissonBinomial(q_1, ..., q_k) with
// q_i = p_on_i / (p_on_i + p_off_i) — the chains remain independent, only
// their ON-probabilities differ.  The paper sidesteps heterogeneity by
// rounding to uniform parameters (Section IV-E); burstq additionally
// offers the exact law so the rounding policies can be evaluated against
// ground truth (see queuing/hetero.h and bench/ablation_hetero).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace burstq {

/// Full pmf of PoissonBinomial(qs): vector of length qs.size() + 1 where
/// element x is P[sum == x].  Computed by the standard O(k^2) dynamic
/// program, which is numerically stable (all operations are convex
/// combinations of probabilities).  Requires every q in [0, 1].
std::vector<double> poisson_binomial_pmf(std::span<const double> qs);

/// P[PoissonBinomial(qs) <= x]; 0 for x < 0, 1 for x >= k.
double poisson_binomial_cdf(std::span<const double> qs, std::int64_t x);

/// Smallest x with CDF(x) >= prob; always in [0, k].  Requires prob in
/// [0, 1].
std::int64_t poisson_binomial_quantile(std::span<const double> qs,
                                       double prob);

/// Mean: sum of qs.
double poisson_binomial_mean(std::span<const double> qs);

/// Variance: sum of q(1-q).
double poisson_binomial_variance(std::span<const double> qs);

}  // namespace burstq
