// Binomial distribution queries.
//
// The aggregate ON-count theta(t) of k independent ON-OFF chains has the
// *exact* stationary law Binomial(k, q) with q = p_on / (p_on + p_off):
// each VM's two-state chain has stationary ON-probability q, and the VMs
// are independent.  burstq uses this closed form both as a fast MapCal
// backend and as the oracle the O(k^3) pipeline is tested against.

#pragma once

#include <cstdint>
#include <vector>

namespace burstq {

/// P[Binomial(n, p) <= x].  Clamps to [0,1]; x < 0 gives 0, x >= n gives 1.
double binomial_cdf(std::int64_t n, std::int64_t x, double p);

/// Smallest x with P[Binomial(n,p) <= x] >= prob.  Requires prob in [0,1];
/// always returns a value in [0, n].
std::int64_t binomial_quantile(std::int64_t n, double prob, double p);

/// Full pmf vector of length n+1.  Sums to 1 within roundoff.
std::vector<double> binomial_pmf_vector(std::int64_t n, double p);

/// Mean n*p.
double binomial_mean(std::int64_t n, double p);

/// Variance n*p*(1-p).
double binomial_variance(std::int64_t n, double p);

}  // namespace burstq
