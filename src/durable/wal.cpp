#include "durable/wal.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "durable/state_codec.h"
#include "obs/obs.h"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace burstq::durable {

namespace {

constexpr char kWalMagic[4] = {'B', 'Q', 'W', 'L'};
constexpr std::uint8_t kWalVersion = 1;
constexpr std::size_t kHeaderBytes = 16;

void flush_file(std::FILE* f, bool fsync, std::uint64_t& fsyncs,
                const std::string& path) {
  BURSTQ_REQUIRE(std::fflush(f) == 0, "WAL flush failed: " + path);
#if !defined(_WIN32)
  if (fsync) {
    ::fsync(::fileno(f));
    ++fsyncs;
    BURSTQ_COUNT("durable.wal.fsyncs", 1);
  }
#else
  (void)fsync;
  (void)fsyncs;
#endif
}

}  // namespace

const char* wal_record_name(WalRecord type) {
  switch (type) {
    case WalRecord::kCrash: return "crash";
    case WalRecord::kRecover: return "recover";
    case WalRecord::kStall: return "stall";
    case WalRecord::kAbort: return "abort";
    case WalRecord::kMigrate: return "migrate";
    case WalRecord::kMigrateFail: return "migrate-fail";
    case WalRecord::kQueue: return "queue";
    case WalRecord::kOpAdmit: return "op-admit";
    case WalRecord::kOpDepart: return "op-depart";
    case WalRecord::kOpResize: return "op-resize";
    case WalRecord::kOpTick: return "op-tick";
    case WalRecord::kOpCrash: return "op-crash";
    case WalRecord::kOpRecover: return "op-recover";
  }
  return "unknown";
}

WalWriter::WalWriter(std::string path, std::size_t base_slot, bool fsync)
    : path_(std::move(path)), base_slot_(base_slot), fsync_(fsync) {
  out_ = std::fopen(path_.c_str(), "wb");
  BURSTQ_REQUIRE(out_ != nullptr, "cannot create WAL file: " + path_);
  std::string header;
  header.append(kWalMagic, sizeof kWalMagic);
  header.push_back(static_cast<char>(kWalVersion));
  header.append(3, '\0');
  obs::trace_detail::put_u64(header, base_slot_);
  BURSTQ_REQUIRE(
      std::fwrite(header.data(), 1, header.size(), out_) == header.size(),
      "WAL header write failed: " + path_);
  bytes_ = header.size();
  flush_file(out_, fsync_, fsyncs_, path_);
}

WalWriter::~WalWriter() {
  if (out_ != nullptr) std::fclose(out_);
}

void WalWriter::append(WalRecord type, std::string payload) {
  pending_.emplace_back(static_cast<std::uint8_t>(type), std::move(payload));
}

std::string WalWriter::commit(std::size_t slot, std::uint32_t state_crc) {
  StateWriter payload;
  payload.varint(slot);
  payload.varint(state_crc);
  payload.varint(pending_.size());
  for (const auto& [type, bytes] : pending_) {
    payload.u8(type);
    payload.str(bytes);
  }
  pending_.clear();

  std::string group;
  obs::trace_detail::put_u32(
      group, static_cast<std::uint32_t>(payload.data().size()));
  obs::trace_detail::put_u32(group,
                             obs::trace_detail::crc32(payload.data()));
  group += payload.data();

  BURSTQ_REQUIRE(
      std::fwrite(group.data(), 1, group.size(), out_) == group.size(),
      "WAL group write failed: " + path_);
  bytes_ += group.size();
  ++groups_;
  flush_file(out_, fsync_, fsyncs_, path_);
  BURSTQ_COUNT("durable.wal.commits", 1);
  return group;
}

WalScan scan_wal(const std::string& path) {
  WalScan scan;
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) return scan;  // no WAL yet: empty, not torn

  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kWalMagic, sizeof kWalMagic) != 0 ||
      static_cast<std::uint8_t>(data[4]) != kWalVersion) {
    scan.torn = !data.empty();
    return scan;  // header never made it: nothing recoverable here
  }
  scan.present = true;
  std::size_t pos = 8;
  {
    std::uint64_t base = 0;
    obs::trace_detail::get_u64(data, pos, base);
    scan.base_slot = static_cast<std::size_t>(base);
  }
  scan.valid_bytes = kHeaderBytes;

  while (pos < data.size()) {
    const std::size_t group_start = pos;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!obs::trace_detail::get_u32(data, pos, len) ||
        !obs::trace_detail::get_u32(data, pos, crc) ||
        pos + len > data.size()) {
      scan.torn = true;  // partial frame: crash mid-write
      break;
    }
    const std::string_view payload(data.data() + pos, len);
    if (obs::trace_detail::crc32(payload) != crc) {
      scan.torn = true;  // bit flip or torn payload
      break;
    }
    WalGroup group;
    try {
      StateReader r(payload, path + " group " +
                                 std::to_string(scan.groups.size()));
      group.slot = static_cast<std::size_t>(r.varint());
      group.state_crc = static_cast<std::uint32_t>(r.varint());
      const std::uint64_t n = r.varint();
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto type = static_cast<WalRecord>(r.u8());
        group.records.emplace_back(type, r.str());
      }
      r.expect_done();
    } catch (const CorruptState&) {
      // CRC matched but the payload is not a well-formed group — only
      // possible with deliberate corruption; still just a dead tail.
      scan.torn = true;
      break;
    }
    pos += len;
    group.bytes = data.substr(group_start, pos - group_start);
    scan.groups.push_back(std::move(group));
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace burstq::durable
