// Crash-durable façade over CloudController (core/controller.h).
//
// Every public operation (admit, depart, resize, tick, crash/recover
// injection) is journaled to the write-ahead log BEFORE it is applied,
// as one committed group per op, sequenced by a monotonically growing
// op number.  Every `snapshot_every` ops a full controller snapshot
// (CloudController::export_state) is checkpointed and the journal
// rotates, exactly like the simulator's slot checkpoints.
//
// recover() on a freshly constructed instance loads the newest valid
// snapshot, imports it, and re-applies the journaled op suffix through
// the SAME public methods — ops are deterministic given the restored
// state, so a controller killed between any two ops resumes bit-exactly.
// During replay each re-journaled group is byte-compared against the
// pre-crash journal; divergence throws CorruptState.
//
// Ops that fail fast (admission rejections, resize rollbacks) are still
// journaled — their outcome re-derives identically on replay.  Ops that
// would throw (departing a dead tenant) are validated BEFORE journaling
// so a poisoned record can never enter the log.

#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "durable/durable.h"
#include "durable/snapshot.h"
#include "durable/wal.h"

namespace burstq::durable {

class DurableController {
 public:
  /// Construction arguments mirror CloudController; `durability.dir` is
  /// created on demand and owned exclusively by this controller.
  DurableController(std::vector<PmSpec> pms, ControllerConfig config,
                    Rng rng, DurabilityConfig durability);

  struct RecoverInfo {
    std::size_t snapshot_op{0};   ///< op number of the loaded snapshot
    std::size_t replayed_ops{0};  ///< journal suffix re-applied after it
  };

  /// True when the state directory holds at least one snapshot — i.e.
  /// recover() has something to resume from.
  [[nodiscard]] bool has_state() const;

  /// Restores the newest snapshot + WAL suffix.  Must be called before
  /// any op on a freshly constructed instance (same arguments as the
  /// crashed one).  Throws CorruptState when no valid snapshot exists or
  /// the stored state is inconsistent with the construction arguments.
  RecoverInfo recover();

  // The CloudController surface, journaled.  Semantics are identical to
  // the wrapped methods (core/controller.h).
  std::optional<TenantId> admit(const VmSpec& vm);
  void depart(TenantId id);
  bool resize(TenantId id, const VmSpec& new_spec);
  void tick();
  void inject_pm_crash(PmId pm);
  void inject_pm_recover(PmId pm);

  /// Read-only access for stats/queries (mutating the controller behind
  /// the journal's back forfeits the recovery contract).
  [[nodiscard]] const CloudController& controller() const { return ctrl_; }
  /// Ops journaled so far (== the next op's sequence number).
  [[nodiscard]] std::size_t op_seq() const { return op_seq_; }

 private:
  /// Checkpoint at the op boundary, then journal-and-commit the op
  /// record.  Called BEFORE the op is applied.
  void commit_op(WalRecord type, std::string payload);
  void maybe_checkpoint();
  void replay_op(WalRecord type, const std::string& payload);

  CloudController ctrl_;
  DurabilityConfig durability_;
  SnapshotStore store_;
  std::unique_ptr<WalWriter> wal_;
  std::size_t op_seq_{0};
  std::size_t wal_base_op_{0};
  /// Pre-crash groups byte-verified during replay, indexed by
  /// op - wal_base_op_; replay covers [snapshot_op, replay_upto_).
  std::vector<WalGroup> verify_groups_;
  std::size_t replay_upto_{0};
};

}  // namespace burstq::durable
