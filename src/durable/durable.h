// Crash-consistent persistence for online cluster state.
//
// The durable layer gives a long-running consolidator a recovery story:
// every state mutation is journaled to a write-ahead log *before* it is
// applied, and a periodic snapshot checkpoint (full placement, per-PM
// aggregates, recovery queues, SLO windows) truncates the journal tail.
// Recovery loads the newest valid snapshot, replays the WAL suffix
// through the existing mutation paths, discards any torn final record,
// and resumes.
//
// Hard contract (asserted by tests and the crash-chaos CI job): a run
// killed at ANY injected kill-point and then restored produces a final
// harness report byte-identical to the uninterrupted same-seed run.
//
// On-disk formats (both reuse the BTRC byte codecs from obs/trace_codec.h
// and are CRC-protected):
//   snap-<slot>.bqss  versioned snapshot, written tmp-then-rename
//   wal-<slot>.bqwl   journal of slot groups committed after that snapshot
// See docs/RESILIENCE.md ("Durability & crash recovery") for the layouts.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace burstq::durable {

/// Where and how often to persist.  `dir` is created on demand; each
/// simulator/controller instance owns its directory exclusively.
struct DurabilityConfig {
  std::string dir;
  /// Snapshot cadence in slots (simulator) or ops (controller).  A
  /// checkpoint is taken at every slot t with t % snapshot_every == 0,
  /// including t = 0, so there is always a base snapshot to restore.
  std::size_t snapshot_every{25};
  /// fsync() snapshot and WAL writes.  Off by default: the determinism
  /// tests kill in-process (buffers survive), and CI machines are slow
  /// at fsync.  Production deployments facing real power loss want it.
  bool fsync{false};

  void validate() const;
};

/// Raised when a FaultPlan kill-point fires inside the simulator.
/// Deliberately NOT derived from std::exception: generic catch blocks
/// (harness abort handling, fuzz oracles) must never swallow a kill —
/// only the restore loop that opted into durability catches it.
struct SimKilled {
  std::size_t slot{0};
};

/// Snapshot or irrecoverable journal corruption.  Always loud, always
/// names the file and byte offset; there is no silent fallback past a
/// corrupt snapshot (a torn WAL *tail* is recoverable and is not this).
class CorruptState : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace burstq::durable
