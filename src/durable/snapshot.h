// Snapshot checkpoints with atomic rename-into-place.
//
// File layout (snap-<slot>.bqss):
//   "BQSS" u8 version  3x u8 zero  u64 slot  u64 blob_len
//   u32 crc32(blob)  blob
//
// A snapshot is written to a temporary name in the same directory and
// renamed into place, so a crash mid-write leaves the previous snapshot
// untouched and a reader never sees a half-written file under the final
// name.  Loading is LOUD: any integrity failure in the newest snapshot
// throws CorruptState naming the file and byte offset — there is
// deliberately no silent fallback to an older snapshot, because state
// loss must be an operator decision, not an automatic one.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace burstq::durable {

class SnapshotStore {
 public:
  /// Creates `dir` (and parents) if missing.
  SnapshotStore(std::string dir, bool fsync);

  /// Atomically writes snap-<slot>.bqss.
  void write_snapshot(std::size_t slot, const std::string& blob);

  struct Loaded {
    std::size_t slot{0};
    std::string blob;
    std::string path;
  };

  /// Newest snapshot by slot number, or nullopt when none exist.
  /// Throws CorruptState (file + byte offset) if the newest is damaged.
  std::optional<Loaded> load_newest() const;

  /// Reads one specific snapshot file (CLI `state inspect` path).
  static Loaded load_file(const std::string& path);

  /// Slots that have a snapshot on disk, ascending.
  std::vector<std::size_t> snapshot_slots() const;

  /// Removes all but the newest `keep` snapshot/WAL pairs.
  void prune(std::size_t keep) const;

  std::string snapshot_path(std::size_t slot) const;
  std::string wal_path(std::size_t slot) const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  bool fsync_{false};
};

}  // namespace burstq::durable
