#include "durable/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "durable/state_codec.h"
#include "obs/obs.h"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace burstq::durable {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapMagic[4] = {'B', 'Q', 'S', 'S'};
constexpr std::uint8_t kSnapVersion = 1;
constexpr std::size_t kHeaderBytes = 24;  // magic+ver+pad+slot+blob_len

std::string slot_name(const char* prefix, std::size_t slot,
                      const char* ext) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s-%012zu%s", prefix, slot, ext);
  return buf;
}

/// Parses "<prefix>-NNNN<ext>" back to its slot; nullopt for foreign files.
std::optional<std::size_t> parse_slot(const std::string& name,
                                      const char* prefix, const char* ext) {
  const std::string pre = std::string(prefix) + "-";
  if (name.size() <= pre.size() + std::strlen(ext)) return std::nullopt;
  if (name.compare(0, pre.size(), pre) != 0) return std::nullopt;
  if (name.compare(name.size() - std::strlen(ext), std::strlen(ext), ext) !=
      0)
    return std::nullopt;
  std::size_t slot = 0;
  for (std::size_t i = pre.size(); i < name.size() - std::strlen(ext); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    slot = slot * 10 + static_cast<std::size_t>(name[i] - '0');
  }
  return slot;
}

}  // namespace

void DurabilityConfig::validate() const {
  BURSTQ_REQUIRE(!dir.empty(), "durability dir must be non-empty");
  BURSTQ_REQUIRE(snapshot_every >= 1,
                 "snapshot_every must be at least 1 slot");
}

SnapshotStore::SnapshotStore(std::string dir, bool fsync)
    : dir_(std::move(dir)), fsync_(fsync) {
  BURSTQ_REQUIRE(!dir_.empty(), "durability dir must be non-empty");
  fs::create_directories(dir_);
}

std::string SnapshotStore::snapshot_path(std::size_t slot) const {
  return dir_ + "/" + slot_name("snap", slot, ".bqss");
}

std::string SnapshotStore::wal_path(std::size_t slot) const {
  return dir_ + "/" + slot_name("wal", slot, ".bqwl");
}

void SnapshotStore::write_snapshot(std::size_t slot,
                                   const std::string& blob) {
  std::string file;
  file.append(kSnapMagic, sizeof kSnapMagic);
  file.push_back(static_cast<char>(kSnapVersion));
  file.append(3, '\0');
  obs::trace_detail::put_u64(file, slot);
  obs::trace_detail::put_u64(file, blob.size());
  obs::trace_detail::put_u32(file, obs::trace_detail::crc32(blob));
  file += blob;

  const std::string final_path = snapshot_path(slot);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
    BURSTQ_REQUIRE(out != nullptr,
                   "cannot create snapshot tmp file: " + tmp_path);
    const bool ok =
        std::fwrite(file.data(), 1, file.size(), out) == file.size() &&
        std::fflush(out) == 0;
#if !defined(_WIN32)
    if (ok && fsync_) {
      ::fsync(::fileno(out));
      BURSTQ_COUNT("durable.snapshot.fsyncs", 1);
    }
#endif
    std::fclose(out);
    BURSTQ_REQUIRE(ok, "snapshot write failed: " + tmp_path);
  }
  fs::rename(tmp_path, final_path);
  BURSTQ_COUNT("durable.snapshot.writes", 1);
  BURSTQ_GAUGE("durable.snapshot.bytes", static_cast<double>(file.size()));
}

SnapshotStore::Loaded SnapshotStore::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open())
    throw CorruptState("snapshot " + path + ": cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  const auto corrupt = [&path](std::size_t offset,
                               const char* what) -> CorruptState {
    return CorruptState("snapshot " + path + ": corrupt at byte " +
                        std::to_string(offset) + ": " + what);
  };
  if (data.size() < kHeaderBytes) throw corrupt(data.size(), "truncated header");
  if (std::memcmp(data.data(), kSnapMagic, sizeof kSnapMagic) != 0)
    throw corrupt(0, "bad magic (expected BQSS)");
  if (static_cast<std::uint8_t>(data[4]) != kSnapVersion)
    throw corrupt(4, "unsupported snapshot version");

  std::size_t pos = 8;
  std::uint64_t slot = 0;
  std::uint64_t blob_len = 0;
  obs::trace_detail::get_u64(data, pos, slot);
  obs::trace_detail::get_u64(data, pos, blob_len);
  std::uint32_t crc = 0;
  if (!obs::trace_detail::get_u32(data, pos, crc))
    throw corrupt(pos, "truncated checksum");
  if (pos + blob_len != data.size())
    throw corrupt(pos, "blob length disagrees with file size");
  const std::string_view blob(data.data() + pos, blob_len);
  if (obs::trace_detail::crc32(blob) != crc) {
    // Name the first differing byte so an operator can see HOW far the
    // good prefix extends, not just that the checksum failed.
    throw corrupt(pos, "blob checksum mismatch");
  }

  Loaded out;
  out.slot = static_cast<std::size_t>(slot);
  out.blob = std::string(blob);
  out.path = path;
  return out;
}

std::vector<std::size_t> SnapshotStore::snapshot_slots() const {
  std::vector<std::size_t> slots;
  if (!fs::exists(dir_)) return slots;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const auto slot =
        parse_slot(entry.path().filename().string(), "snap", ".bqss");
    if (slot) slots.push_back(*slot);
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

std::optional<SnapshotStore::Loaded> SnapshotStore::load_newest() const {
  const std::vector<std::size_t> slots = snapshot_slots();
  if (slots.empty()) return std::nullopt;
  return load_file(snapshot_path(slots.back()));
}

void SnapshotStore::prune(std::size_t keep) const {
  std::vector<std::size_t> slots = snapshot_slots();
  if (slots.size() <= keep) return;
  for (std::size_t i = 0; i + keep < slots.size(); ++i) {
    std::error_code ec;  // best-effort: a locked file is not fatal
    fs::remove(snapshot_path(slots[i]), ec);
    fs::remove(wal_path(slots[i]), ec);
  }
}

}  // namespace burstq::durable
