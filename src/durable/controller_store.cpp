#include "durable/controller_store.h"

#include <utility>

#include "common/error.h"
#include "durable/state_codec.h"
#include "obs/obs.h"

namespace burstq::durable {

namespace {

std::string encode_spec(const VmSpec& vm) {
  StateWriter w;
  w.f64(vm.onoff.p_on);
  w.f64(vm.onoff.p_off);
  w.f64(vm.rb);
  w.f64(vm.re);
  return w.take();
}

VmSpec decode_spec(StateReader& r) {
  VmSpec vm;
  vm.onoff.p_on = r.f64();
  vm.onoff.p_off = r.f64();
  vm.rb = r.f64();
  vm.re = r.f64();
  return vm;
}

std::string encode_tenant(TenantId id) {
  StateWriter w;
  w.varint(id.slot);
  return w.take();
}

std::string encode_resize(TenantId id, const VmSpec& vm) {
  StateWriter w;
  w.varint(id.slot);
  w.f64(vm.onoff.p_on);
  w.f64(vm.onoff.p_off);
  w.f64(vm.rb);
  w.f64(vm.re);
  return w.take();
}

std::string encode_pm(PmId pm) {
  StateWriter w;
  w.varint(pm.value);
  return w.take();
}

}  // namespace

DurableController::DurableController(std::vector<PmSpec> pms,
                                     ControllerConfig config, Rng rng,
                                     DurabilityConfig durability)
    : ctrl_(std::move(pms), config, rng),
      durability_(std::move(durability)),
      store_((durability_.validate(), durability_.dir), durability_.fsync) {}

bool DurableController::has_state() const {
  return !store_.snapshot_slots().empty();
}

void DurableController::maybe_checkpoint() {
  // During replay the snapshot and journal epochs already exist; writing
  // them again would truncate the very WAL being verified.
  if (op_seq_ < replay_upto_) return;
  if (op_seq_ % durability_.snapshot_every != 0 && wal_ != nullptr) return;
  store_.write_snapshot(op_seq_, ctrl_.export_state());
  wal_ = std::make_unique<WalWriter>(store_.wal_path(op_seq_), op_seq_,
                                     durability_.fsync);
  wal_base_op_ = op_seq_;
  store_.prune(2);
  BURSTQ_COUNT("durable.ctrl.snapshots", 1);
}

void DurableController::commit_op(WalRecord type, std::string payload) {
  maybe_checkpoint();
  wal_->append(type, std::move(payload));
  const std::string bytes = wal_->commit(op_seq_, 0);
  if (op_seq_ < replay_upto_) {
    const std::size_t idx = op_seq_ - wal_base_op_;
    BURSTQ_ASSERT(idx < verify_groups_.size(),
                  "replay op outside the verified WAL range");
    if (bytes != verify_groups_[idx].bytes)
      throw CorruptState("WAL divergence at op " + std::to_string(op_seq_) +
                         ": re-applied op does not match the journal (" +
                         wal_->path() + ")");
  }
  ++op_seq_;
  BURSTQ_COUNT("durable.ctrl.ops", 1);
}

std::optional<TenantId> DurableController::admit(const VmSpec& vm) {
  vm.validate();  // before journaling: a bad spec must not enter the log
  commit_op(WalRecord::kOpAdmit, encode_spec(vm));
  return ctrl_.admit(vm);
}

void DurableController::depart(TenantId id) {
  BURSTQ_REQUIRE(ctrl_.tenant_live(id),
                 "depart on an invalid or dead tenant");
  commit_op(WalRecord::kOpDepart, encode_tenant(id));
  ctrl_.depart(id);
}

bool DurableController::resize(TenantId id, const VmSpec& new_spec) {
  BURSTQ_REQUIRE(ctrl_.tenant_live(id),
                 "resize on an invalid or dead tenant");
  new_spec.validate();
  commit_op(WalRecord::kOpResize, encode_resize(id, new_spec));
  return ctrl_.resize(id, new_spec);
}

void DurableController::tick() {
  commit_op(WalRecord::kOpTick, std::string());
  ctrl_.tick();
}

void DurableController::inject_pm_crash(PmId pm) {
  BURSTQ_REQUIRE(pm.valid() && pm.value < ctrl_.n_pms(),
                 "inject_pm_crash on an out-of-range PM");
  commit_op(WalRecord::kOpCrash, encode_pm(pm));
  ctrl_.inject_pm_crash(pm);
}

void DurableController::inject_pm_recover(PmId pm) {
  BURSTQ_REQUIRE(pm.valid() && pm.value < ctrl_.n_pms(),
                 "inject_pm_recover on an out-of-range PM");
  commit_op(WalRecord::kOpRecover, encode_pm(pm));
  ctrl_.inject_pm_recover(pm);
}

void DurableController::replay_op(WalRecord type,
                                  const std::string& payload) {
  StateReader r(payload, "controller wal record");
  switch (type) {
    case WalRecord::kOpAdmit:
      (void)admit(decode_spec(r));
      return;
    case WalRecord::kOpDepart:
      depart(TenantId{static_cast<std::size_t>(r.varint())});
      return;
    case WalRecord::kOpResize: {
      const TenantId id{static_cast<std::size_t>(r.varint())};
      (void)resize(id, decode_spec(r));
      return;
    }
    case WalRecord::kOpTick:
      tick();
      return;
    case WalRecord::kOpCrash:
      inject_pm_crash(PmId{static_cast<std::size_t>(r.varint())});
      return;
    case WalRecord::kOpRecover:
      inject_pm_recover(PmId{static_cast<std::size_t>(r.varint())});
      return;
    default:
      throw CorruptState("controller WAL carries a non-op record (type " +
                         std::to_string(static_cast<int>(type)) + ")");
  }
}

DurableController::RecoverInfo DurableController::recover() {
  BURSTQ_REQUIRE(op_seq_ == 0 && wal_ == nullptr,
                 "recover() must run before any op on a fresh controller");
  const auto loaded = store_.load_newest();
  if (!loaded)
    throw CorruptState("no snapshot to recover from in " + store_.dir());
  ctrl_.import_state(loaded->blob);
  op_seq_ = loaded->slot;
  wal_base_op_ = loaded->slot;

  // Keep only the consecutive op suffix: a gap means a lost group, and
  // everything after it never committed from this state.
  WalScan scan = scan_wal(store_.wal_path(loaded->slot));
  verify_groups_.clear();
  if (scan.present) {
    for (std::size_t i = 0; i < scan.groups.size(); ++i) {
      if (scan.groups[i].slot != loaded->slot + i) break;
      verify_groups_.push_back(std::move(scan.groups[i]));
    }
  }
  replay_upto_ = loaded->slot + verify_groups_.size();

  // Recreate the journal epoch and re-apply the suffix through the
  // public methods: each op re-journals and commit_op byte-verifies it
  // against the pre-crash group, so the journal stays complete for a
  // repeated crash mid-replay.
  wal_ = std::make_unique<WalWriter>(store_.wal_path(loaded->slot),
                                     loaded->slot, durability_.fsync);
  for (const WalGroup& g : verify_groups_) {
    if (g.records.size() != 1)
      throw CorruptState("controller WAL group at op " +
                         std::to_string(g.slot) +
                         " does not hold exactly one op record");
    replay_op(g.records.front().first, g.records.front().second);
  }

  BURSTQ_COUNT("durable.ctrl.restores", 1);
  BURSTQ_COUNT("durable.ctrl.replayed_ops", verify_groups_.size());
  return RecoverInfo{loaded->slot, verify_groups_.size()};
}

}  // namespace burstq::durable
