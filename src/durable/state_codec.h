// Byte-stream codec for durable state blobs (snapshots, WAL record
// payloads).  Thin, header-only wrappers over the BTRC primitives in
// obs/trace_codec.h: LEB128 varints, zigzag signed mapping, IEEE-754
// bit-exact doubles, little-endian fixed-width scalars.
//
// StateReader fails LOUDLY: any truncation or malformed varint throws
// durable::CorruptState naming the stream context and the byte offset,
// never returning garbage.  Callers that want to tolerate a torn tail
// (the WAL scanner) catch CorruptState and keep the valid prefix.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "durable/durable.h"
#include "obs/trace_codec.h"

namespace burstq::durable {

class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { obs::trace_detail::put_u32(buf_, v); }
  void u64(std::uint64_t v) { obs::trace_detail::put_u64(buf_, v); }
  void varint(std::uint64_t v) { obs::trace_detail::put_varint(buf_, v); }
  void svarint(std::int64_t v) {
    obs::trace_detail::put_varint(buf_, obs::trace_detail::zigzag(v));
  }
  /// IEEE-754 bit pattern: reads back bit-identical, NaN payloads kept.
  void f64(double v) { obs::trace_detail::put_f64(buf_, v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    varint(s.size());
    buf_.append(s.data(), s.size());
  }
  void size_vec(const std::vector<std::size_t>& v) {
    varint(v.size());
    for (const std::size_t x : v) varint(x);
  }
  void f64_vec(const std::vector<double>& v) {
    varint(v.size());
    for (const double x : v) f64(x);
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class StateReader {
 public:
  /// `context` names the stream in CorruptState messages (a file path
  /// or "wal record" etc.).
  StateReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  std::uint8_t u8() {
    if (pos_ >= data_.size()) fail("u8 truncated");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (!obs::trace_detail::get_u32(data_, pos_, v)) fail("u32 truncated");
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!obs::trace_detail::get_u64(data_, pos_, v)) fail("u64 truncated");
    return v;
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    if (!obs::trace_detail::get_varint(data_, pos_, v))
      fail("varint truncated or malformed");
    return v;
  }
  std::int64_t svarint() { return obs::trace_detail::unzigzag(varint()); }
  double f64() {
    double v = 0;
    if (!obs::trace_detail::get_f64(data_, pos_, v)) fail("f64 truncated");
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = varint();
    if (pos_ + n > data_.size()) fail("string body truncated");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::vector<std::size_t> size_vec() {
    const std::uint64_t n = varint();
    if (n > data_.size() - pos_) fail("vector count exceeds stream");
    std::vector<std::size_t> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
      v.push_back(static_cast<std::size_t>(varint()));
    return v;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = varint();
    if (n > (data_.size() - pos_) / 8) fail("vector count exceeds stream");
    std::vector<double> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  std::size_t pos() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }
  void expect_done() {
    if (!done()) fail("trailing bytes after decoded state");
  }
  [[noreturn]] void fail(const char* what) const {
    throw CorruptState(context_ + ": corrupt at byte " +
                       std::to_string(pos_) + ": " + what);
  }

 private:
  std::string_view data_;
  std::size_t pos_{0};
  std::string context_;
};

}  // namespace burstq::durable
