// Write-ahead journal.  One WAL file accompanies each snapshot: the
// snapshot at slot S owns wal-<S>.bqwl, whose groups journal the slots
// (or controller ops) committed AFTER S.  Records are buffered in
// memory while a slot executes and framed into one CRC-protected group
// at commit; a group that is present and checks out is, by definition,
// a slot that fully committed.
//
// File layout:
//   header   "BQWL" u8 version  3x u8 zero  u64 base_slot        (16 B)
//   group*   u32 payload_len  u32 crc32(payload)  payload
//   payload  varint slot  varint state_crc  varint n_records
//            n_records x (u8 type, varint len, bytes)
//
// The scanner tolerates a torn tail (partial final group, bit flip in
// the last frame): it returns the valid prefix and flags `torn`.  It
// never throws for tail damage — a crash mid-write is the expected
// case, not corruption.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace burstq::durable {

/// Record types.  1..15 are simulator mutations (journaled before the
/// mutation is applied), 16+ are controller ops (see controller_store.h).
enum class WalRecord : std::uint8_t {
  kCrash = 1,        // PM crash: evacuation about to run
  kRecover = 2,      // PM back up
  kStall = 3,        // in-flight migrations stalled
  kAbort = 4,        // migration abort draw fired
  kMigrate = 5,      // scheduler move committed
  kMigrateFail = 6,  // scheduler found no target
  kQueue = 7,        // VM entered the recovery queue
  kOpAdmit = 16,
  kOpDepart = 17,
  kOpResize = 18,
  kOpTick = 19,
  kOpCrash = 20,
  kOpRecover = 21,
};

const char* wal_record_name(WalRecord type);

/// Appends records for the slot in flight, then atomically (w.r.t. the
/// scanner: the group's CRC only matches once fully written) commits
/// them as one group.  Creating a WalWriter truncates `path`.
class WalWriter {
 public:
  WalWriter(std::string path, std::size_t base_slot, bool fsync);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one record for the group in flight.  Journal-then-apply:
  /// call this BEFORE mutating in-memory state.
  void append(WalRecord type, std::string payload);

  /// Frames buffered records into one group stamped with `slot` and the
  /// caller's state digest, writes + flushes (+fsync when configured),
  /// and returns the exact group bytes for replay verification.
  std::string commit(std::size_t slot, std::uint32_t state_crc);

  /// Drops buffered (uncommitted) records — a killed slot's partial work.
  void discard_pending() { pending_.clear(); }

  std::size_t groups_committed() const { return groups_; }
  std::size_t base_slot() const { return base_slot_; }
  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return bytes_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

 private:
  std::string path_;
  std::size_t base_slot_{0};
  bool fsync_{false};
  std::FILE* out_{nullptr};
  std::vector<std::pair<std::uint8_t, std::string>> pending_;
  std::size_t groups_{0};
  std::uint64_t bytes_{0};
  std::uint64_t fsyncs_{0};
};

/// One fully committed group, as scanned back.
struct WalGroup {
  std::size_t slot{0};
  std::uint32_t state_crc{0};
  std::vector<std::pair<WalRecord, std::string>> records;
  /// The group's exact on-disk bytes (frame + payload) — compared
  /// against WalWriter::commit output during replay verification.
  std::string bytes;
};

struct WalScan {
  /// File existed and carried a valid header.
  bool present{false};
  std::size_t base_slot{0};
  std::vector<WalGroup> groups;
  /// Bytes of header + valid groups; anything past this is the torn tail.
  std::uint64_t valid_bytes{0};
  /// Trailing bytes existed past the last valid group (partial write or
  /// tail corruption) and were discarded.
  bool torn{false};
};

/// Scans a WAL, keeping the longest valid prefix.  Missing file or bad
/// header -> present=false (and torn=true if the file existed).  Never
/// throws for tail damage.
WalScan scan_wal(const std::string& path);

}  // namespace burstq::durable
