#include "sim/migration.h"

#include "common/error.h"
#include "obs/obs.h"
#include "placement/placement.h"

namespace burstq {

void MigrationPolicy::validate() const {
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
  BURSTQ_REQUIRE(cvr_window > 0,
                 "cvr_window must be >= 1 slot (a zero-length window would "
                 "make the migration trigger see no history at all)");
  BURSTQ_REQUIRE(cost_slots > 0,
                 "cost_slots must be >= 1 (a live migration occupies the "
                 "source PM for at least one copy slot; 0 would silently "
                 "model free migrations)");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
}

std::optional<VmId> select_victim(std::span<const std::size_t> vms_on_pm,
                                  std::span<const Resource> demand,
                                  std::span<const VmState> state) {
  // Strictly-greater on demand plus lowest-VmId on ties: the winner is a
  // pure function of (demand, state) regardless of vms_on_pm order, which
  // swap-remove churn permutes freely.
  std::optional<VmId> best_on;
  Resource best_on_demand = -1.0;
  std::optional<VmId> best_any;
  Resource best_any_demand = -1.0;

  for (std::size_t i : vms_on_pm) {
    const Resource d = demand[i];
    if (state[i] == VmState::kOn &&
        (d > best_on_demand ||
         (d == best_on_demand && i < best_on->value))) {
      best_on_demand = d;
      best_on = VmId{i};
    }
    if (d > best_any_demand ||
        (d == best_any_demand && i < best_any->value)) {
      best_any_demand = d;
      best_any = VmId{i};
    }
  }
  return best_on ? best_on : best_any;
}

std::optional<VmId> select_victim_policy(
    VictimSelection policy, const ProblemInstance& inst,
    std::span<const std::size_t> vms_on_pm, std::span<const Resource> demand,
    std::span<const VmState> state) {
  BURSTQ_COUNT("sim.victim_selections", 1);
  if (policy == VictimSelection::kLargestOnDemand)
    return select_victim(vms_on_pm, demand, state);

  std::optional<VmId> best;
  double best_key = 0.0;
  for (std::size_t i : vms_on_pm) {
    // kSmallestRb minimizes rb (less memory to copy); kLargestRe evicts
    // the biggest potential spike.  Lowest VmId wins equal keys.
    const double key = policy == VictimSelection::kSmallestRb
                           ? -inst.vms[i].rb
                           : inst.vms[i].re;
    if (!best || key > best_key || (key == best_key && i < best->value)) {
      best_key = key;
      best = VmId{i};
    }
  }
  return best;
}

std::optional<PmId> select_target(PmId source, Resource victim_demand,
                                  std::span<const Resource> pm_load,
                                  std::span<const Resource> pm_capacity,
                                  std::span<const std::size_t> pm_vm_count,
                                  std::size_t max_vms,
                                  std::span<const std::uint8_t> pm_up) {
  BURSTQ_REQUIRE(pm_load.size() == pm_capacity.size() &&
                     pm_load.size() == pm_vm_count.size(),
                 "per-PM spans must agree in length");
  BURSTQ_REQUIRE(pm_up.empty() || pm_up.size() == pm_load.size(),
                 "pm_up mask must be empty or match the PM count");
  BURSTQ_COUNT("sim.target_searches", 1);
  for (std::size_t j = 0; j < pm_load.size(); ++j) {
    const PmId pm{j};
    if (pm == source) continue;
    if (!pm_up.empty() && !pm_up[j]) continue;
    if (pm_vm_count[j] + 1 > max_vms) continue;
    if (pm_load[j] + victim_demand <=
        pm_capacity[j] * (1.0 + kCapacityEpsilon))
      return pm;
  }
  return std::nullopt;
}

}  // namespace burstq
