#include "sim/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace burstq {

CvrTracker::CvrTracker(std::size_t n_pms, std::size_t window)
    : total_(n_pms), window_size_(window) {
  BURSTQ_REQUIRE(n_pms > 0, "CvrTracker needs at least one PM");
  BURSTQ_REQUIRE(window > 0, "CVR window must be positive");
}

void CvrTracker::record(PmId pm, bool violated) {
  BURSTQ_REQUIRE(pm.value < total_.size(), "PM index out of range");
  PerPm& s = total_[pm.value];
  ++s.observed;
  if (violated) ++s.violated;
  s.window.push_back(violated);
  if (violated) ++s.window_violations;
  if (s.window.size() > window_size_) {
    if (s.window.front()) --s.window_violations;
    s.window.pop_front();
  }
}

double CvrTracker::cvr(PmId pm) const {
  BURSTQ_REQUIRE(pm.value < total_.size(), "PM index out of range");
  const PerPm& s = total_[pm.value];
  if (s.observed == 0) return 0.0;
  return static_cast<double>(s.violated) / static_cast<double>(s.observed);
}

double CvrTracker::windowed_cvr(PmId pm) const {
  BURSTQ_REQUIRE(pm.value < total_.size(), "PM index out of range");
  const PerPm& s = total_[pm.value];
  if (s.window.empty()) return 0.0;
  return static_cast<double>(s.window_violations) /
         static_cast<double>(s.window.size());
}

void CvrTracker::reset_window(PmId pm) {
  BURSTQ_REQUIRE(pm.value < total_.size(), "PM index out of range");
  total_[pm.value].window.clear();
  total_[pm.value].window_violations = 0;
}

std::size_t CvrTracker::observed_slots(PmId pm) const {
  BURSTQ_REQUIRE(pm.value < total_.size(), "PM index out of range");
  return total_[pm.value].observed;
}

std::size_t CvrTracker::violations(PmId pm) const {
  BURSTQ_REQUIRE(pm.value < total_.size(), "PM index out of range");
  return total_[pm.value].violated;
}

EpisodeStats violation_episodes(const std::vector<bool>& violated) {
  EpisodeStats s;
  std::size_t run = 0;
  for (bool v : violated) {
    if (v) {
      ++run;
      ++s.violated_slots;
      s.longest = std::max(s.longest, run);
    } else {
      if (run > 0) ++s.episodes;
      run = 0;
    }
  }
  if (run > 0) ++s.episodes;
  s.mean_length = s.episodes == 0
                      ? 0.0
                      : static_cast<double>(s.violated_slots) /
                            static_cast<double>(s.episodes);
  return s;
}

double CvrTracker::mean_cvr() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < total_.size(); ++j) {
    if (total_[j].observed == 0) continue;
    sum += cvr(PmId{j});
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double CvrTracker::max_cvr() const {
  double m = 0.0;
  for (std::size_t j = 0; j < total_.size(); ++j)
    m = std::max(m, cvr(PmId{j}));
  return m;
}

}  // namespace burstq
