#include "sim/workload_gen.h"

#include "common/error.h"

namespace burstq {

WorkloadEnsemble::WorkloadEnsemble(const ProblemInstance& inst, Rng rng,
                                   bool start_stationary)
    : inst_(&inst), rng_(rng) {
  inst.validate();
  chains_.reserve(inst.n_vms());
  for (const auto& v : inst.vms) {
    OnOffChain chain(v.onoff);
    if (start_stationary) chain.reset_stationary(rng_);
    chains_.push_back(chain);
  }
}

void WorkloadPhase::validate() const {
  BURSTQ_REQUIRE(p_on.has_value() || p_off.has_value(),
                 "a workload phase must override p_on, p_off, or both");
  OnOffParams probe;
  if (p_on) probe.p_on = *p_on;
  if (p_off) probe.p_off = *p_off;
  probe.validate();
}

void WorkloadEnsemble::step() {
  for (auto& c : chains_) c.step(rng_);
}

void WorkloadEnsemble::apply_phase(const WorkloadPhase& phase) {
  phase.validate();
  for (auto& c : chains_) {
    OnOffParams p = c.params();
    if (phase.p_on) p.p_on = *phase.p_on;
    if (phase.p_off) p.p_off = *phase.p_off;
    c.set_params(p);
  }
}

Resource WorkloadEnsemble::demand(std::size_t vm) const {
  BURSTQ_ASSERT(vm < chains_.size(), "VM index out of range");
  return inst_->vms[vm].demand(chains_[vm].state());
}

VmState WorkloadEnsemble::state(std::size_t vm) const {
  BURSTQ_ASSERT(vm < chains_.size(), "VM index out of range");
  return chains_[vm].state();
}

std::size_t WorkloadEnsemble::on_count() const {
  std::size_t on = 0;
  for (const auto& c : chains_)
    if (c.on()) ++on;
  return on;
}

DemandTrace record_demand_trace(const ProblemInstance& inst,
                                std::size_t slots, Rng rng,
                                bool start_stationary) {
  BURSTQ_REQUIRE(slots > 0, "trace needs at least one slot");
  WorkloadEnsemble ensemble(inst, rng, start_stationary);
  DemandTrace trace;
  trace.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<Resource> row(inst.n_vms());
    for (std::size_t i = 0; i < inst.n_vms(); ++i)
      row[i] = ensemble.demand(i);
    trace.push_back(std::move(row));
    ensemble.step();
  }
  return trace;
}

}  // namespace burstq
