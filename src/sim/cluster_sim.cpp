#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "durable/state_codec.h"
#include "obs/event_log.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "placement/queuing_ffd.h"
#include "sim/flight.h"

namespace burstq {

void SimConfig::validate() const {
  BURSTQ_REQUIRE(slots > 0, "simulation needs at least one slot");
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
  BURSTQ_REQUIRE(users_per_unit > 0.0, "users_per_unit must be positive");
  policy.validate();
  power.validate();
  if (faults) faults->validate(fault::kNoPm, slots);
  recovery.validate();
  if (durability) durability->validate();
  BURSTQ_REQUIRE(!faults || !faults->has_kills() || durability.has_value(),
                 "the fault plan schedules kills but SimConfig::durability "
                 "is not set — a killed run without snapshots cannot be "
                 "restored");
  for (std::size_t i = 0; i < workload_phases.size(); ++i) {
    workload_phases[i].validate();
    BURSTQ_REQUIRE(workload_phases[i].slot < slots,
                   "workload phase at slot " +
                       std::to_string(workload_phases[i].slot) +
                       " is outside the horizon (slots=" +
                       std::to_string(slots) + ")");
    BURSTQ_REQUIRE(
        i == 0 || workload_phases[i - 1].slot < workload_phases[i].slot,
        "workload phases must have strictly ascending slots");
  }
}

ClusterSimulator::ClusterSimulator(const ProblemInstance& inst,
                                   const Placement& initial,
                                   SimConfig config, Rng rng)
    : inst_(&inst),
      placement_(initial),
      config_(config),
      rng_(rng),
      ensemble_(inst, rng_.split(), config.start_stationary),
      demand_cache_(inst.n_vms(), 0.0) {
  inst.validate();
  config_.validate();
  BURSTQ_REQUIRE(initial.vms_assigned() == inst.n_vms(),
                 "initial placement must assign every VM");
  BURSTQ_REQUIRE(initial.n_pms() == inst.n_pms(),
                 "placement PM count must match the instance");
  BURSTQ_REQUIRE(config_.slo == nullptr ||
                     config_.slo->n_pms() == inst.n_pms(),
                 "SLO tracker PM count must match the instance");

  if (config_.policy.target == TargetSelection::kReservationAware) {
    // The burstiness-aware scheduler judges targets by Eq. (17); size the
    // table so even baseline placements that overshoot d can be checked.
    std::size_t max_k = config_.policy.max_vms_per_pm;
    for (std::size_t j = 0; j < inst.n_pms(); ++j)
      max_k = std::max(max_k, initial.count_on(PmId{j}) + 1);
    reservation_table_.emplace(max_k, round_uniform_params(inst.vms),
                               config_.policy.rho);
  }

  if (config_.faults && config_.faults->any()) {
    injector_.emplace(*config_.faults, inst.n_pms());
    rounded_ = round_uniform_params(inst.vms);
    recovery_.emplace(inst, config_.recovery, config_.policy.max_vms_per_pm,
                      config_.policy.rho, StationaryMethod::kGaussian);
    aborted_once_.assign(inst.n_vms(), false);
  }

  if (config_.webserver_workload) {
    web_.reserve(inst.n_vms());
    for (const auto& v : inst.vms) {
      WebServerParams wp;
      wp.sigma_seconds = config_.sigma_seconds;
      wp.users_per_unit = config_.users_per_unit;
      const double nu = std::max(1.0, std::round(v.rb * wp.users_per_unit));
      const double pu = std::max(nu, std::round(v.rp() * wp.users_per_unit));
      wp.normal_users = static_cast<std::size_t>(nu);
      wp.peak_users = static_cast<std::size_t>(pu);
      web_.emplace_back(wp);
    }
  }

  tracker_.emplace(inst.n_pms(), config_.policy.cvr_window);
  meter_.emplace(config_.power, config_.sigma_seconds);
  if (config_.durability) {
    store_.emplace(config_.durability->dir, config_.durability->fsync);
    history_.reserve(config_.slots);
  }
  // Last: its sim.config event must be the final ctor-time emission so a
  // restore's log rewind lands right past it.
  recorder_.emplace("cluster_sim", inst.n_pms(), config_.slots,
                    config_.policy.cvr_window, config_.policy.rho);
}

void ClusterSimulator::apply_faults(const fault::SlotFaults& sf,
                                    std::size_t t, SimReport& report) {
  const std::span<const std::uint8_t> up(injector_->up_mask());

  // Stalls: every live copy takes longer.
  if (sf.stall_slots > 0 && !in_flight_.empty()) {
    for (auto& f : in_flight_) f.remaining += sf.stall_slots;
    report.faults.migration_stalls += in_flight_.size();
    durable::StateWriter rec;
    rec.varint(sf.stall_slots);
    rec.varint(in_flight_.size());
    journal(durable::WalRecord::kStall, rec.take());
    BURSTQ_COUNT("fault.migration.stalls", in_flight_.size());
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.migration.stall",
                 {"t", t}, {"copies", in_flight_.size()},
                 {"extra", sf.stall_slots});
  }

  // PM crashes: in-flight copies touching the dead PM die with it, then
  // hosted VMs evacuate through the reservation ladder (or queue).
  for (std::size_t j : sf.crashes) {
    ++report.faults.pm_crashes;
    std::erase_if(in_flight_, [&](const InFlight& f) {
      if (f.source_pm == j) return true;  // copy source gone; move is final
      if (placement_.pm_of(VmId{f.vm}) == PmId{j}) {
        // Target died mid-copy: the copy is void; the VM is evacuated
        // below along with everything else hosted on j.
        aborted_once_[f.vm] = true;
        ++report.faults.migration_aborts;
        durable::StateWriter rec;
        rec.varint(f.vm);
        journal(durable::WalRecord::kAbort, rec.take());
        BURSTQ_COUNT("fault.migration.aborts", 1);
        BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.migration.abort",
                     {"t", t}, {"vm", f.vm}, {"reason", "target-crash"});
        return true;
      }
      return false;
    });
    const std::size_t evacuated =
        recovery_->evacuate(placement_, PmId{j}, up, rounded_, t);
    report.faults.evacuated += evacuated;
    durable::StateWriter rec;
    rec.varint(j);
    rec.varint(evacuated);
    journal(durable::WalRecord::kCrash, rec.take());
  }
  report.faults.pm_recoveries += sf.recoveries.size();
  for (std::size_t j : sf.recoveries) {
    durable::StateWriter rec;
    rec.varint(j);
    journal(durable::WalRecord::kRecover, rec.take());
  }

  // Scripted / Markov migration aborts: the VM rolls back to its source
  // (which is up — copies from a crashed source were dropped above and at
  // every earlier crash).
  std::erase_if(in_flight_, [&](const InFlight& f) {
    const bool abort =
        sf.abort_migrations || injector_->draw_migration_abort();
    if (!abort) return false;
    placement_.unassign(VmId{f.vm});
    placement_.assign(VmId{f.vm}, PmId{f.source_pm});
    aborted_once_[f.vm] = true;
    ++report.faults.migration_aborts;
    durable::StateWriter rec;
    rec.varint(f.vm);
    journal(durable::WalRecord::kAbort, rec.take());
    BURSTQ_COUNT("fault.migration.aborts", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.migration.abort",
                 {"t", t}, {"vm", f.vm}, {"to", f.source_pm},
                 {"reason", sf.abort_migrations ? "scripted" : "markov"});
    return true;
  });

  // Queued VMs whose backoff expired get another attempt; capacity may
  // have returned via the recoveries above or load churn.
  if (!recovery_->queue().empty())
    recovery_->drain(placement_, up, rounded_, t);

  if (!recovery_->queue().empty()) {
    durable::StateWriter rec;
    rec.varint(recovery_->queue().size());
    rec.varint(recovery_->enqueued_total());
    journal(durable::WalRecord::kQueue, rec.take());
  }

  BURSTQ_ASSERT(recovery_->invariant_holds(placement_, up),
                "recovery invariant violated: a VM is neither hosted on an "
                "up PM nor queued");
}

void ClusterSimulator::compute_loads(std::vector<Resource>& load,
                                     std::vector<Resource>& demand) const {
  std::fill(load.begin(), load.end(), 0.0);
  for (std::size_t j = 0; j < inst_->n_pms(); ++j)
    for (std::size_t i : placement_.vms_on(PmId{j})) load[j] += demand[i];
  // Mid-migration VMs still burden their source (live-migration copy
  // traffic and the "noticeable CPU usage on the host PM" the paper cites).
  for (const auto& mig : in_flight_) load[mig.source_pm] += demand[mig.vm];
}

SimReport ClusterSimulator::run() {
  BURSTQ_SPAN("sim.run");
  BURSTQ_REQUIRE(!ran_, "ClusterSimulator::run() may only be called once");
  ran_ = true;

  const std::size_t m = inst_->n_pms();
  CvrTracker& tracker = *tracker_;
  EnergyMeter& meter = *meter_;
  SimReport& report = report_;
  FlightSlotRecorder& recorder = *recorder_;
  if (start_slot_ == 0) {
    report.pms_used_timeline.reserve(config_.slots);
    report.migrations_per_slot.reserve(config_.slots);
  }

  std::vector<Resource> load(m, 0.0);
  std::vector<VmState> states(inst_->n_vms());
  std::vector<Resource> capacity(m);
  for (std::size_t j = 0; j < m; ++j) capacity[j] = inst_->pms[j].capacity;

  std::vector<std::size_t> obs_active;
  std::vector<std::size_t> obs_violated;

  // The harness observer needs the per-slot id lists even when no
  // detail-level trace sink is open; so do durable snapshots (the
  // observation history is part of the state).
  const bool observe = recorder.enabled() || config_.on_slot != nullptr ||
                       store_.has_value();

  for (std::size_t t = start_slot_; t < config_.slots; ++t) {
    BURSTQ_SPAN("sim.slot");
    maybe_checkpoint(t);
    // Workload timeline: a phase at slot t shapes the transitions *into*
    // slot t (applied before the step that produces slot t's states).
    while (next_phase_ < config_.workload_phases.size() &&
           config_.workload_phases[next_phase_].slot <= t) {
      ensemble_.apply_phase(config_.workload_phases[next_phase_]);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "workload.phase", {"t", t},
                   {"phase", next_phase_});
      ++next_phase_;
    }
    if (t > 0) ensemble_.step();

    // 1-2. demands and per-PM loads.
    for (std::size_t i = 0; i < inst_->n_vms(); ++i) {
      states[i] = ensemble_.state(i);
      if (!config_.webserver_workload) {
        demand_cache_[i] = inst_->vms[i].demand(states[i]);
      } else if (config_.webserver_exact) {
        demand_cache_[i] = web_[i].requests_to_demand(
            web_[i].sample_requests_exact(states[i], rng_));
      } else {
        demand_cache_[i] = web_[i].sample_demand(states[i], rng_);
      }
    }

    // Fault injection happens between demand sampling and load accounting
    // so this slot's loads already reflect evacuations and rollbacks.  The
    // solver-fault guard stays armed for the whole slot — the scheduler
    // below must degrade, not abort, while the outage lasts.
    std::optional<ScopedSolverFault> solver_guard;
    if (injector_) {
      const fault::SlotFaults sf = injector_->advance(t);
      // A kill fires before any slot-t mutation: the last committed WAL
      // group is slot t-1, so a restore replays exactly up to here.  The
      // exception is deliberately not a std::exception — nothing between
      // here and the restore loop may swallow it.
      if (sf.kill) throw durable::SimKilled{t};
      solver_guard.emplace(sf.solver_fault);
      apply_faults(sf, t, report);
    }

    compute_loads(load, demand_cache_);

    // 3. violation bookkeeping (only PMs that actually carry load state).
    std::size_t violations_this_slot = 0;
    if (observe) {
      obs_active.clear();
      obs_violated.clear();
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (placement_.count_on(PmId{j}) == 0) continue;
      const bool violated =
          load[j] > capacity[j] * (1.0 + kCapacityEpsilon);
      tracker.record(PmId{j}, violated);
      if (config_.slo != nullptr) config_.slo->record(PmId{j}, violated);
      if (violated) ++violations_this_slot;
      if (observe) {
        obs_active.push_back(j);
        if (violated) obs_violated.push_back(j);
      }
    }
    if (config_.slo != nullptr) config_.slo->end_slot();
    recorder.slot(t, obs_active, obs_violated);
    BURSTQ_COUNT("sim.slot_violations", violations_this_slot);

    // 4. dynamic scheduling: one eviction per PM per slot when the recent
    // CVR breaches rho.
    std::size_t migrations_this_slot = 0;
    const std::size_t failed_before = report.failed_migrations;
    if (config_.enable_migration) {
      for (std::size_t j = 0; j < m; ++j) {
        const PmId source{j};
        if (placement_.count_on(source) == 0) continue;
        if (tracker.windowed_cvr(source) <= config_.policy.rho) continue;

        const auto victim = select_victim_policy(
            config_.policy.victim, *inst_, placement_.vms_on(source),
            demand_cache_, states);
        BURSTQ_ASSERT(victim.has_value(), "non-empty PM had no victim");
        const Resource vdemand = demand_cache_[victim->value];

        const std::span<const std::uint8_t> up =
            injector_ ? std::span<const std::uint8_t>(injector_->up_mask())
                      : std::span<const std::uint8_t>{};
        std::optional<PmId> target;
        if (config_.policy.target == TargetSelection::kReservationAware) {
          for (std::size_t p = 0; p < m; ++p) {
            const PmId cand{p};
            if (cand == source) continue;
            if (!up.empty() && !up[p]) continue;
            if (fits_with_reservation(*inst_, placement_, *victim, cand,
                                      *reservation_table_)) {
              target = cand;
              break;
            }
          }
        } else {
          std::vector<std::size_t> counts(m);
          for (std::size_t p = 0; p < m; ++p)
            counts[p] = placement_.count_on(PmId{p});
          target = select_target(source, vdemand, load, capacity, counts,
                                 config_.policy.max_vms_per_pm, up);
        }

        if (target) {
          placement_.unassign(*victim);
          placement_.assign(*victim, *target);
          load[target->value] += vdemand;
          // Source keeps carrying the copy for cost_slots (>= 1) slots.
          in_flight_.push_back(
              InFlight{victim->value, j, config_.policy.cost_slots});
          report.events.push_back(MigrationEvent{
              static_cast<TimeSlot>(t), *victim, source, *target});
          ++migrations_this_slot;
          durable::StateWriter rec;
          rec.varint(victim->value);
          rec.varint(j);
          rec.varint(target->value);
          journal(durable::WalRecord::kMigrate, rec.take());
          BURSTQ_COUNT("sim.migrations", 1);
          if (!aborted_once_.empty() && aborted_once_[victim->value]) {
            // Re-moving a VM whose previous copy was rolled back by a
            // fault is a retry, not a fresh migration.
            aborted_once_[victim->value] = false;
            ++report.faults.retries;
            BURSTQ_COUNT("migration.retries", 1);
          }
          BURSTQ_EVENT(obs::EventLevel::kDecisions, "migration", {"t", t},
                       {"vm", victim->value}, {"from", j},
                       {"to", target->value}, {"ok", true});
          tracker.reset_window(source);
          tracker.reset_window(*target);
          BURSTQ_EVENT(obs::EventLevel::kDetail, "window.reset", {"t", t},
                       {"pm", j});
          BURSTQ_EVENT(obs::EventLevel::kDetail, "window.reset", {"t", t},
                       {"pm", target->value});
        } else {
          report.events.push_back(MigrationEvent{
              static_cast<TimeSlot>(t), *victim, source, PmId{}});
          ++report.failed_migrations;
          durable::StateWriter rec;
          rec.varint(victim->value);
          rec.varint(j);
          journal(durable::WalRecord::kMigrateFail, rec.take());
          BURSTQ_COUNT("sim.migrations_failed", 1);
          BURSTQ_EVENT(obs::EventLevel::kDecisions, "migration", {"t", t},
                       {"vm", victim->value}, {"from", j}, {"ok", false});
          // Cooldown: without a reset the trigger would re-fire every slot
          // even though the cluster has no room anywhere.
          tracker.reset_window(source);
          BURSTQ_EVENT(obs::EventLevel::kDetail, "window.reset", {"t", t},
                       {"pm", j});
        }
      }
    }

    // 5. usage + energy.
    std::size_t used = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const bool active =
          placement_.count_on(PmId{j}) > 0 ||
          std::any_of(in_flight_.begin(), in_flight_.end(),
                      [j](const InFlight& f) { return f.source_pm == j; });
      if (!active) continue;
      ++used;
      meter.add_pm_slot(load[j] / capacity[j]);
    }
    report.pms_used_timeline.push_back(used);
    report.migrations_per_slot.push_back(migrations_this_slot);
    report.pms_used_max = std::max(report.pms_used_max, used);
    report.total_migrations += migrations_this_slot;

    // 6. migration copies complete.
    for (auto& f : in_flight_) --f.remaining;
    std::erase_if(in_flight_, [](const InFlight& f) { return f.remaining == 0; });

    // 7. hand the closed slot to the harness observer.
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    if (config_.slo != nullptr &&
        (config_.on_slot != nullptr || store_.has_value())) {
      const obs::SloReport slo_rep = config_.slo->report();
      fast_burn = slo_rep.fast.burn;
      slow_burn = slo_rep.slow.burn;
    }
    if (config_.on_slot) {
      SlotObservation ob;
      ob.t = t;
      ob.active = &obs_active;
      ob.violated = &obs_violated;
      ob.migrations = migrations_this_slot;
      ob.failed_migrations = report.failed_migrations - failed_before;
      ob.pms_used = used;
      ob.fast_burn = fast_burn;
      ob.slow_burn = slow_burn;
      config_.on_slot(ob);
    }

    // 8. the slot is final: retain its observation for future snapshots
    // and commit its journal group (during replay: verify instead).
    if (store_) {
      history_.push_back(StoredObs{obs_active, obs_violated,
                                   migrations_this_slot,
                                   report.failed_migrations - failed_before,
                                   used, fast_burn, slow_burn});
    }
    commit_slot(t);
  }

  report.pms_used_end = report.pms_used_timeline.back();
  report.pm_cvr.resize(m);
  report.pm_windowed_cvr_end.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    report.pm_cvr[j] = tracker.cvr(PmId{j});
    report.pm_windowed_cvr_end[j] = tracker.windowed_cvr(PmId{j});
  }
  report.mean_cvr = tracker.mean_cvr();
  report.max_cvr = tracker.max_cvr();
  report.energy_wh = meter.watt_hours();
  if (recovery_) {
    report.faults.queue_end = recovery_->queue().size();
    report.faults.enqueued = recovery_->enqueued_total();
    report.faults.retries += recovery_->retries_total();
    report.faults.solver_degraded = recovery_->ladder().degraded_decisions();
    for (std::size_t i = 0; i < inst_->n_vms(); ++i) {
      const PmId pm = placement_.pm_of(VmId{i});
      const bool hosted_up = pm.valid() && injector_->pm_up(pm.value);
      const bool queued = std::any_of(
          recovery_->queue().begin(), recovery_->queue().end(),
          [i](const fault::QueuedVm& q) { return q.vm == i; });
      if (!hosted_up && !queued) ++report.faults.lost_vms;
    }
  }
  return report;
}

void ClusterSimulator::journal(durable::WalRecord type,
                               std::string payload) {
  if (wal_) wal_->append(type, std::move(payload));
}

std::uint32_t ClusterSimulator::placement_crc() const {
  std::string buf;
  for (std::size_t i = 0; i < inst_->n_vms(); ++i) {
    const PmId pm = placement_.pm_of(VmId{i});
    obs::trace_detail::put_varint(buf, pm.valid() ? pm.value + 1 : 0);
  }
  return obs::trace_detail::crc32(buf);
}

void ClusterSimulator::commit_slot(std::size_t t) {
  if (!wal_) return;
  const std::string bytes = wal_->commit(t, placement_crc());
  if (t < replay_upto_) {
    const std::size_t idx = t - wal_base_slot_;
    BURSTQ_ASSERT(idx < verify_groups_.size(),
                  "replay slot outside the verified WAL range");
    if (bytes != verify_groups_[idx].bytes)
      throw durable::CorruptState(
          "WAL divergence at slot " + std::to_string(t) +
          ": re-executed mutations do not match the journal (" +
          wal_->path() + ")");
  }
}

void ClusterSimulator::maybe_checkpoint(std::size_t t) {
  if (!store_) return;
  // During replay the snapshots and journal epochs already exist; writing
  // them again would truncate the very WAL being verified.
  if (t < replay_upto_) return;
  if (t % config_.durability->snapshot_every != 0) return;
  const std::string blob = encode_state(t);
  store_->write_snapshot(t, blob);
  wal_ = std::make_unique<durable::WalWriter>(
      store_->wal_path(t), t, config_.durability->fsync);
  wal_base_slot_ = t;
  store_->prune(2);
}

std::string ClusterSimulator::encode_state(std::size_t t) {
  durable::StateWriter w;
  w.u64(1);  // blob version
  w.varint(t);

  // Digest of the construction arguments the blob does NOT carry — a
  // restore into a differently-configured simulator must fail loudly,
  // not deserialize garbage.
  {
    std::string cfg;
    obs::trace_detail::put_varint(cfg, inst_->n_vms());
    obs::trace_detail::put_varint(cfg, inst_->n_pms());
    obs::trace_detail::put_varint(cfg, config_.slots);
    obs::trace_detail::put_varint(cfg, config_.policy.cvr_window);
    obs::trace_detail::put_varint(cfg, config_.policy.max_vms_per_pm);
    obs::trace_detail::put_varint(cfg,
                                  config_.webserver_workload ? 1u : 0u);
    obs::trace_detail::put_varint(cfg, config_.slo != nullptr ? 1u : 0u);
    w.u32(obs::trace_detail::crc32(cfg));
  }

  for (const std::uint64_t s : rng_.state()) w.u64(s);
  for (const std::uint64_t s : ensemble_.rng().state()) w.u64(s);
  w.varint(ensemble_.n_vms());
  for (std::size_t i = 0; i < ensemble_.n_vms(); ++i) {
    const OnOffChain& c = ensemble_.chain(i);
    w.f64(c.params().p_on);
    w.f64(c.params().p_off);
    w.u8(static_cast<std::uint8_t>(c.state()));
  }

  const PlacementState ps = placement_.export_state();
  w.varint(ps.pm_of.size());
  for (const PmId pm : ps.pm_of)
    w.varint(pm.valid() ? pm.value + 1 : 0);
  w.varint(ps.vms_on.size());
  for (const auto& list : ps.vms_on) w.size_vec(list);
  w.boolean(ps.bound);
  if (ps.bound) {
    w.f64_vec(ps.rb_sum);
    w.f64_vec(ps.re_max);
  }

  w.varint(in_flight_.size());
  for (const InFlight& f : in_flight_) {
    w.varint(f.vm);
    w.varint(f.source_pm);
    w.varint(f.remaining);
  }

  const CvrTrackerState cs = tracker_->export_state();
  w.varint(cs.pms.size());
  for (const auto& pm : cs.pms) {
    w.varint(pm.observed);
    w.varint(pm.violated);
    w.varint(pm.window.size());
    for (const std::uint8_t b : pm.window) w.u8(b);
  }

  w.boolean(config_.slo != nullptr);
  if (config_.slo != nullptr) {
    const obs::SloTrackerState ss = config_.slo->export_state();
    w.varint(ss.pms.size());
    for (const auto& pm : ss.pms) {
      w.varint(pm.observed);
      w.varint(pm.violated);
      w.varint(pm.ring.size());
      for (const std::uint8_t b : pm.ring) w.u8(b);
      w.varint(pm.ring_observed);
      w.varint(pm.ring_violated);
    }
    w.varint(ss.cur.size());
    for (const std::uint8_t b : ss.cur) w.u8(b);
    w.varint(ss.cluster_ring.size());
    for (const auto& [o, v] : ss.cluster_ring) {
      w.u32(o);
      w.u32(v);
    }
    w.varint(ss.slots);
    w.varint(ss.fast_obs);
    w.varint(ss.fast_viol);
    w.varint(ss.slow_obs);
    w.varint(ss.slow_viol);
    w.varint(ss.cum_obs);
    w.varint(ss.cum_viol);
    w.varint(ss.breaches);
    w.boolean(ss.breaching);
  }

  w.f64(meter_->joules());

  w.varint(report_.total_migrations);
  w.varint(report_.failed_migrations);
  w.varint(report_.pms_used_max);
  w.size_vec(report_.pms_used_timeline);
  w.size_vec(report_.migrations_per_slot);
  w.varint(report_.events.size());
  for (const MigrationEvent& ev : report_.events) {
    w.svarint(ev.slot);
    w.varint(ev.vm.value);
    w.varint(ev.from.valid() ? ev.from.value + 1 : 0);
    w.varint(ev.to.valid() ? ev.to.value + 1 : 0);
  }
  const FaultReport& fr = report_.faults;
  w.varint(fr.pm_crashes);
  w.varint(fr.pm_recoveries);
  w.varint(fr.evacuated);
  w.varint(fr.enqueued);
  w.varint(fr.queue_end);
  w.varint(fr.retries);
  w.varint(fr.migration_aborts);
  w.varint(fr.migration_stalls);
  w.varint(fr.solver_degraded);
  w.varint(fr.lost_vms);

  w.boolean(injector_.has_value());
  if (injector_) {
    const fault::FaultInjectorState fs = injector_->export_state();
    for (const std::uint64_t s : fs.rng) w.u64(s);
    w.varint(fs.up.size());
    for (const std::uint8_t b : fs.up) w.u8(b);
    w.varint(fs.next_scripted);
    w.varint(fs.last_slot + 1);  // -1 sentinel encodes as 0
    w.varint(fs.solver_down_until);
  }

  w.boolean(recovery_.has_value());
  if (recovery_) {
    const fault::RecoveryControllerState rs = recovery_->export_state();
    w.varint(rs.queue.size());
    for (const fault::QueuedVm& q : rs.queue) {
      w.varint(q.vm);
      w.u8(static_cast<std::uint8_t>(q.reason));
      w.varint(q.retries);
      w.varint(q.next_attempt);
    }
    w.varint(rs.retries_total);
    w.varint(rs.enqueued_total);
    w.u8(static_cast<std::uint8_t>(rs.ladder_last_level));
    w.varint(rs.ladder_degraded_decisions);
  }

  w.varint(aborted_once_.size());
  for (const bool b : aborted_once_) w.u8(b ? 1 : 0);
  w.varint(next_phase_);

  w.boolean(recorder_->first());
  w.size_vec(recorder_->last_active());

  w.varint(history_.size());
  for (const StoredObs& h : history_) {
    w.size_vec(h.active);
    w.size_vec(h.violated);
    w.varint(h.migrations);
    w.varint(h.failed_migrations);
    w.varint(h.pms_used);
    w.f64(h.fast_burn);
    w.f64(h.slow_burn);
  }

  // Trace rewind point: the flight recorder's flushed byte position at
  // this exact instant (before any slot-t event).
  const obs::EventLog::Checkpoint cp = obs::events().checkpoint();
  w.boolean(cp.valid);
  if (cp.valid) {
    w.u8(static_cast<std::uint8_t>(cp.format));
    w.str(cp.path);
    w.varint(cp.bytes);
    w.varint(cp.events);
    w.varint(cp.blocks);
    w.varint(cp.next_id);
  }
  return w.take();
}

ClusterSimulator::RestoreInfo ClusterSimulator::restore_from_durable() {
  BURSTQ_REQUIRE(!ran_,
                 "restore_from_durable() must precede run() on a fresh "
                 "simulator");
  BURSTQ_REQUIRE(store_.has_value(),
                 "SimConfig::durability is not configured");
  const auto loaded = store_->load_newest();
  if (!loaded)
    throw durable::CorruptState("no snapshot to restore under " +
                                store_->dir());
  durable::StateReader r(loaded->blob, "snapshot " + loaded->path);

  const std::uint64_t version = r.u64();
  if (version != 1) r.fail("unsupported snapshot blob version");
  const std::size_t slot = r.varint();
  if (slot != loaded->slot) r.fail("blob slot disagrees with the header");
  {
    std::string cfg;
    obs::trace_detail::put_varint(cfg, inst_->n_vms());
    obs::trace_detail::put_varint(cfg, inst_->n_pms());
    obs::trace_detail::put_varint(cfg, config_.slots);
    obs::trace_detail::put_varint(cfg, config_.policy.cvr_window);
    obs::trace_detail::put_varint(cfg, config_.policy.max_vms_per_pm);
    obs::trace_detail::put_varint(cfg,
                                  config_.webserver_workload ? 1u : 0u);
    obs::trace_detail::put_varint(cfg, config_.slo != nullptr ? 1u : 0u);
    if (r.u32() != obs::trace_detail::crc32(cfg))
      r.fail(
          "config digest mismatch — the restoring simulator was "
          "constructed with different arguments");
  }

  std::array<std::uint64_t, 4> rng_state{};
  for (auto& s : rng_state) s = r.u64();
  rng_.set_state(rng_state);
  std::array<std::uint64_t, 4> ens_state{};
  for (auto& s : ens_state) s = r.u64();
  ensemble_.rng().set_state(ens_state);
  const std::size_t n_chains = r.varint();
  if (n_chains != ensemble_.n_vms()) r.fail("chain count mismatch");
  for (std::size_t i = 0; i < n_chains; ++i) {
    OnOffParams p;
    p.p_on = r.f64();
    p.p_off = r.f64();
    const std::uint8_t st = r.u8();
    if (st > 1) r.fail("chain state out of range");
    ensemble_.restore_chain(i, p, static_cast<VmState>(st));
  }

  PlacementState ps;
  const std::size_t n_vms = r.varint();
  ps.pm_of.reserve(n_vms);
  for (std::size_t i = 0; i < n_vms; ++i) {
    const std::size_t v = r.varint();
    ps.pm_of.push_back(v == 0 ? PmId{} : PmId{v - 1});
  }
  const std::size_t n_pms = r.varint();
  ps.vms_on.reserve(n_pms);
  for (std::size_t j = 0; j < n_pms; ++j) ps.vms_on.push_back(r.size_vec());
  ps.bound = r.boolean();
  if (ps.bound) {
    ps.rb_sum = r.f64_vec();
    ps.re_max = r.f64_vec();
  }
  placement_.restore_state(ps);

  in_flight_.clear();
  const std::size_t n_flight = r.varint();
  for (std::size_t i = 0; i < n_flight; ++i) {
    InFlight f{};
    f.vm = r.varint();
    f.source_pm = r.varint();
    f.remaining = r.varint();
    in_flight_.push_back(f);
  }

  CvrTrackerState cs;
  const std::size_t n_cvr = r.varint();
  cs.pms.resize(n_cvr);
  for (auto& pm : cs.pms) {
    pm.observed = r.varint();
    pm.violated = r.varint();
    pm.window.resize(r.varint());
    for (auto& b : pm.window) b = r.u8();
  }
  tracker_->import_state(cs);

  const bool has_slo = r.boolean();
  if (has_slo != (config_.slo != nullptr))
    r.fail("SLO tracker presence mismatch");
  if (has_slo) {
    obs::SloTrackerState ss;
    ss.pms.resize(r.varint());
    for (auto& pm : ss.pms) {
      pm.observed = r.varint();
      pm.violated = r.varint();
      pm.ring.resize(r.varint());
      for (auto& b : pm.ring) b = r.u8();
      pm.ring_observed = r.varint();
      pm.ring_violated = r.varint();
    }
    ss.cur.resize(r.varint());
    for (auto& b : ss.cur) b = r.u8();
    ss.cluster_ring.resize(r.varint());
    for (auto& [o, v] : ss.cluster_ring) {
      o = r.u32();
      v = r.u32();
    }
    ss.slots = r.varint();
    ss.fast_obs = r.varint();
    ss.fast_viol = r.varint();
    ss.slow_obs = r.varint();
    ss.slow_viol = r.varint();
    ss.cum_obs = r.varint();
    ss.cum_viol = r.varint();
    ss.breaches = r.varint();
    ss.breaching = r.boolean();
    config_.slo->import_state(ss);
  }

  meter_->restore_joules(r.f64());

  report_ = SimReport{};
  report_.total_migrations = r.varint();
  report_.failed_migrations = r.varint();
  report_.pms_used_max = r.varint();
  report_.pms_used_timeline = r.size_vec();
  report_.migrations_per_slot = r.size_vec();
  const std::size_t n_events = r.varint();
  report_.events.reserve(n_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    MigrationEvent ev;
    ev.slot = static_cast<TimeSlot>(r.svarint());
    ev.vm = VmId{r.varint()};
    const std::size_t from = r.varint();
    ev.from = from == 0 ? PmId{} : PmId{from - 1};
    const std::size_t to = r.varint();
    ev.to = to == 0 ? PmId{} : PmId{to - 1};
    report_.events.push_back(ev);
  }
  FaultReport& fr = report_.faults;
  fr.pm_crashes = r.varint();
  fr.pm_recoveries = r.varint();
  fr.evacuated = r.varint();
  fr.enqueued = r.varint();
  fr.queue_end = r.varint();
  fr.retries = r.varint();
  fr.migration_aborts = r.varint();
  fr.migration_stalls = r.varint();
  fr.solver_degraded = r.varint();
  fr.lost_vms = r.varint();

  const bool has_injector = r.boolean();
  if (has_injector != injector_.has_value())
    r.fail("fault injector presence mismatch");
  if (has_injector) {
    fault::FaultInjectorState fs;
    for (auto& s : fs.rng) s = r.u64();
    fs.up.resize(r.varint());
    for (auto& b : fs.up) b = r.u8();
    fs.next_scripted = r.varint();
    fs.last_slot = r.varint() - 1;  // 0 decodes back to the -1 sentinel
    fs.solver_down_until = r.varint();
    injector_->import_state(fs);
  }

  const bool has_recovery = r.boolean();
  if (has_recovery != recovery_.has_value())
    r.fail("recovery controller presence mismatch");
  if (has_recovery) {
    fault::RecoveryControllerState rs;
    rs.queue.resize(r.varint());
    for (auto& q : rs.queue) {
      q.vm = r.varint();
      const std::uint8_t reason = r.u8();
      if (reason > 1) r.fail("queue reason out of range");
      q.reason = static_cast<fault::QueueReason>(reason);
      q.retries = r.varint();
      q.next_attempt = r.varint();
    }
    rs.retries_total = r.varint();
    rs.enqueued_total = r.varint();
    const std::uint8_t level = r.u8();
    if (level > 3) r.fail("reserve level out of range");
    rs.ladder_last_level = static_cast<fault::ReserveLevel>(level);
    rs.ladder_degraded_decisions = r.varint();
    recovery_->import_state(rs);
  }

  const std::size_t n_aborted = r.varint();
  if (!aborted_once_.empty() && n_aborted != aborted_once_.size())
    r.fail("aborted_once size mismatch");
  aborted_once_.resize(n_aborted);
  for (std::size_t i = 0; i < n_aborted; ++i) aborted_once_[i] = r.u8() != 0;
  next_phase_ = r.varint();

  const bool rec_first = r.boolean();
  recorder_->restore_state(rec_first, r.size_vec());

  history_.clear();
  const std::size_t n_hist = r.varint();
  if (n_hist != slot) r.fail("observation history does not cover the run");
  history_.reserve(config_.slots);
  for (std::size_t i = 0; i < n_hist; ++i) {
    StoredObs h;
    h.active = r.size_vec();
    h.violated = r.size_vec();
    h.migrations = r.varint();
    h.failed_migrations = r.varint();
    h.pms_used = r.varint();
    h.fast_burn = r.f64();
    h.slow_burn = r.f64();
    history_.push_back(std::move(h));
  }

  obs::EventLog::Checkpoint cp;
  cp.valid = r.boolean();
  if (cp.valid) {
    const std::uint8_t fmt = r.u8();
    if (fmt > 2) r.fail("trace checkpoint format out of range");
    cp.format = static_cast<obs::EventFormat>(fmt);
    cp.path = r.str();
    cp.bytes = r.varint();
    cp.events = r.varint();
    cp.blocks = r.varint();
    cp.next_id = r.varint();
  }
  r.expect_done();

  // WAL suffix: everything committed after the snapshot re-executes under
  // byte-level verification.  A torn tail was already dropped by the
  // scanner; a WAL with the wrong epoch is ignored the same way.
  const std::string wal_path = store_->wal_path(slot);
  const durable::WalScan scan = durable::scan_wal(wal_path);
  verify_groups_.clear();
  if (scan.present && scan.base_slot == slot) {
    verify_groups_ = scan.groups;
    // Groups must cover consecutive slots from the snapshot on; stop at
    // the first gap (everything after it is unreachable by replay).
    for (std::size_t i = 0; i < verify_groups_.size(); ++i) {
      if (verify_groups_[i].slot != slot + i) {
        verify_groups_.resize(i);
        break;
      }
    }
  }
  start_slot_ = slot;
  wal_base_slot_ = slot;
  replay_upto_ = slot + verify_groups_.size();
  wal_ = std::make_unique<durable::WalWriter>(
      wal_path, slot, config_.durability->fsync);

  // The kill that ended the previous attempt fired at replay_upto_; its
  // RNG draw will recur on replay, but the abort must not.
  if (injector_) injector_->suppress_kills_before(replay_upto_ + 1);

  // Discard the killed run's partial trace tail; replay re-emits the
  // identical bytes from the checkpoint on.
  obs::events().rewind(cp);

  // Rebuild the harness observer's accumulators for pre-snapshot slots.
  if (config_.on_slot) {
    for (std::size_t i = 0; i < history_.size(); ++i) {
      const StoredObs& h = history_[i];
      SlotObservation ob;
      ob.t = i;
      ob.active = &h.active;
      ob.violated = &h.violated;
      ob.migrations = h.migrations;
      ob.failed_migrations = h.failed_migrations;
      ob.pms_used = h.pms_used;
      ob.fast_burn = h.fast_burn;
      ob.slow_burn = h.slow_burn;
      config_.on_slot(ob);
    }
  }

  BURSTQ_COUNT("durable.restores", 1);
  BURSTQ_COUNT("durable.replay_slots", verify_groups_.size());
  return RestoreInfo{slot, verify_groups_.size()};
}

std::vector<std::vector<bool>> record_violation_trace(
    const ProblemInstance& inst, const Placement& placement,
    std::size_t slots, Rng rng, bool start_stationary) {
  BURSTQ_REQUIRE(slots > 0, "needs at least one slot");
  BURSTQ_REQUIRE(placement.vms_assigned() == inst.n_vms(),
                 "placement must assign every VM");

  WorkloadEnsemble ensemble(inst, rng, start_stationary);
  std::vector<std::vector<bool>> violated(
      inst.n_pms(), std::vector<bool>(slots, false));

  FlightSlotRecorder recorder("violation_trace", inst.n_pms(), slots,
                              slots, 0.0);
  std::vector<std::size_t> obs_active;
  std::vector<std::size_t> obs_violated;

  for (std::size_t t = 0; t < slots; ++t) {
    BURSTQ_SPAN("sim.slot");
    if (t > 0) ensemble.step();
    if (recorder.enabled()) {
      obs_active.clear();
      obs_violated.clear();
    }
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (placement.count_on(pm) == 0) continue;
      Resource loadj = 0.0;
      for (std::size_t i : placement.vms_on(pm)) loadj += ensemble.demand(i);
      violated[j][t] =
          loadj > inst.pms[j].capacity * (1.0 + kCapacityEpsilon);
      if (recorder.enabled()) {
        obs_active.push_back(j);
        if (violated[j][t]) obs_violated.push_back(j);
      }
    }
    recorder.slot(t, obs_active, obs_violated);
  }
  return violated;
}

std::vector<double> simulate_cvr(const ProblemInstance& inst,
                                 const Placement& placement,
                                 std::size_t slots, Rng rng,
                                 bool start_stationary) {
  BURSTQ_REQUIRE(slots > 0, "simulate_cvr needs at least one slot");
  BURSTQ_REQUIRE(placement.vms_assigned() == inst.n_vms(),
                 "placement must assign every VM");

  WorkloadEnsemble ensemble(inst, rng, start_stationary);
  std::vector<std::size_t> violations(inst.n_pms(), 0);

  FlightSlotRecorder recorder("simulate_cvr", inst.n_pms(), slots, slots,
                              0.0);
  std::vector<std::size_t> obs_active;
  std::vector<std::size_t> obs_violated;

  for (std::size_t t = 0; t < slots; ++t) {
    BURSTQ_SPAN("sim.slot");
    if (t > 0) ensemble.step();
    if (recorder.enabled()) {
      obs_active.clear();
      obs_violated.clear();
    }
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (placement.count_on(pm) == 0) continue;
      Resource loadj = 0.0;
      for (std::size_t i : placement.vms_on(pm)) loadj += ensemble.demand(i);
      const bool hit =
          loadj > inst.pms[j].capacity * (1.0 + kCapacityEpsilon);
      if (hit) ++violations[j];
      if (recorder.enabled()) {
        obs_active.push_back(j);
        if (hit) obs_violated.push_back(j);
      }
    }
    recorder.slot(t, obs_active, obs_violated);
  }

  std::vector<double> cvr(inst.n_pms(), 0.0);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    cvr[j] = static_cast<double>(violations[j]) / static_cast<double>(slots);
  return cvr;
}

}  // namespace burstq
