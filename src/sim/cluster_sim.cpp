#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "placement/queuing_ffd.h"
#include "sim/flight.h"

namespace burstq {

void SimConfig::validate() const {
  BURSTQ_REQUIRE(slots > 0, "simulation needs at least one slot");
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
  BURSTQ_REQUIRE(users_per_unit > 0.0, "users_per_unit must be positive");
  policy.validate();
  power.validate();
  if (faults) faults->validate(fault::kNoPm, slots);
  recovery.validate();
  for (std::size_t i = 0; i < workload_phases.size(); ++i) {
    workload_phases[i].validate();
    BURSTQ_REQUIRE(workload_phases[i].slot < slots,
                   "workload phase at slot " +
                       std::to_string(workload_phases[i].slot) +
                       " is outside the horizon (slots=" +
                       std::to_string(slots) + ")");
    BURSTQ_REQUIRE(
        i == 0 || workload_phases[i - 1].slot < workload_phases[i].slot,
        "workload phases must have strictly ascending slots");
  }
}

ClusterSimulator::ClusterSimulator(const ProblemInstance& inst,
                                   const Placement& initial,
                                   SimConfig config, Rng rng)
    : inst_(&inst),
      placement_(initial),
      config_(config),
      rng_(rng),
      ensemble_(inst, rng_.split(), config.start_stationary),
      demand_cache_(inst.n_vms(), 0.0) {
  inst.validate();
  config_.validate();
  BURSTQ_REQUIRE(initial.vms_assigned() == inst.n_vms(),
                 "initial placement must assign every VM");
  BURSTQ_REQUIRE(initial.n_pms() == inst.n_pms(),
                 "placement PM count must match the instance");
  BURSTQ_REQUIRE(config_.slo == nullptr ||
                     config_.slo->n_pms() == inst.n_pms(),
                 "SLO tracker PM count must match the instance");

  if (config_.policy.target == TargetSelection::kReservationAware) {
    // The burstiness-aware scheduler judges targets by Eq. (17); size the
    // table so even baseline placements that overshoot d can be checked.
    std::size_t max_k = config_.policy.max_vms_per_pm;
    for (std::size_t j = 0; j < inst.n_pms(); ++j)
      max_k = std::max(max_k, initial.count_on(PmId{j}) + 1);
    reservation_table_.emplace(max_k, round_uniform_params(inst.vms),
                               config_.policy.rho);
  }

  if (config_.faults && config_.faults->any()) {
    injector_.emplace(*config_.faults, inst.n_pms());
    rounded_ = round_uniform_params(inst.vms);
    recovery_.emplace(inst, config_.recovery, config_.policy.max_vms_per_pm,
                      config_.policy.rho, StationaryMethod::kGaussian);
    aborted_once_.assign(inst.n_vms(), false);
  }

  if (config_.webserver_workload) {
    web_.reserve(inst.n_vms());
    for (const auto& v : inst.vms) {
      WebServerParams wp;
      wp.sigma_seconds = config_.sigma_seconds;
      wp.users_per_unit = config_.users_per_unit;
      const double nu = std::max(1.0, std::round(v.rb * wp.users_per_unit));
      const double pu = std::max(nu, std::round(v.rp() * wp.users_per_unit));
      wp.normal_users = static_cast<std::size_t>(nu);
      wp.peak_users = static_cast<std::size_t>(pu);
      web_.emplace_back(wp);
    }
  }
}

void ClusterSimulator::apply_faults(const fault::SlotFaults& sf,
                                    std::size_t t, SimReport& report) {
  const std::span<const std::uint8_t> up(injector_->up_mask());

  // Stalls: every live copy takes longer.
  if (sf.stall_slots > 0 && !in_flight_.empty()) {
    for (auto& f : in_flight_) f.remaining += sf.stall_slots;
    report.faults.migration_stalls += in_flight_.size();
    BURSTQ_COUNT("fault.migration.stalls", in_flight_.size());
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.migration.stall",
                 {"t", t}, {"copies", in_flight_.size()},
                 {"extra", sf.stall_slots});
  }

  // PM crashes: in-flight copies touching the dead PM die with it, then
  // hosted VMs evacuate through the reservation ladder (or queue).
  for (std::size_t j : sf.crashes) {
    ++report.faults.pm_crashes;
    std::erase_if(in_flight_, [&](const InFlight& f) {
      if (f.source_pm == j) return true;  // copy source gone; move is final
      if (placement_.pm_of(VmId{f.vm}) == PmId{j}) {
        // Target died mid-copy: the copy is void; the VM is evacuated
        // below along with everything else hosted on j.
        aborted_once_[f.vm] = true;
        ++report.faults.migration_aborts;
        BURSTQ_COUNT("fault.migration.aborts", 1);
        BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.migration.abort",
                     {"t", t}, {"vm", f.vm}, {"reason", "target-crash"});
        return true;
      }
      return false;
    });
    report.faults.evacuated +=
        recovery_->evacuate(placement_, PmId{j}, up, rounded_, t);
  }
  report.faults.pm_recoveries += sf.recoveries.size();

  // Scripted / Markov migration aborts: the VM rolls back to its source
  // (which is up — copies from a crashed source were dropped above and at
  // every earlier crash).
  std::erase_if(in_flight_, [&](const InFlight& f) {
    const bool abort =
        sf.abort_migrations || injector_->draw_migration_abort();
    if (!abort) return false;
    placement_.unassign(VmId{f.vm});
    placement_.assign(VmId{f.vm}, PmId{f.source_pm});
    aborted_once_[f.vm] = true;
    ++report.faults.migration_aborts;
    BURSTQ_COUNT("fault.migration.aborts", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.migration.abort",
                 {"t", t}, {"vm", f.vm}, {"to", f.source_pm},
                 {"reason", sf.abort_migrations ? "scripted" : "markov"});
    return true;
  });

  // Queued VMs whose backoff expired get another attempt; capacity may
  // have returned via the recoveries above or load churn.
  if (!recovery_->queue().empty())
    recovery_->drain(placement_, up, rounded_, t);

  BURSTQ_ASSERT(recovery_->invariant_holds(placement_, up),
                "recovery invariant violated: a VM is neither hosted on an "
                "up PM nor queued");
}

void ClusterSimulator::compute_loads(std::vector<Resource>& load,
                                     std::vector<Resource>& demand) const {
  std::fill(load.begin(), load.end(), 0.0);
  for (std::size_t j = 0; j < inst_->n_pms(); ++j)
    for (std::size_t i : placement_.vms_on(PmId{j})) load[j] += demand[i];
  // Mid-migration VMs still burden their source (live-migration copy
  // traffic and the "noticeable CPU usage on the host PM" the paper cites).
  for (const auto& mig : in_flight_) load[mig.source_pm] += demand[mig.vm];
}

SimReport ClusterSimulator::run() {
  BURSTQ_SPAN("sim.run");
  BURSTQ_REQUIRE(!ran_, "ClusterSimulator::run() may only be called once");
  ran_ = true;

  const std::size_t m = inst_->n_pms();
  CvrTracker tracker(m, config_.policy.cvr_window);
  EnergyMeter meter(config_.power, config_.sigma_seconds);
  SimReport report;
  report.pms_used_timeline.reserve(config_.slots);
  report.migrations_per_slot.reserve(config_.slots);

  std::vector<Resource> load(m, 0.0);
  std::vector<VmState> states(inst_->n_vms());
  std::vector<Resource> capacity(m);
  for (std::size_t j = 0; j < m; ++j) capacity[j] = inst_->pms[j].capacity;

  FlightSlotRecorder recorder("cluster_sim", m, config_.slots,
                              config_.policy.cvr_window, config_.policy.rho);
  std::vector<std::size_t> obs_active;
  std::vector<std::size_t> obs_violated;

  // The harness observer needs the per-slot id lists even when no
  // detail-level trace sink is open.
  const bool observe = recorder.enabled() || config_.on_slot != nullptr;

  for (std::size_t t = 0; t < config_.slots; ++t) {
    BURSTQ_SPAN("sim.slot");
    // Workload timeline: a phase at slot t shapes the transitions *into*
    // slot t (applied before the step that produces slot t's states).
    while (next_phase_ < config_.workload_phases.size() &&
           config_.workload_phases[next_phase_].slot <= t) {
      ensemble_.apply_phase(config_.workload_phases[next_phase_]);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "workload.phase", {"t", t},
                   {"phase", next_phase_});
      ++next_phase_;
    }
    if (t > 0) ensemble_.step();

    // 1-2. demands and per-PM loads.
    for (std::size_t i = 0; i < inst_->n_vms(); ++i) {
      states[i] = ensemble_.state(i);
      if (!config_.webserver_workload) {
        demand_cache_[i] = inst_->vms[i].demand(states[i]);
      } else if (config_.webserver_exact) {
        demand_cache_[i] = web_[i].requests_to_demand(
            web_[i].sample_requests_exact(states[i], rng_));
      } else {
        demand_cache_[i] = web_[i].sample_demand(states[i], rng_);
      }
    }

    // Fault injection happens between demand sampling and load accounting
    // so this slot's loads already reflect evacuations and rollbacks.  The
    // solver-fault guard stays armed for the whole slot — the scheduler
    // below must degrade, not abort, while the outage lasts.
    std::optional<ScopedSolverFault> solver_guard;
    if (injector_) {
      const fault::SlotFaults sf = injector_->advance(t);
      solver_guard.emplace(sf.solver_fault);
      apply_faults(sf, t, report);
    }

    compute_loads(load, demand_cache_);

    // 3. violation bookkeeping (only PMs that actually carry load state).
    std::size_t violations_this_slot = 0;
    if (observe) {
      obs_active.clear();
      obs_violated.clear();
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (placement_.count_on(PmId{j}) == 0) continue;
      const bool violated =
          load[j] > capacity[j] * (1.0 + kCapacityEpsilon);
      tracker.record(PmId{j}, violated);
      if (config_.slo != nullptr) config_.slo->record(PmId{j}, violated);
      if (violated) ++violations_this_slot;
      if (observe) {
        obs_active.push_back(j);
        if (violated) obs_violated.push_back(j);
      }
    }
    if (config_.slo != nullptr) config_.slo->end_slot();
    recorder.slot(t, obs_active, obs_violated);
    BURSTQ_COUNT("sim.slot_violations", violations_this_slot);

    // 4. dynamic scheduling: one eviction per PM per slot when the recent
    // CVR breaches rho.
    std::size_t migrations_this_slot = 0;
    const std::size_t failed_before = report.failed_migrations;
    if (config_.enable_migration) {
      for (std::size_t j = 0; j < m; ++j) {
        const PmId source{j};
        if (placement_.count_on(source) == 0) continue;
        if (tracker.windowed_cvr(source) <= config_.policy.rho) continue;

        const auto victim = select_victim_policy(
            config_.policy.victim, *inst_, placement_.vms_on(source),
            demand_cache_, states);
        BURSTQ_ASSERT(victim.has_value(), "non-empty PM had no victim");
        const Resource vdemand = demand_cache_[victim->value];

        const std::span<const std::uint8_t> up =
            injector_ ? std::span<const std::uint8_t>(injector_->up_mask())
                      : std::span<const std::uint8_t>{};
        std::optional<PmId> target;
        if (config_.policy.target == TargetSelection::kReservationAware) {
          for (std::size_t p = 0; p < m; ++p) {
            const PmId cand{p};
            if (cand == source) continue;
            if (!up.empty() && !up[p]) continue;
            if (fits_with_reservation(*inst_, placement_, *victim, cand,
                                      *reservation_table_)) {
              target = cand;
              break;
            }
          }
        } else {
          std::vector<std::size_t> counts(m);
          for (std::size_t p = 0; p < m; ++p)
            counts[p] = placement_.count_on(PmId{p});
          target = select_target(source, vdemand, load, capacity, counts,
                                 config_.policy.max_vms_per_pm, up);
        }

        if (target) {
          placement_.unassign(*victim);
          placement_.assign(*victim, *target);
          load[target->value] += vdemand;
          // Source keeps carrying the copy for cost_slots (>= 1) slots.
          in_flight_.push_back(
              InFlight{victim->value, j, config_.policy.cost_slots});
          report.events.push_back(MigrationEvent{
              static_cast<TimeSlot>(t), *victim, source, *target});
          ++migrations_this_slot;
          BURSTQ_COUNT("sim.migrations", 1);
          if (!aborted_once_.empty() && aborted_once_[victim->value]) {
            // Re-moving a VM whose previous copy was rolled back by a
            // fault is a retry, not a fresh migration.
            aborted_once_[victim->value] = false;
            ++report.faults.retries;
            BURSTQ_COUNT("migration.retries", 1);
          }
          BURSTQ_EVENT(obs::EventLevel::kDecisions, "migration", {"t", t},
                       {"vm", victim->value}, {"from", j},
                       {"to", target->value}, {"ok", true});
          tracker.reset_window(source);
          tracker.reset_window(*target);
          BURSTQ_EVENT(obs::EventLevel::kDetail, "window.reset", {"t", t},
                       {"pm", j});
          BURSTQ_EVENT(obs::EventLevel::kDetail, "window.reset", {"t", t},
                       {"pm", target->value});
        } else {
          report.events.push_back(MigrationEvent{
              static_cast<TimeSlot>(t), *victim, source, PmId{}});
          ++report.failed_migrations;
          BURSTQ_COUNT("sim.migrations_failed", 1);
          BURSTQ_EVENT(obs::EventLevel::kDecisions, "migration", {"t", t},
                       {"vm", victim->value}, {"from", j}, {"ok", false});
          // Cooldown: without a reset the trigger would re-fire every slot
          // even though the cluster has no room anywhere.
          tracker.reset_window(source);
          BURSTQ_EVENT(obs::EventLevel::kDetail, "window.reset", {"t", t},
                       {"pm", j});
        }
      }
    }

    // 5. usage + energy.
    std::size_t used = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const bool active =
          placement_.count_on(PmId{j}) > 0 ||
          std::any_of(in_flight_.begin(), in_flight_.end(),
                      [j](const InFlight& f) { return f.source_pm == j; });
      if (!active) continue;
      ++used;
      meter.add_pm_slot(load[j] / capacity[j]);
    }
    report.pms_used_timeline.push_back(used);
    report.migrations_per_slot.push_back(migrations_this_slot);
    report.pms_used_max = std::max(report.pms_used_max, used);
    report.total_migrations += migrations_this_slot;

    // 6. migration copies complete.
    for (auto& f : in_flight_) --f.remaining;
    std::erase_if(in_flight_, [](const InFlight& f) { return f.remaining == 0; });

    // 7. hand the closed slot to the harness observer.
    if (config_.on_slot) {
      SlotObservation ob;
      ob.t = t;
      ob.active = &obs_active;
      ob.violated = &obs_violated;
      ob.migrations = migrations_this_slot;
      ob.failed_migrations = report.failed_migrations - failed_before;
      ob.pms_used = used;
      config_.on_slot(ob);
    }
  }

  report.pms_used_end = report.pms_used_timeline.back();
  report.pm_cvr.resize(m);
  report.pm_windowed_cvr_end.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    report.pm_cvr[j] = tracker.cvr(PmId{j});
    report.pm_windowed_cvr_end[j] = tracker.windowed_cvr(PmId{j});
  }
  report.mean_cvr = tracker.mean_cvr();
  report.max_cvr = tracker.max_cvr();
  report.energy_wh = meter.watt_hours();
  if (recovery_) {
    report.faults.queue_end = recovery_->queue().size();
    report.faults.enqueued = recovery_->enqueued_total();
    report.faults.retries += recovery_->retries_total();
    report.faults.solver_degraded = recovery_->ladder().degraded_decisions();
    for (std::size_t i = 0; i < inst_->n_vms(); ++i) {
      const PmId pm = placement_.pm_of(VmId{i});
      const bool hosted_up = pm.valid() && injector_->pm_up(pm.value);
      const bool queued = std::any_of(
          recovery_->queue().begin(), recovery_->queue().end(),
          [i](const fault::QueuedVm& q) { return q.vm == i; });
      if (!hosted_up && !queued) ++report.faults.lost_vms;
    }
  }
  return report;
}

std::vector<std::vector<bool>> record_violation_trace(
    const ProblemInstance& inst, const Placement& placement,
    std::size_t slots, Rng rng, bool start_stationary) {
  BURSTQ_REQUIRE(slots > 0, "needs at least one slot");
  BURSTQ_REQUIRE(placement.vms_assigned() == inst.n_vms(),
                 "placement must assign every VM");

  WorkloadEnsemble ensemble(inst, rng, start_stationary);
  std::vector<std::vector<bool>> violated(
      inst.n_pms(), std::vector<bool>(slots, false));

  FlightSlotRecorder recorder("violation_trace", inst.n_pms(), slots,
                              slots, 0.0);
  std::vector<std::size_t> obs_active;
  std::vector<std::size_t> obs_violated;

  for (std::size_t t = 0; t < slots; ++t) {
    BURSTQ_SPAN("sim.slot");
    if (t > 0) ensemble.step();
    if (recorder.enabled()) {
      obs_active.clear();
      obs_violated.clear();
    }
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (placement.count_on(pm) == 0) continue;
      Resource loadj = 0.0;
      for (std::size_t i : placement.vms_on(pm)) loadj += ensemble.demand(i);
      violated[j][t] =
          loadj > inst.pms[j].capacity * (1.0 + kCapacityEpsilon);
      if (recorder.enabled()) {
        obs_active.push_back(j);
        if (violated[j][t]) obs_violated.push_back(j);
      }
    }
    recorder.slot(t, obs_active, obs_violated);
  }
  return violated;
}

std::vector<double> simulate_cvr(const ProblemInstance& inst,
                                 const Placement& placement,
                                 std::size_t slots, Rng rng,
                                 bool start_stationary) {
  BURSTQ_REQUIRE(slots > 0, "simulate_cvr needs at least one slot");
  BURSTQ_REQUIRE(placement.vms_assigned() == inst.n_vms(),
                 "placement must assign every VM");

  WorkloadEnsemble ensemble(inst, rng, start_stationary);
  std::vector<std::size_t> violations(inst.n_pms(), 0);

  FlightSlotRecorder recorder("simulate_cvr", inst.n_pms(), slots, slots,
                              0.0);
  std::vector<std::size_t> obs_active;
  std::vector<std::size_t> obs_violated;

  for (std::size_t t = 0; t < slots; ++t) {
    BURSTQ_SPAN("sim.slot");
    if (t > 0) ensemble.step();
    if (recorder.enabled()) {
      obs_active.clear();
      obs_violated.clear();
    }
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (placement.count_on(pm) == 0) continue;
      Resource loadj = 0.0;
      for (std::size_t i : placement.vms_on(pm)) loadj += ensemble.demand(i);
      const bool hit =
          loadj > inst.pms[j].capacity * (1.0 + kCapacityEpsilon);
      if (hit) ++violations[j];
      if (recorder.enabled()) {
        obs_active.push_back(j);
        if (hit) obs_violated.push_back(j);
      }
    }
    recorder.slot(t, obs_active, obs_violated);
  }

  std::vector<double> cvr(inst.n_pms(), 0.0);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    cvr[j] = static_cast<double>(violations[j]) / static_cast<double>(slots);
  return cvr;
}

}  // namespace burstq
