// The dynamic cluster simulator — burstq's substitute for the paper's Xen
// Cloud Platform testbed (Section V-D).
//
// Slotted time (slot length sigma = 30s in the paper).  Each slot:
//   1. every VM's ON-OFF chain advances; demand is either the rectangular
//      Rb/Rp level or a noisy web-server request count around it
//   2. per-PM aggregate load is computed (VMs mid-migration load both
//      machines, modelling live-migration copy overhead)
//   3. capacity violations are recorded per PM (CVR bookkeeping)
//   4. the dynamic scheduler reacts: a PM whose recent CVR exceeds rho
//      evicts one VM to the first PM that *currently looks* able to take
//      it (observed load, not reservations — the source of the paper's
//      "idle deception")
//   5. active-PM count and energy are accumulated
//
// The simulator never consults the placement strategy that produced the
// initial mapping: exactly as on the paper's testbed, strategies differ
// only in where VMs start and how much headroom that leaves.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "durable/durable.h"
#include "durable/snapshot.h"
#include "durable/wal.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "placement/placement.h"
#include "placement/spec.h"
#include "sim/energy.h"
#include "sim/flight.h"
#include "sim/metrics.h"
#include "sim/migration.h"
#include "sim/webserver.h"
#include "sim/workload_gen.h"

namespace burstq {

namespace obs {
class SloTracker;
}

/// End-of-slot snapshot handed to SimConfig::on_slot.  The id vectors are
/// borrowed from the simulator and valid only for the duration of the
/// callback — copy what must outlive it.
struct SlotObservation {
  std::size_t t{0};
  /// PM ids that hosted at least one VM this slot (ascending) — exactly
  /// the set whose violation verdicts entered the CVR/SLO trackers.
  const std::vector<std::size_t>* active{nullptr};
  /// The subset of `active` that violated capacity (ascending).
  const std::vector<std::size_t>* violated{nullptr};
  std::size_t migrations{0};         ///< successful migrations this slot
  std::size_t failed_migrations{0};  ///< failed triggers this slot
  std::size_t pms_used{0};           ///< active PMs (incl. copy sources)
  /// SLO burn rates after this slot closed (0 when no SLO tracker is
  /// attached) — lets harness invariants watch the alerting signals.
  double fast_burn{0.0};
  double slow_burn{0.0};
};

struct SimConfig {
  std::size_t slots{100};         ///< evaluation period (paper: 100 sigma)
  double sigma_seconds{30.0};     ///< slot length
  MigrationPolicy policy{};       ///< trigger threshold, window, cost
  PowerModel power{};             ///< for energy reporting
  bool webserver_workload{false}; ///< noisy request-driven demand (Sec V-D)
  bool webserver_exact{false};    ///< web mode: exact per-user renewal
                                  ///< simulation instead of the renewal-CLT
                                  ///< approximation (slower; use for small
                                  ///< fleets or validation runs)
  double users_per_unit{100.0};   ///< web mode: users per resource unit
  bool start_stationary{true};    ///< draw initial states from steady state
  bool enable_migration{true};    ///< false = pure CVR observation (Fig 6)
  /// Chaos schedule (fault/plan.h); nullopt = fault-free run.  The plan's
  /// own seed drives fault draws, so the workload stream is identical with
  /// and without faults.
  std::optional<fault::FaultPlan> faults;
  fault::RecoveryPolicy recovery{};  ///< evacuation/backoff under faults
  /// Optional SLO tracker (obs/slo.h); not owned, must outlive run().
  /// Every slot mirrors the per-PM violation verdicts into it and closes
  /// the tracker slot — unlike CvrTracker its windows never reset on
  /// migration, so it reports what tenants actually experienced.
  obs::SloTracker* slo{nullptr};
  /// Piecewise-constant workload timeline: each phase overrides every
  /// chain's switch probabilities from its slot on (ascending unique
  /// slots, all < `slots`).  A phase at slot t shapes the transitions
  /// *into* slot t — phase slot 0 cannot retroactively change the
  /// initial state draw.  Empty = stationary parameters throughout.
  std::vector<WorkloadPhase> workload_phases;
  /// Invoked at the end of every simulated slot (after SLO bookkeeping
  /// and scheduling) with that slot's observation.  The scenario harness
  /// uses this to evaluate invariants without re-deriving state from the
  /// trace.  Must not throw; null = disabled.
  std::function<void(const SlotObservation&)> on_slot;
  /// Crash-durable persistence (src/durable): snapshot checkpoints plus a
  /// write-ahead journal, enabling kill-restart recovery with a
  /// byte-identical final report.  Required whenever the fault plan
  /// schedules kills (validate() enforces this — a kill without a way
  /// back is a guaranteed hang, not chaos testing).
  std::optional<durable::DurabilityConfig> durability;

  void validate() const;
};

/// What the fault injection did and what recovery did about it.  All
/// zeros on a fault-free run.
struct FaultReport {
  std::size_t pm_crashes{0};
  std::size_t pm_recoveries{0};
  std::size_t evacuated{0};  ///< crash victims re-placed immediately
  std::size_t enqueued{0};   ///< crash victims that had to wait in queue
  std::size_t queue_end{0};  ///< VMs still queued at the final slot
  std::size_t retries{0};    ///< queue drain attempts (migration.retries)
  std::size_t migration_aborts{0};  ///< in-flight copies rolled back
  std::size_t migration_stalls{0};  ///< in-flight copies extended
  std::size_t solver_degraded{0};   ///< admissions decided below rung 1
  /// VMs neither hosted on an up PM nor queued at the end.  The recovery
  /// invariant guarantees 0; anything else is a bug.
  std::size_t lost_vms{0};
};

struct SimReport {
  std::size_t total_migrations{0};   ///< successful migrations
  std::size_t failed_migrations{0};  ///< trigger fired but no target PM
  std::size_t pms_used_end{0};       ///< active PMs at the last slot
  std::size_t pms_used_max{0};
  std::vector<std::size_t> pms_used_timeline;    ///< per slot
  std::vector<std::size_t> migrations_per_slot;  ///< per slot (successful)
  std::vector<MigrationEvent> events;            ///< Figure 10 log
  std::vector<double> pm_cvr;  ///< cumulative CVR per PM (Eq. 4)
  /// Windowed CVR per PM at the final slot (the quantity the migration
  /// trigger watches); also what flight-log replay must reproduce.
  std::vector<double> pm_windowed_cvr_end;
  double mean_cvr{0.0};        ///< over PMs that hosted VMs at some point
  double max_cvr{0.0};
  double energy_wh{0.0};
  FaultReport faults;          ///< all zeros when SimConfig::faults unset
};

class ClusterSimulator {
 public:
  /// Simulates `inst` starting from `initial` placement.  The placement is
  /// copied; migrations mutate the copy.  Unplaced VMs are not allowed —
  /// pass a complete placement.
  ClusterSimulator(const ProblemInstance& inst, const Placement& initial,
                   SimConfig config, Rng rng);

  /// Runs the configured number of slots and returns the report.
  /// Callable once.  When SimConfig::durability is set and a kill fault
  /// fires, throws durable::SimKilled — catch it, construct a fresh
  /// simulator with the same arguments, restore_from_durable(), and call
  /// run() again; the resumed run produces the byte-identical report and
  /// trace of an uninterrupted run.
  SimReport run();

  /// What a restore did, for the `recovery_replay_slots` invariant.
  struct RestoreInfo {
    std::size_t snapshot_slot{0};  ///< slot the snapshot was taken at
    std::size_t replay_slots{0};   ///< WAL-verified slots re-executed
  };

  /// Restores state from the newest snapshot + WAL suffix under
  /// SimConfig::durability->dir.  Must be called before run() on a
  /// freshly constructed simulator with identical construction
  /// arguments.  Rewinds the global event log to the checkpoint the
  /// snapshot recorded and re-fires SimConfig::on_slot for every slot
  /// before the snapshot.  Throws durable::CorruptState when no valid
  /// snapshot exists or the stored state is inconsistent.
  RestoreInfo restore_from_durable();

  /// Current (possibly migrated) placement; valid after run().
  [[nodiscard]] const Placement& placement() const { return placement_; }

 private:
  [[nodiscard]] Resource vm_demand(std::size_t i) const;
  void compute_loads(std::vector<Resource>& load,
                     std::vector<Resource>& demand) const;
  /// Writes a snapshot + rotates the WAL when slot `t` is a checkpoint
  /// boundary (top of slot, before any slot-t work).
  void maybe_checkpoint(std::size_t t);
  /// Serializes the complete simulator state at the top of slot `t`.
  [[nodiscard]] std::string encode_state(std::size_t t);
  void journal(durable::WalRecord type, std::string payload);
  /// Frames + commits this slot's journal group; during replay verifies
  /// it byte-for-byte against the pre-kill WAL (divergence is loud).
  void commit_slot(std::size_t t);
  [[nodiscard]] std::uint32_t placement_crc() const;
  /// Applies this slot's faults: stalls and aborts in-flight copies,
  /// evacuates crashed PMs through the recovery controller, drains the
  /// admission queue.  Mutates placement_ and in_flight_.
  void apply_faults(const fault::SlotFaults& sf, std::size_t t,
                    SimReport& report);

  const ProblemInstance* inst_;
  Placement placement_;
  SimConfig config_;
  Rng rng_;
  WorkloadEnsemble ensemble_;
  std::vector<WebServerWorkload> web_;  ///< per VM, only in web mode
  std::vector<Resource> demand_cache_;  ///< demand of each VM this slot

  struct InFlight {
    std::size_t vm;
    std::size_t source_pm;
    std::size_t remaining;
  };
  std::vector<InFlight> in_flight_;
  /// Present only under TargetSelection::kReservationAware.
  std::optional<MapCalTable> reservation_table_;
  /// Present only when SimConfig::faults is set.
  std::optional<fault::FaultInjector> injector_;
  std::optional<fault::RecoveryController> recovery_;
  OnOffParams rounded_{};  ///< uniform params for recovery Eq. (17) checks
  /// VMs whose last migration was rolled back by a fault; the next
  /// scheduler move of such a VM counts `migration.retries` instead of a
  /// plain first-attempt migration.
  std::vector<bool> aborted_once_;
  std::size_t next_phase_{0};  ///< first workload phase not yet applied
  bool ran_{false};

  // Run-long accumulators, members (not run() locals) so a durable
  // snapshot can capture and a restore can overwrite them.  Optionals:
  // emplaced in the ctor body after SimConfig::validate() so a bad
  // config still fails with the config error message.
  std::optional<CvrTracker> tracker_;
  std::optional<EnergyMeter> meter_;
  SimReport report_;
  /// Emplaced at the END of construction so its `sim.config` event is the
  /// last ctor-time emission; a restore rewinds the log right past it.
  std::optional<FlightSlotRecorder> recorder_;
  std::size_t start_slot_{0};  ///< run() resumes here after a restore

  // Durable persistence (present only when config_.durability is set).
  std::optional<durable::SnapshotStore> store_;
  std::unique_ptr<durable::WalWriter> wal_;
  std::size_t wal_base_slot_{0};
  /// Pre-kill WAL groups to verify against during replay, indexed by
  /// slot - wal_base_slot_; replay covers [start_slot_, replay_upto_).
  std::vector<durable::WalGroup> verify_groups_;
  std::size_t replay_upto_{0};

  /// Per-slot observations retained for snapshots: a restore re-fires
  /// them through on_slot so harness accumulators rebuild exactly.
  struct StoredObs {
    std::vector<std::size_t> active;
    std::vector<std::size_t> violated;
    std::size_t migrations{0};
    std::size_t failed_migrations{0};
    std::size_t pms_used{0};
    double fast_burn{0.0};
    double slow_burn{0.0};
  };
  std::vector<StoredObs> history_;
};

/// Convenience for the Figure 6 experiment: per-PM cumulative CVR of a
/// fixed placement (no migration) after `slots` steps of rectangular
/// ON-OFF demand.
std::vector<double> simulate_cvr(const ProblemInstance& inst,
                                 const Placement& placement,
                                 std::size_t slots, Rng rng,
                                 bool start_stationary = true);

/// Like simulate_cvr but returns the full per-PM violation record
/// (result[pm][slot]), from which both CVR and violation-episode
/// statistics (sim/metrics.h) derive.  Same RNG consumption pattern as
/// simulate_cvr: identical seeds give identical violation sets.
std::vector<std::vector<bool>> record_violation_trace(
    const ProblemInstance& inst, const Placement& placement,
    std::size_t slots, Rng rng, bool start_stationary = true);

}  // namespace burstq
