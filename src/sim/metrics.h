// Runtime metrics collected by the simulator.
//
// CvrTracker measures the paper's capacity violation ratio per PM (Eq. 4)
// both cumulatively and over a sliding window (the dynamic scheduler's
// migration trigger works on recent CVR, tolerating old history).
// MigrationEvent records the Figure 10 time-ordered migration log.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace burstq {

/// Serializable CvrTracker contents for durable snapshots.
struct CvrTrackerState {
  struct PerPm {
    std::size_t observed{0};
    std::size_t violated{0};
    std::vector<std::uint8_t> window;  ///< oldest-first slot outcomes
  };
  std::vector<PerPm> pms;
};

/// Per-PM violation bookkeeping.
class CvrTracker {
 public:
  /// Tracks `n_pms` machines with a sliding window of `window` slots.
  CvrTracker(std::size_t n_pms, std::size_t window);

  /// Records slot outcomes; call once per slot per PM.
  void record(PmId pm, bool violated);

  /// Cumulative CVR (Eq. 4): violations / observed slots; 0 if unobserved.
  [[nodiscard]] double cvr(PmId pm) const;

  /// CVR over the last `window` slots (or fewer early on).
  [[nodiscard]] double windowed_cvr(PmId pm) const;

  /// Clears the sliding window of one PM (after a migration changes its
  /// hosted set, old violations no longer describe the new configuration).
  void reset_window(PmId pm);

  [[nodiscard]] std::size_t observed_slots(PmId pm) const;
  [[nodiscard]] std::size_t violations(PmId pm) const;
  [[nodiscard]] std::size_t n_pms() const { return total_.size(); }

  /// Mean cumulative CVR over PMs that were observed at least once.
  [[nodiscard]] double mean_cvr() const;
  /// Largest cumulative CVR over all PMs.
  [[nodiscard]] double max_cvr() const;

  [[nodiscard]] CvrTrackerState export_state() const {
    CvrTrackerState st;
    st.pms.reserve(total_.size());
    for (const PerPm& pm : total_) {
      CvrTrackerState::PerPm out;
      out.observed = pm.observed;
      out.violated = pm.violated;
      // Element-wise (not assign()) — GCC 12's stringop-overflow analysis
      // false-positives on deque<bool> -> vector<uint8_t> range copies.
      out.window.reserve(pm.window.size());
      for (const bool v : pm.window) out.window.push_back(v ? 1 : 0);
      st.pms.push_back(std::move(out));
    }
    return st;
  }

  void import_state(const CvrTrackerState& st) {
    BURSTQ_REQUIRE(st.pms.size() == total_.size(),
                   "CvrTracker state PM count mismatch");
    for (std::size_t i = 0; i < total_.size(); ++i) {
      PerPm& pm = total_[i];
      pm.observed = st.pms[i].observed;
      pm.violated = st.pms[i].violated;
      pm.window.clear();
      pm.window_violations = 0;
      for (const std::uint8_t v : st.pms[i].window) {
        pm.window.push_back(v != 0);
        if (v != 0) ++pm.window_violations;
      }
    }
  }

 private:
  struct PerPm {
    std::size_t observed{0};
    std::size_t violated{0};
    std::deque<bool> window;
    std::size_t window_violations{0};
  };
  std::vector<PerPm> total_;
  std::size_t window_size_;
};

/// Violation *episode* statistics: lengths of maximal runs of consecutive
/// violated slots.  Two placements with identical CVR can differ sharply
/// here — a duration-blind packing (e.g. SBP) concentrates its violations
/// into long episodes while the queuing reservation spreads them thin.
struct EpisodeStats {
  std::size_t episodes{0};       ///< number of maximal violation runs
  std::size_t violated_slots{0};
  std::size_t longest{0};        ///< longest run, in slots
  double mean_length{0.0};       ///< violated_slots / episodes (0 if none)
};

/// Computes episode statistics from a per-slot violation record.
EpisodeStats violation_episodes(const std::vector<bool>& violated);

/// One live-migration event (Figure 10's unit of observation).
struct MigrationEvent {
  TimeSlot slot{0};
  VmId vm{};
  PmId from{};
  PmId to{};  ///< invalid when no target PM was found (failed migration)

  [[nodiscard]] bool failed() const { return !to.valid(); }
};

}  // namespace burstq
