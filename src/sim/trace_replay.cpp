#include "sim/trace_replay.h"

#include <algorithm>

#include "common/error.h"

namespace burstq {

TraceReplayReport replay_trace_cvr(const DemandTrace& trace,
                                   const Placement& placement,
                                   const std::vector<Resource>& capacity) {
  BURSTQ_REQUIRE(!trace.empty(), "empty trace");
  BURSTQ_REQUIRE(placement.vms_assigned() == placement.n_vms(),
                 "placement must assign every VM");
  BURSTQ_REQUIRE(trace.front().size() == placement.n_vms(),
                 "trace VM count must match the placement");
  BURSTQ_REQUIRE(capacity.size() == placement.n_pms(),
                 "one capacity per PM required");

  const std::size_t m = placement.n_pms();
  std::vector<std::size_t> violations(m, 0);
  std::vector<Resource> load(m, 0.0);

  for (const auto& row : trace) {
    BURSTQ_REQUIRE(row.size() == placement.n_vms(), "ragged demand trace");
    std::fill(load.begin(), load.end(), 0.0);
    for (std::size_t i = 0; i < row.size(); ++i)
      load[placement.pm_of(VmId{i}).value] += row[i];
    for (std::size_t j = 0; j < m; ++j)
      if (load[j] > capacity[j] * (1.0 + kCapacityEpsilon)) ++violations[j];
  }

  TraceReplayReport report;
  report.slots = trace.size();
  report.pm_cvr.resize(m);
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t j = 0; j < m; ++j) {
    report.pm_cvr[j] = static_cast<double>(violations[j]) /
                       static_cast<double>(trace.size());
    report.max_cvr = std::max(report.max_cvr, report.pm_cvr[j]);
    if (placement.count_on(PmId{j}) > 0) {
      sum += report.pm_cvr[j];
      ++used;
    }
  }
  report.mean_cvr = used == 0 ? 0.0 : sum / static_cast<double>(used);
  return report;
}

}  // namespace burstq
