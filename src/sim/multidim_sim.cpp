#include "sim/multidim_sim.h"

#include "common/error.h"
#include "markov/onoff.h"
#include "placement/placement.h"

namespace burstq {

std::vector<double> simulate_cvr_multidim(
    const MultiProblemInstance& inst, const std::vector<std::size_t>& pm_of,
    std::size_t slots, Rng rng, bool start_stationary) {
  inst.validate();
  BURSTQ_REQUIRE(slots > 0, "needs at least one slot");
  BURSTQ_REQUIRE(pm_of.size() == inst.vms.size(),
                 "pm_of must cover every VM");
  for (std::size_t pm : pm_of)
    BURSTQ_REQUIRE(pm < inst.pms.size(),
                   "placement incomplete or PM index out of range");

  const std::size_t dims = inst.dims();
  std::vector<OnOffChain> chains;
  chains.reserve(inst.vms.size());
  for (const auto& v : inst.vms) {
    OnOffChain c(v.onoff);
    if (start_stationary) c.reset_stationary(rng);
    chains.push_back(c);
  }

  std::vector<std::size_t> violations(inst.pms.size(), 0);
  std::vector<std::array<Resource, kMaxDims>> load(inst.pms.size());

  for (std::size_t t = 0; t < slots; ++t) {
    if (t > 0)
      for (auto& c : chains) c.step(rng);

    for (auto& l : load) l.fill(0.0);
    for (std::size_t i = 0; i < inst.vms.size(); ++i) {
      const auto& v = inst.vms[i];
      const bool on = chains[i].on();
      for (std::size_t d = 0; d < dims; ++d)
        load[pm_of[i]][d] += v.rb[d] + (on ? v.re[d] : 0.0);
    }

    for (std::size_t j = 0; j < inst.pms.size(); ++j) {
      for (std::size_t d = 0; d < dims; ++d) {
        if (load[j][d] >
            inst.pms[j].capacity[d] * (1.0 + kCapacityEpsilon)) {
          ++violations[j];
          break;  // one violated dimension flags the slot
        }
      }
    }
  }

  std::vector<double> cvr(inst.pms.size(), 0.0);
  for (std::size_t j = 0; j < inst.pms.size(); ++j)
    cvr[j] =
        static_cast<double>(violations[j]) / static_cast<double>(slots);
  return cvr;
}

}  // namespace burstq
