#include "sim/request_sim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace burstq {

void RequestSimConfig::validate() const {
  BURSTQ_REQUIRE(slots > 0, "needs at least one slot");
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
  BURSTQ_REQUIRE(service_demand_seconds > 0.0,
                 "service demand must be positive");
  BURSTQ_REQUIRE(users_per_unit > 0.0, "users_per_unit must be positive");
}

RequestSimReport simulate_request_performance(const ProblemInstance& inst,
                                              const Placement& placement,
                                              const RequestSimConfig& config,
                                              Rng rng) {
  inst.validate();
  config.validate();
  BURSTQ_REQUIRE(placement.vms_assigned() == inst.n_vms(),
                 "placement must assign every VM");
  BURSTQ_REQUIRE(placement.n_pms() == inst.n_pms(),
                 "placement PM count must match the instance");

  const std::size_t n = inst.n_vms();
  const std::size_t m = inst.n_pms();

  WorkloadEnsemble ensemble(inst, rng.split(), config.start_stationary);
  std::vector<WebServerWorkload> web;
  web.reserve(n);
  for (const auto& v : inst.vms) {
    WebServerParams wp;
    wp.sigma_seconds = config.sigma_seconds;
    wp.users_per_unit = config.users_per_unit;
    const double nu = std::max(1.0, std::round(v.rb * wp.users_per_unit));
    const double pu = std::max(nu, std::round(v.rp() * wp.users_per_unit));
    wp.normal_users = static_cast<std::size_t>(nu);
    wp.peak_users = static_cast<std::size_t>(pu);
    web.emplace_back(wp);
  }

  // Requests one resource unit can retire in one slot.
  const double unit_capability =
      config.sigma_seconds / config.service_demand_seconds;

  std::vector<double> backlog(n, 0.0);
  std::vector<double> backlog_sum(n, 0.0);
  std::vector<double> served_total(n, 0.0);
  std::vector<double> arrivals_total(n, 0.0);
  std::vector<Resource> demand(n, 0.0);
  std::vector<Resource> pm_demand(m, 0.0);
  double capability_total = 0.0;
  double served_grand = 0.0;

  for (std::size_t t = 0; t < config.slots; ++t) {
    if (t > 0) ensemble.step();

    std::fill(pm_demand.begin(), pm_demand.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      demand[i] = inst.vms[i].demand(ensemble.state(i));
      pm_demand[placement.pm_of(VmId{i}).value] += demand[i];
    }

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pm = placement.pm_of(VmId{i}).value;
      // Local resizing grants full demand while the PM has room; under
      // contention every collocated VM is squeezed proportionally.
      const double scale =
          pm_demand[pm] <= inst.pms[pm].capacity
              ? 1.0
              : inst.pms[pm].capacity / pm_demand[pm];
      const double allocation = demand[i] * scale;
      const double capability = allocation * unit_capability;

      const double arrivals =
          web[i].sample_requests_gaussian(ensemble.state(i), rng);
      const double queue = backlog[i] + arrivals;
      const double served = std::min(queue, capability);
      backlog[i] = queue - served;

      backlog_sum[i] += backlog[i];
      served_total[i] += served;
      arrivals_total[i] += arrivals;
      capability_total += capability;
      served_grand += served;
    }
  }

  RequestSimReport report;
  report.vm_latency_seconds.resize(n);
  const double horizon =
      static_cast<double>(config.slots) * config.sigma_seconds;
  double backlog_grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    report.total_arrivals += arrivals_total[i];
    report.total_served += served_total[i];
    report.final_backlog += backlog[i];
    backlog_grand += backlog_sum[i];

    const double mean_backlog =
        backlog_sum[i] / static_cast<double>(config.slots);
    const double throughput = served_total[i] / horizon;  // req/s
    // Little's law; a VM that served nothing while holding work is
    // censored at the horizon (effectively "never answered").
    report.vm_latency_seconds[i] =
        throughput > 0.0 ? mean_backlog / throughput
                         : (mean_backlog > 0.0 ? horizon : 0.0);
  }
  const double mean_backlog_all =
      backlog_grand / static_cast<double>(config.slots);
  const double throughput_all = report.total_served / horizon;
  report.mean_latency_seconds =
      throughput_all > 0.0 ? mean_backlog_all / throughput_all : 0.0;

  std::vector<double> sorted = report.vm_latency_seconds;
  std::sort(sorted.begin(), sorted.end());
  report.worst_vm_latency_seconds = sorted.empty() ? 0.0 : sorted.back();
  const auto p95_idx = static_cast<std::size_t>(
      0.95 * static_cast<double>(sorted.size() - 1));
  report.p95_vm_latency_seconds = sorted.empty() ? 0.0 : sorted[p95_idx];
  report.mean_utilization =
      capability_total > 0.0 ? served_grand / capability_total : 0.0;
  return report;
}

}  // namespace burstq
