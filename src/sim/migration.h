// Live-migration policy of the dynamic scheduler.
//
// The paper's scheduler migrates "when local resizing is not capable to
// allocate enough resources", triggered by a PM's *recent* CVR exceeding
// rho ("imposing such a threshold rho rather than conducting migration
// upon PM's capacity overflow is also a way to tolerate minor
// fluctuation").  The target PM is chosen by *currently observed* load —
// deliberately so: that is exactly what a burstiness-unaware scheduler
// does, and it is the mechanism behind the paper's "idle deception" and
// "cycle migration" phenomena for the RB/RB-EX packings.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "markov/onoff.h"
#include "placement/spec.h"

namespace burstq {

/// Which VM to evict from a PM whose CVR breached the threshold.
enum class VictimSelection {
  kLargestOnDemand,  ///< default: the spiking VM with the most demand
  kSmallestRb,       ///< the cheapest VM to move (least state to copy)
  kLargestRe,        ///< the burst culprit regardless of current state
};

/// How the scheduler picks a destination PM.
enum class TargetSelection {
  kObservedLoad,      ///< by current load — the burstiness-unaware choice
                      ///< that produces the paper's idle deception
  kReservationAware,  ///< by Eq. (17) with a mapping table — a
                      ///< burstiness-aware scheduler (burstq extension)
};

struct MigrationPolicy {
  double rho{0.01};            ///< CVR trigger threshold
  std::size_t cvr_window{10};  ///< sliding-window length (slots); >= 1
  /// Slots during which the VM loads both PMs.  Must be >= 1: a live
  /// migration always occupies the source for at least one copy slot
  /// (validate() rejects 0 rather than silently modelling free moves).
  std::size_t cost_slots{1};
  std::size_t max_vms_per_pm{16};
  VictimSelection victim{VictimSelection::kLargestOnDemand};
  TargetSelection target{TargetSelection::kObservedLoad};

  void validate() const;
};

/// Chooses which VM to evict from an overloaded PM.
///
/// Preference order: the ON VM with the largest current demand (evicting
/// the spiking VM frees the most and it is the one local resizing could
/// not absorb); if no VM is ON (noise-driven overload), the largest-demand
/// VM overall.  Equal demands tie-break on the *lowest VmId*, independent
/// of the order of `vms_on_pm` — PM lists get reordered by swap-removes,
/// and fault replay / fuzz --replay must stay bit-reproducible across
/// that churn.  Returns nullopt when the PM hosts nothing.
std::optional<VmId> select_victim(std::span<const std::size_t> vms_on_pm,
                                  std::span<const Resource> demand,
                                  std::span<const VmState> state);

/// Policy-dispatched victim selection.  kLargestOnDemand delegates to
/// select_victim above; kSmallestRb / kLargestRe rank by the static spec
/// with the same lowest-VmId tie-break on equal keys.
std::optional<VmId> select_victim_policy(
    VictimSelection policy, const ProblemInstance& inst,
    std::span<const std::size_t> vms_on_pm, std::span<const Resource> demand,
    std::span<const VmState> state);

/// Chooses the destination PM by observed load: the first PM (by index)
/// other than `source` with fewer than `max_vms` VMs whose current
/// aggregate demand plus the victim's demand stays within capacity.
/// A non-empty `pm_up` mask (byte per PM, nonzero = up) excludes down PMs
/// (fault injection); empty means every PM is a candidate.  Returns
/// nullopt when no PM qualifies.
std::optional<PmId> select_target(PmId source, Resource victim_demand,
                                  std::span<const Resource> pm_load,
                                  std::span<const Resource> pm_capacity,
                                  std::span<const std::size_t> pm_vm_count,
                                  std::size_t max_vms,
                                  std::span<const std::uint8_t> pm_up = {});

}  // namespace burstq
