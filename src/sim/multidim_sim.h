// CVR simulation for the multi-dimensional extension (Section IV-E).
//
// Mirrors simulate_cvr for MultiProblemInstance: a PM-slot counts as
// violated when the aggregate demand exceeds capacity in ANY dimension
// ("performance constraints should be satisfied on all dimensions").

#pragma once

#include <vector>

#include "common/rng.h"
#include "placement/multidim.h"

namespace burstq {

/// Per-PM cumulative CVR of a multi-dimensional placement after `slots`
/// steps of rectangular ON-OFF demand.  `pm_of` follows
/// MultiPlacementResult::pm_of (npos entries are rejected — the placement
/// must be complete).
std::vector<double> simulate_cvr_multidim(
    const MultiProblemInstance& inst, const std::vector<std::size_t>& pm_of,
    std::size_t slots, Rng rng, bool start_stationary = true);

}  // namespace burstq
