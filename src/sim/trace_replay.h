// Trace-driven CVR evaluation: replay a recorded (or imported) demand
// trace against a placement instead of sampling the ON-OFF model.
//
// This is how a fitted model is validated against reality (see
// examples/trace_analysis): the placement was computed from estimated
// parameters, the replay uses the raw observations.

#pragma once

#include <vector>

#include "placement/placement.h"
#include "sim/workload_gen.h"

namespace burstq {

struct TraceReplayReport {
  std::vector<double> pm_cvr;  ///< per PM, over the trace length
  double mean_cvr{0.0};        ///< over PMs hosting at least one VM
  double max_cvr{0.0};
  std::size_t slots{0};
};

/// Replays trace[t][i] (demand of VM i at slot t) against `placement`
/// with the given per-PM capacities.  Requires a complete placement, a
/// non-empty non-ragged trace matching the VM count, and one capacity per
/// PM.
TraceReplayReport replay_trace_cvr(const DemandTrace& trace,
                                   const Placement& placement,
                                   const std::vector<Resource>& capacity);

}  // namespace burstq
