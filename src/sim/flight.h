// Flight-recorder schema: the bridge between the simulators and the
// obs event log, in both directions.
//
// Write side: FlightSlotRecorder emits the per-run `sim.config` header
// and compact per-slot observation events (`slot.obs`) at
// EventLevel::kDetail.  Active-PM sets are delta-encoded (the `active`
// field appears only when the set changed), so a static placement costs
// one id list for the whole run and the dynamic scheduler pays only on
// migration slots.
//
// Read side: replay_flight_log() re-drives a CvrTracker from a recorded
// JSONL stream — record/reset calls happen in exactly the order the live
// run performed them, so cumulative AND windowed CVR (including the
// reset_window cooldown path) are reproduced bit-for-bit.  Comparing the
// replayed totals against the live SimReport cross-checks the whole
// observability pipeline.
//
// Event kinds consumed here: sim.config, slot.obs, window.reset,
// migration.  Other kinds (place, mapcal, replan, ...) pass through
// untouched.  See docs/OBSERVABILITY.md for the full schema.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/jsonl.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "sim/metrics.h"

namespace burstq {

#ifndef BURSTQ_NO_OBS

/// Emits `sim.config` + per-slot `slot.obs` events for one simulation
/// run.  Construction is cheap when no detail-level sink is open; every
/// method is then a no-op.  Not thread-safe (one recorder per run).
class FlightSlotRecorder {
 public:
  /// `default_label` identifies the run in multi-run logs unless the
  /// event log carries a run label (EventLog::set_run_label), which wins.
  FlightSlotRecorder(std::string_view default_label, std::size_t n_pms,
                     std::size_t slots, std::size_t window, double rho);

  /// True when slot() will actually record; callers skip building the
  /// id lists otherwise.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records one slot: `active` = PM ids observed this slot (ascending,
  /// exactly those passed to CvrTracker::record), `violated` = the
  /// subset that violated capacity.
  void slot(std::size_t t, const std::vector<std::size_t>& active,
            const std::vector<std::size_t>& violated);

  // Delta-encoding state, for durable snapshots: the restored recorder
  // must keep eliding the `active` field exactly where the uninterrupted
  // run would have.
  [[nodiscard]] bool first() const { return first_; }
  [[nodiscard]] const std::vector<std::size_t>& last_active() const {
    return last_active_;
  }
  void restore_state(bool first, std::vector<std::size_t> last_active) {
    first_ = first;
    last_active_ = std::move(last_active);
  }

 private:
  bool enabled_{false};
  bool first_{true};
  std::vector<std::size_t> last_active_;
};

#else  // BURSTQ_NO_OBS

class FlightSlotRecorder {
 public:
  FlightSlotRecorder(std::string_view, std::size_t, std::size_t,
                     std::size_t, double) {}
  [[nodiscard]] bool enabled() const { return false; }
  void slot(std::size_t, const std::vector<std::size_t>&,
            const std::vector<std::size_t>&) {}
  [[nodiscard]] bool first() const { return true; }
  [[nodiscard]] const std::vector<std::size_t>& last_active() const {
    static const std::vector<std::size_t> kEmpty;
    return kEmpty;
  }
  void restore_state(bool, std::vector<std::size_t>) {}
};

#endif  // BURSTQ_NO_OBS

/// One replayed simulation run (one `sim.config` header and everything
/// after it until the next header).
struct FlightReplaySegment {
  FlightReplaySegment(std::string label_, std::size_t n_pms_,
                      std::size_t window_, std::size_t declared_slots_,
                      double rho_)
      : label(std::move(label_)),
        n_pms(n_pms_),
        window(window_),
        declared_slots(declared_slots_),
        rho(rho_),
        tracker(n_pms_, window_) {}

  std::string label;
  std::size_t n_pms;
  std::size_t window;
  std::size_t declared_slots;
  double rho;
  CvrTracker tracker;          ///< re-derived violation bookkeeping
  /// SLO audit re-derived from the same stream (only when replay was
  /// given SloOptions).  rho comes from the recorded header; windows and
  /// breach threshold from the options.  window.reset events do NOT touch
  /// it — the SLO measures what tenants saw, cooldowns notwithstanding.
  std::unique_ptr<obs::SloTracker> slo;
  std::size_t slots_seen{0};
  std::size_t migrations{0};
  std::size_t failed_migrations{0};
  std::size_t window_resets{0};
};

/// Replays a recorded event stream.  Throws InvalidArgument on schema
/// violations (slot.obs before any sim.config, PM ids out of range).
/// When `slo` is non-null every segment additionally re-derives an SLO
/// verdict (FlightReplaySegment::slo) from its slot.obs events.
std::vector<FlightReplaySegment> replay_flight_log(
    const std::vector<obs::RecordedEvent>& events,
    const obs::SloOptions* slo = nullptr);

/// Convenience: read_events_auto + replay — consumes JSONL or BTRC
/// directly (both decode to the same event stream, so the CVR and SLO
/// verdicts are bit-identical).  Throws InvalidArgument for CSV logs,
/// which are string-typed and not replayable.
std::vector<FlightReplaySegment> replay_flight_log(
    const std::string& path, const obs::SloOptions* slo = nullptr);

/// Parses the space-separated id lists used by `slot.obs` (exposed for
/// tests).
std::vector<std::size_t> parse_id_list(std::string_view text);

/// Options for explain_slo_breaches (the `burstq_cli slo explain`
/// engine).
struct SloExplainOptions {
  /// Window/threshold configuration for the re-derived SLO audit; rho
  /// is overridden per segment by the recorded sim.config header.
  obs::SloOptions slo{};
  /// Max event kinds / span names / violating PMs listed per episode.
  std::size_t top{8};
  /// Include byte-offset trace pointers (resolvable with `trace
  /// head|tail --at-offset`).  Pointer lines are the only part of the
  /// report that differs between a JSONL and a BTRC recording of the
  /// same run, so diff-based tooling can turn them off.
  bool pointers{true};
};

/// Re-derives SLO breach episodes from a recorded trace (existing
/// flight replay) and explains each one: the episode window, a byte
/// offset pointer to its first slot, the dominant event kinds and spans
/// inside the window, and the top violating PMs.  Deterministic: the
/// same trace renders byte-identically, and with the virtual span clock
/// two same-seed runs do too.  Throws InvalidArgument on CSV logs and
/// on unreadable/corrupt traces.
std::string explain_slo_breaches(const std::string& path,
                                 const SloExplainOptions& opt = {});

}  // namespace burstq
