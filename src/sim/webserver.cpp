#include "sim/webserver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace burstq {

ThinkTimeMoments think_time_moments(double mean, double floor) {
  BURSTQ_REQUIRE(mean > 0.0, "think-time mean must be positive");
  BURSTQ_REQUIRE(floor >= 0.0, "think-time floor must be non-negative");
  const double a = floor;
  const double e = std::exp(-a / mean);
  ThinkTimeMoments m;
  // E[max(a,X)] = a + E[(X-a)^+] = a + mean * e   (memorylessness)
  m.mean = a + mean * e;
  // E[max(a,X)^2] = a^2 P[X<=a] + E[X^2; X>a]
  //              = a^2 (1-e) + e * (a^2 + 2*mean*a + 2*mean^2)
  //              = a^2 + 2*mean*(a + mean)*e
  const double second = a * a + 2.0 * mean * (a + mean) * e;
  m.variance = second - m.mean * m.mean;
  BURSTQ_ASSERT(m.variance >= 0.0, "negative think-time variance");
  return m;
}

void WebServerParams::validate() const {
  BURSTQ_REQUIRE(normal_users >= 1, "need at least one normal user");
  BURSTQ_REQUIRE(peak_users >= normal_users,
                 "peak users must be >= normal users");
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
  BURSTQ_REQUIRE(think_mean > 0.0, "think-time mean must be positive");
  BURSTQ_REQUIRE(think_floor >= 0.0 && think_floor < 10.0 * think_mean,
                 "think-time floor out of sane range");
  BURSTQ_REQUIRE(users_per_unit > 0.0, "users_per_unit must be positive");
}

WebServerWorkload::WebServerWorkload(WebServerParams params)
    : params_(params),
      moments_(think_time_moments(params.think_mean, params.think_floor)),
      unit_requests_(params.users_per_unit * params.sigma_seconds /
                     moments_.mean) {
  params_.validate();
}

double WebServerWorkload::expected_requests(VmState state) const {
  return static_cast<double>(users(state)) * params_.sigma_seconds /
         moments_.mean;
}

double WebServerWorkload::sample_requests_exact(VmState state,
                                                Rng& rng) const {
  const std::size_t n = users(state);
  const double a = params_.think_floor;
  const double m = params_.think_mean;
  std::size_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    // Count renewals of X = max(floor, Exp(mean)) within one slot.  For a
    // *stationary* renewal process the time to the first arrival follows
    // the equilibrium (forward-recurrence) distribution with density
    // S(x)/mu — sampled here by inverting its CDF:
    //   x <= a:  CDF = x/mu            (S = 1)
    //   x >  a:  CDF = (a + m(1-e^{-(x-a)/m}))/mu
    // A uniform phase start instead would over-count by 1/2 request per
    // user per slot (renewal-theory inspection paradox).  Inverting the
    // x > a branch: t = a - m ln(1 - (y - a)/(mu - a)), since
    // mu - a = m e^{-a/m} is the integral of the survival tail.
    const double y = rng.next_double() * moments_.mean;
    double t =
        y <= a ? y : a - m * std::log1p(-(y - a) / (moments_.mean - a));
    while (t < params_.sigma_seconds) {
      ++total;
      t += std::max(a, rng.exponential(m));
    }
  }
  return static_cast<double>(total);
}

double WebServerWorkload::sample_requests_gaussian(VmState state,
                                                   Rng& rng) const {
  const auto n = static_cast<double>(users(state));
  const double t = params_.sigma_seconds;
  const double mu = moments_.mean;
  // Renewal CLT: count per user ~ Normal(t/mu, t*sigma^2/mu^3).
  const double mean = n * t / mu;
  const double var = n * t * moments_.variance / (mu * mu * mu);
  // Box-Muller.
  const double u1 = std::max(rng.next_double(), 1e-300);
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::max(0.0, mean + std::sqrt(var) * z);
}

Resource WebServerWorkload::requests_to_demand(double requests) const {
  return requests / unit_requests_;
}

Resource WebServerWorkload::sample_demand(VmState state, Rng& rng) const {
  return requests_to_demand(sample_requests_gaussian(state, rng));
}

}  // namespace burstq
