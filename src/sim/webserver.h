// Web-server request workload (paper Section V-D).
//
// "We develop programs in VMs to simulate web servers dealing with
// computation-intensive user requests.  When a spike occurs, more users
// than usual are visiting the server.  Users are sending requests to the
// server periodically, and the period for a user to send request (think
// time) follows negative exponential distribution with mean=1.  Since in
// reality the user think time cannot be infinitely small, we set a lower
// limit=0.1.  The workload is quantified by request number."
//
// Each VM therefore serves `normal_users` while OFF and `peak_users`
// while ON (Table I maps small/medium/large to 400/800/1600 normal users,
// doubling-ish at peak).  Per slot of sigma seconds, the request count is
// the sum over users of a renewal process with inter-arrival
// max(think_floor, Exp(think_mean)).
//
// Two generators are provided: an exact per-user renewal simulation (the
// reference, O(requests) per slot) and a renewal-CLT Gaussian
// approximation (O(1) per slot, used by the big Figure 9 sweeps).  Tests
// pin the approximation's mean/variance to the exact generator.

#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"
#include "markov/onoff.h"

namespace burstq {

/// Moments of the truncated think time max(floor, Exp(mean)).
struct ThinkTimeMoments {
  double mean{0.0};
  double variance{0.0};
};

/// Closed-form moments: with X ~ Exp(mean), a = floor,
///   E[max(a,X)]  = a + mean * exp(-a/mean)
///   E[max(a,X)^2]= a^2 + 2*mean*(a+mean)*exp(-a/mean)
ThinkTimeMoments think_time_moments(double mean, double floor);

struct WebServerParams {
  std::size_t normal_users{400};  ///< active users while OFF
  std::size_t peak_users{800};    ///< active users while ON
  double sigma_seconds{30.0};     ///< slot length (paper sigma = 30s)
  double think_mean{1.0};         ///< exponential think-time mean
  double think_floor{0.1};        ///< lower limit on think time
  double users_per_unit{100.0};   ///< demand-unit scaling (users -> Resource)

  void validate() const;
};

/// Per-slot request/demand generator for one web-server VM.
class WebServerWorkload {
 public:
  explicit WebServerWorkload(WebServerParams params);

  /// Expected requests in one slot given the chain state.
  [[nodiscard]] double expected_requests(VmState state) const;

  /// Draws the request count for a slot: exact per-user renewal counting.
  [[nodiscard]] double sample_requests_exact(VmState state, Rng& rng) const;

  /// Draws the request count for a slot via the renewal central limit
  /// theorem: N ~ Normal(t/mu, t*var/mu^3) per user, summed, clamped >= 0.
  [[nodiscard]] double sample_requests_gaussian(VmState state,
                                                Rng& rng) const;

  /// Converts a request count to resource units: one unit corresponds to
  /// the steady request rate of `users_per_unit` users.
  [[nodiscard]] Resource requests_to_demand(double requests) const;

  /// Convenience: sampled demand for a slot (Gaussian path).
  [[nodiscard]] Resource sample_demand(VmState state, Rng& rng) const;

  [[nodiscard]] const WebServerParams& params() const { return params_; }
  [[nodiscard]] const ThinkTimeMoments& moments() const { return moments_; }

 private:
  [[nodiscard]] std::size_t users(VmState state) const {
    return state == VmState::kOn ? params_.peak_users : params_.normal_users;
  }

  WebServerParams params_;
  ThinkTimeMoments moments_;
  double unit_requests_;  ///< expected requests/slot of users_per_unit users
};

}  // namespace burstq
