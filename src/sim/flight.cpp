#include "sim/flight.h"

#include <algorithm>
#include <charconv>

#include "common/error.h"
#include "obs/trace.h"

namespace burstq {

namespace {

// Only the write side (compiled out under BURSTQ_NO_OBS) serializes.
[[maybe_unused]] std::string join_ids(const std::vector<std::size_t>& ids) {
  std::string out;
  for (std::size_t v : ids) {
    if (!out.empty()) out += ' ';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

std::vector<std::size_t> parse_id_list(std::string_view text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    std::size_t value = 0;
    const auto [next, ec] =
        std::from_chars(text.data() + pos, text.data() + text.size(), value);
    BURSTQ_REQUIRE(ec == std::errc{} && next != text.data() + pos,
                   "malformed id list: " + std::string(text));
    out.push_back(value);
    pos = static_cast<std::size_t>(next - text.data());
  }
  return out;
}

#ifndef BURSTQ_NO_OBS

FlightSlotRecorder::FlightSlotRecorder(std::string_view default_label,
                                       std::size_t n_pms, std::size_t slots,
                                       std::size_t window, double rho)
    : enabled_(obs::events().enabled(obs::EventLevel::kDetail)) {
  if (!enabled_) return;
  const std::string run = obs::events().run_label();
  const std::string_view label = run.empty() ? default_label : run;
  obs::events().emit(obs::EventLevel::kDetail, "sim.config",
                     {{"label", label},
                      {"n_pms", n_pms},
                      {"slots", slots},
                      {"window", window},
                      {"rho", rho}});
}

void FlightSlotRecorder::slot(std::size_t t,
                              const std::vector<std::size_t>& active,
                              const std::vector<std::size_t>& violated) {
  if (!enabled_) return;
  const std::string viol = join_ids(violated);
  if (first_ || active != last_active_) {
    obs::events().emit(
        obs::EventLevel::kDetail, "slot.obs",
        {{"t", t}, {"active", join_ids(active)}, {"viol", viol}});
    last_active_ = active;
    first_ = false;
  } else {
    obs::events().emit(obs::EventLevel::kDetail, "slot.obs",
                       {{"t", t}, {"viol", viol}});
  }
}

#endif  // BURSTQ_NO_OBS

std::vector<FlightReplaySegment> replay_flight_log(
    const std::vector<obs::RecordedEvent>& events,
    const obs::SloOptions* slo) {
  std::vector<FlightReplaySegment> segments;
  std::vector<std::size_t> active;  // carried across delta-encoded slots

  const auto current = [&]() -> FlightReplaySegment& {
    BURSTQ_REQUIRE(!segments.empty(),
                   "flight log event precedes any sim.config header");
    return segments.back();
  };

  for (const obs::RecordedEvent& ev : events) {
    if (ev.kind == "sim.config") {
      const auto n_pms = static_cast<std::size_t>(ev.integer("n_pms"));
      auto window = static_cast<std::size_t>(ev.integer("window", 1));
      BURSTQ_REQUIRE(n_pms > 0, "sim.config without a positive n_pms");
      if (window == 0) window = 1;
      segments.emplace_back(std::string(ev.str("label")), n_pms, window,
                            static_cast<std::size_t>(ev.integer("slots")),
                            ev.num("rho"));
      if (slo != nullptr) {
        obs::SloOptions opts = *slo;
        // The recorded run's own budget is the objective being audited.
        if (segments.back().rho > 0.0) opts.rho = segments.back().rho;
        segments.back().slo =
            std::make_unique<obs::SloTracker>(n_pms, opts);
      }
      active.clear();
    } else if (ev.kind == "slot.obs") {
      FlightReplaySegment& seg = current();
      if (ev.has("active")) active = parse_id_list(ev.str("active"));
      const std::vector<std::size_t> violated =
          parse_id_list(ev.str("viol"));
      // Same order as the live run: ascending PM id, violation flag by
      // membership in the violated subset.
      auto vit = violated.begin();
      for (std::size_t pm : active) {
        BURSTQ_REQUIRE(pm < seg.n_pms, "slot.obs PM id out of range");
        while (vit != violated.end() && *vit < pm) ++vit;
        const bool hit = vit != violated.end() && *vit == pm;
        seg.tracker.record(PmId{pm}, hit);
        if (seg.slo) seg.slo->record(PmId{pm}, hit);
      }
      if (seg.slo) seg.slo->end_slot();
      ++seg.slots_seen;
    } else if (ev.kind == "window.reset") {
      FlightReplaySegment& seg = current();
      const auto pm = static_cast<std::size_t>(ev.integer("pm"));
      BURSTQ_REQUIRE(pm < seg.n_pms, "window.reset PM id out of range");
      seg.tracker.reset_window(PmId{pm});
      ++seg.window_resets;
    } else if (ev.kind == "migration") {
      FlightReplaySegment& seg = current();
      if (ev.boolean("ok"))
        ++seg.migrations;
      else
        ++seg.failed_migrations;
    }
    // Other kinds (place, mapcal, replan, ...) are not part of CVR replay.
  }
  return segments;
}

std::vector<FlightReplaySegment> replay_flight_log(
    const std::string& path, const obs::SloOptions* slo) {
  obs::EventFormat format = obs::EventFormat::kJsonl;
  auto events = obs::read_events_auto(path, &format);
  // The long-CSV sink is string-typed end to end, so replaying it would
  // silently re-derive CVR from parsed text.  Refuse rather than guess.
  if (format == obs::EventFormat::kCsv)
    throw InvalidArgument(
        path + ": CSV event logs are lossy (string-typed) and cannot be "
               "replayed; record JSONL or BTRC instead");
  return replay_flight_log(events, slo);
}

}  // namespace burstq
