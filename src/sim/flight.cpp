#include "sim/flight.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>

#include "common/error.h"
#include "obs/profile.h"
#include "obs/query.h"
#include "obs/trace.h"

namespace burstq {

namespace {

// Only the write side (compiled out under BURSTQ_NO_OBS) serializes.
[[maybe_unused]] std::string join_ids(const std::vector<std::size_t>& ids) {
  std::string out;
  for (std::size_t v : ids) {
    if (!out.empty()) out += ' ';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

std::vector<std::size_t> parse_id_list(std::string_view text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    std::size_t value = 0;
    const auto [next, ec] =
        std::from_chars(text.data() + pos, text.data() + text.size(), value);
    BURSTQ_REQUIRE(ec == std::errc{} && next != text.data() + pos,
                   "malformed id list: " + std::string(text));
    out.push_back(value);
    pos = static_cast<std::size_t>(next - text.data());
  }
  return out;
}

#ifndef BURSTQ_NO_OBS

FlightSlotRecorder::FlightSlotRecorder(std::string_view default_label,
                                       std::size_t n_pms, std::size_t slots,
                                       std::size_t window, double rho)
    : enabled_(obs::events().enabled(obs::EventLevel::kDetail)) {
  if (!enabled_) return;
  const std::string run = obs::events().run_label();
  const std::string_view label = run.empty() ? default_label : run;
  obs::events().emit(obs::EventLevel::kDetail, "sim.config",
                     {{"label", label},
                      {"n_pms", n_pms},
                      {"slots", slots},
                      {"window", window},
                      {"rho", rho}});
}

void FlightSlotRecorder::slot(std::size_t t,
                              const std::vector<std::size_t>& active,
                              const std::vector<std::size_t>& violated) {
  if (!enabled_) return;
  const std::string viol = join_ids(violated);
  if (first_ || active != last_active_) {
    obs::events().emit(
        obs::EventLevel::kDetail, "slot.obs",
        {{"t", t}, {"active", join_ids(active)}, {"viol", viol}});
    last_active_ = active;
    first_ = false;
  } else {
    obs::events().emit(obs::EventLevel::kDetail, "slot.obs",
                       {{"t", t}, {"viol", viol}});
  }
}

#endif  // BURSTQ_NO_OBS

std::vector<FlightReplaySegment> replay_flight_log(
    const std::vector<obs::RecordedEvent>& events,
    const obs::SloOptions* slo) {
  std::vector<FlightReplaySegment> segments;
  std::vector<std::size_t> active;  // carried across delta-encoded slots

  const auto current = [&]() -> FlightReplaySegment& {
    BURSTQ_REQUIRE(!segments.empty(),
                   "flight log event precedes any sim.config header");
    return segments.back();
  };

  for (const obs::RecordedEvent& ev : events) {
    if (ev.kind == "sim.config") {
      const auto n_pms = static_cast<std::size_t>(ev.integer("n_pms"));
      auto window = static_cast<std::size_t>(ev.integer("window", 1));
      BURSTQ_REQUIRE(n_pms > 0, "sim.config without a positive n_pms");
      if (window == 0) window = 1;
      segments.emplace_back(std::string(ev.str("label")), n_pms, window,
                            static_cast<std::size_t>(ev.integer("slots")),
                            ev.num("rho"));
      if (slo != nullptr) {
        obs::SloOptions opts = *slo;
        // The recorded run's own budget is the objective being audited.
        if (segments.back().rho > 0.0) opts.rho = segments.back().rho;
        segments.back().slo =
            std::make_unique<obs::SloTracker>(n_pms, opts);
      }
      active.clear();
    } else if (ev.kind == "slot.obs") {
      FlightReplaySegment& seg = current();
      if (ev.has("active")) active = parse_id_list(ev.str("active"));
      const std::vector<std::size_t> violated =
          parse_id_list(ev.str("viol"));
      // Same order as the live run: ascending PM id, violation flag by
      // membership in the violated subset.
      auto vit = violated.begin();
      for (std::size_t pm : active) {
        BURSTQ_REQUIRE(pm < seg.n_pms, "slot.obs PM id out of range");
        while (vit != violated.end() && *vit < pm) ++vit;
        const bool hit = vit != violated.end() && *vit == pm;
        seg.tracker.record(PmId{pm}, hit);
        if (seg.slo) seg.slo->record(PmId{pm}, hit);
      }
      if (seg.slo) seg.slo->end_slot();
      ++seg.slots_seen;
    } else if (ev.kind == "window.reset") {
      FlightReplaySegment& seg = current();
      const auto pm = static_cast<std::size_t>(ev.integer("pm"));
      BURSTQ_REQUIRE(pm < seg.n_pms, "window.reset PM id out of range");
      seg.tracker.reset_window(PmId{pm});
      ++seg.window_resets;
    } else if (ev.kind == "migration") {
      FlightReplaySegment& seg = current();
      if (ev.boolean("ok"))
        ++seg.migrations;
      else
        ++seg.failed_migrations;
    }
    // Other kinds (place, mapcal, replan, ...) are not part of CVR replay.
  }
  return segments;
}

namespace {

std::string fmt6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Basename without its last extension, so a JSONL and a BTRC recording
/// of the same run ("run.jsonl" / "run.btrc") label their reports
/// identically.
std::string trace_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || dot == 0) return base;
  return base.substr(0, dot);
}

}  // namespace

std::string explain_slo_breaches(const std::string& path,
                                 const SloExplainOptions& opt) {
  const obs::EventFormat format = obs::sniff_event_format(path);
  if (format == obs::EventFormat::kCsv)
    throw InvalidArgument(
        path + ": CSV event logs are lossy (string-typed) and cannot be "
               "replayed; record JSONL or BTRC instead");

  // Pass 1: the existing flight replay re-derives the SLO audit (and
  // with it the breach episodes) per recorded segment.
  const std::vector<FlightReplaySegment> segments =
      replay_flight_log(path, &opt.slo);

  struct SpanAgg {
    std::uint64_t calls{0};
    std::uint64_t incl_ns{0};
    std::uint64_t excl_ns{0};
  };
  struct EpisodeAgg {
    obs::SloEpisode ep;
    bool have_pointer{false};
    std::uint64_t offset{0};
    std::uint64_t event_index{0};
    std::map<std::string, std::uint64_t> kinds;
    std::map<std::string, SpanAgg> spans;
    /// pm -> (violations, observed) within the window
    std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> pms;
  };
  std::vector<std::vector<EpisodeAgg>> episodes(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (!segments[i].slo) continue;
    for (const obs::SloEpisode& ep : segments[i].slo->episodes()) {
      EpisodeAgg agg;
      agg.ep = ep;
      episodes[i].push_back(std::move(agg));
    }
  }

  // Pass 2: one streaming scan attributes events, spans, and per-PM
  // violations to each episode's slot window.  An event "belongs to"
  // the slot being processed when it was emitted: slot.obs carries its
  // own t; everything else gets the slot after the last slot.obs (the
  // same rule SpanTreeBuilder applies to span begins).
  std::size_t seg = static_cast<std::size_t>(-1);
  std::int64_t cur_slot = -1;
  std::vector<std::size_t> active;  // delta-decoded like replay
  obs::SpanTreeBuilder builder;
  builder.set_hook([&](std::string_view name, std::int64_t slot,
                       std::uint64_t incl_ns, std::uint64_t excl_ns) {
    if (seg >= episodes.size() || slot < 0) return;
    const auto s = static_cast<std::size_t>(slot);
    for (EpisodeAgg& agg : episodes[seg]) {
      if (s < agg.ep.begin_slot || s > agg.ep.end_slot) continue;
      SpanAgg& sa = agg.spans[std::string(name)];
      ++sa.calls;
      sa.incl_ns += incl_ns;
      sa.excl_ns += excl_ns;
    }
  });

  const std::uint64_t total = obs::scan_events(
      path, [&](const obs::RecordedEvent& ev, std::uint64_t offset,
                std::uint64_t index) {
        std::int64_t slot = cur_slot;
        if (ev.kind == "sim.config") {
          seg = seg == static_cast<std::size_t>(-1) ? 0 : seg + 1;
          cur_slot = 0;
          active.clear();
          slot = -1;  // headers belong to no window
        } else if (ev.kind == "slot.obs") {
          slot = ev.integer("t");
          cur_slot = slot + 1;
          if (ev.has("active")) active = parse_id_list(ev.str("active"));
        }
        builder.add(ev);
        if (seg < episodes.size() && slot >= 0 &&
            ev.kind != "span.begin" && ev.kind != "span.end") {
          const auto s = static_cast<std::size_t>(slot);
          for (EpisodeAgg& agg : episodes[seg]) {
            if (s < agg.ep.begin_slot || s > agg.ep.end_slot) continue;
            ++agg.kinds[ev.kind];
            if (ev.kind != "slot.obs") continue;
            if (!agg.have_pointer && s == agg.ep.begin_slot) {
              agg.have_pointer = true;
              agg.offset = offset;
              agg.event_index = index;
            }
            for (std::size_t pm : active) ++agg.pms[pm].second;
            for (std::size_t pm : parse_id_list(ev.str("viol")))
              ++agg.pms[pm].first;
          }
        }
        return true;
      });

  // Deterministic rendering: every list has a total order.
  std::string out;
  out += "slo.explain.schema=burstq.slo.explain/v1\n";
  out += "slo.explain.trace=" + trace_stem(path) + "\n";
  out += "slo.explain.format=" + std::string(obs::format_name(format)) +
         "\n";
  out += "slo.explain.events=" + std::to_string(total) + "\n";
  out += "slo.explain.fast_window=" + std::to_string(opt.slo.fast_window) +
         "\n";
  out += "slo.explain.slow_window=" + std::to_string(opt.slo.slow_window) +
         "\n";
  out += "slo.explain.breach_burn=" + fmt6(opt.slo.breach_burn) + "\n";
  out += "slo.explain.segments=" + std::to_string(segments.size()) + "\n";

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const FlightReplaySegment& s = segments[i];
    const obs::SloReport report =
        s.slo ? s.slo->report() : obs::SloReport{};
    out += "segment=" + std::to_string(i) + " label=" + s.label +
           " rho=" + fmt6(s.rho) + " n_pms=" + std::to_string(s.n_pms) +
           " slots=" + std::to_string(s.slots_seen) +
           " migrations=" + std::to_string(s.migrations) +
           " breaches=" + std::to_string(report.breaches) +
           " verdict=" + report.verdict() + "\n";
    for (std::size_t k = 0; k < episodes[i].size(); ++k) {
      const EpisodeAgg& agg = episodes[i][k];
      const obs::SloEpisode& ep = agg.ep;
      out += "episode=" + std::to_string(k) + " window=" +
             std::to_string(ep.begin_slot) + ".." +
             std::to_string(ep.end_slot) + " slots=" +
             std::to_string(ep.end_slot - ep.begin_slot + 1) +
             " open=" + (ep.open ? "1" : "0") +
             " peak_fast_burn=" + fmt6(ep.peak_fast_burn) +
             " peak_slow_burn=" + fmt6(ep.peak_slow_burn) + "\n";
      if (opt.pointers && agg.have_pointer)
        out += "pointer trace_offset=" + std::to_string(agg.offset) +
               " event_index=" + std::to_string(agg.event_index) +
               " slot=" + std::to_string(ep.begin_slot) + "\n";

      std::vector<std::pair<std::string, std::uint64_t>> kinds(
          agg.kinds.begin(), agg.kinds.end());
      std::sort(kinds.begin(), kinds.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      for (std::size_t j = 0; j < std::min(opt.top, kinds.size()); ++j)
        out += "event kind=" + kinds[j].first +
               " count=" + std::to_string(kinds[j].second) + "\n";

      std::vector<std::pair<std::string, SpanAgg>> spans(
          agg.spans.begin(), agg.spans.end());
      std::sort(spans.begin(), spans.end(),
                [](const auto& a, const auto& b) {
                  if (a.second.incl_ns != b.second.incl_ns)
                    return a.second.incl_ns > b.second.incl_ns;
                  return a.first < b.first;
                });
      for (std::size_t j = 0; j < std::min(opt.top, spans.size()); ++j)
        out += "span name=" + spans[j].first +
               " calls=" + std::to_string(spans[j].second.calls) +
               " incl_ns=" + std::to_string(spans[j].second.incl_ns) +
               " excl_ns=" + std::to_string(spans[j].second.excl_ns) +
               "\n";

      std::vector<std::pair<std::size_t, std::pair<std::uint64_t,
                                                   std::uint64_t>>>
          pms;
      for (const auto& [pm, counts] : agg.pms)
        if (counts.first > 0) pms.push_back({pm, counts});
      std::sort(pms.begin(), pms.end(),
                [](const auto& a, const auto& b) {
                  if (a.second.first != b.second.first)
                    return a.second.first > b.second.first;
                  return a.first < b.first;
                });
      for (std::size_t j = 0; j < std::min(opt.top, pms.size()); ++j)
        out += "pm pm=" + std::to_string(pms[j].first) +
               " violations=" + std::to_string(pms[j].second.first) +
               " observed=" + std::to_string(pms[j].second.second) + "\n";
    }
  }
  return out;
}

std::vector<FlightReplaySegment> replay_flight_log(
    const std::string& path, const obs::SloOptions* slo) {
  obs::EventFormat format = obs::EventFormat::kJsonl;
  auto events = obs::read_events_auto(path, &format);
  // The long-CSV sink is string-typed end to end, so replaying it would
  // silently re-derive CVR from parsed text.  Refuse rather than guess.
  if (format == obs::EventFormat::kCsv)
    throw InvalidArgument(
        path + ": CSV event logs are lossy (string-typed) and cannot be "
               "replayed; record JSONL or BTRC instead");
  return replay_flight_log(events, slo);
}

}  // namespace burstq
