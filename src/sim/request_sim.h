// Request-level performance simulation.
//
// The paper argues that under-provisioning "is prone to cause performance
// degradation" but measures only proxies (CVR, migrations).  This module
// makes the degradation directly observable: each VM is a web server with
// a request backlog; each slot it receives requests (per the Section V-D
// user model) and can serve as many as its *allocated* capacity permits.
// When a PM's aggregate demand exceeds its capacity, local resizing can
// no longer give every VM its demand, and allocations are scaled down
// proportionally — backlogs build and response times grow (this is
// exactly what capacity violation *does* to a web server).
//
//   capability_i(t) = allocation_i(t) * sigma / service_demand  [requests]
//   backlog_i(t+1)  = backlog_i(t) + arrivals_i(t) - served_i(t)
//   latency via Little's law: W = (mean backlog) / (mean throughput)
//
// The simulator runs a fixed placement (no migration) so the comparison
// isolates what the packing alone does to user-visible performance.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "placement/placement.h"
#include "placement/spec.h"
#include "sim/webserver.h"
#include "sim/workload_gen.h"

namespace burstq {

struct RequestSimConfig {
  std::size_t slots{100};
  double sigma_seconds{30.0};
  /// CPU-seconds of work per request when holding one resource unit; the
  /// default makes one resource unit serve ~100 users at think time ~1 s
  /// (matching users_per_unit below), i.e. demand == capacity keeps the
  /// backlog flat.
  double service_demand_seconds{0.01};
  double users_per_unit{100.0};
  bool start_stationary{true};

  void validate() const;
};

/// Per-VM and aggregate performance outcome.
struct RequestSimReport {
  double total_arrivals{0.0};
  double total_served{0.0};
  double final_backlog{0.0};
  double mean_latency_seconds{0.0};  ///< Little's-law aggregate
  double p95_vm_latency_seconds{0.0};  ///< 95th pct of per-VM latencies
  double worst_vm_latency_seconds{0.0};
  std::vector<double> vm_latency_seconds;  ///< per VM
  double mean_utilization{0.0};  ///< served / capability over used PMs
};

/// Runs the request-level simulation of `inst` under a fixed `placement`.
/// Demands follow each VM's ON-OFF chain; arrivals follow the web-server
/// user model sized from (rb, re) like ClusterSimulator's web mode.
RequestSimReport simulate_request_performance(const ProblemInstance& inst,
                                              const Placement& placement,
                                              const RequestSimConfig& config,
                                              Rng rng);

}  // namespace burstq
