// Demand-trace generation for a consolidation instance.
//
// WorkloadEnsemble owns one ON-OFF chain per VM and advances them in lock
// step, exposing per-VM demand W_i(t) (Eq. 3's load terms).  This is the
// driver for the no-migration CVR evaluation (Figure 6): "packing VMs and
// running them simulatively to assess the performance".

#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "markov/onoff.h"
#include "placement/spec.h"

namespace burstq {

/// One step of a piecewise-constant workload timeline: from `slot` on,
/// every chain's switch probabilities are overridden by the components
/// set here (absent components keep each chain's current value, so a
/// phase can raise p_on cluster-wide while leaving spike durations
/// heterogeneous).  This is the simplest correlated-burst model: a
/// common modulator that shifts every tenant at once — exactly what the
/// paper's independent ON-OFF assumption cannot express.
struct WorkloadPhase {
  std::size_t slot{0};
  std::optional<double> p_on;
  std::optional<double> p_off;

  /// Requires at least one component and valid probabilities.
  void validate() const;
};

class WorkloadEnsemble {
 public:
  /// One chain per VM in `inst`.  When `start_stationary`, initial states
  /// are drawn from each chain's stationary law (skips burn-in); otherwise
  /// all VMs start OFF like the paper's Pi0.
  WorkloadEnsemble(const ProblemInstance& inst, Rng rng,
                   bool start_stationary = true);

  /// Advances every chain one slot.
  void step();

  /// Applies a timeline phase to every chain (states are untouched, so
  /// the demand stream stays continuous across the switch).  RNG
  /// consumption is unaffected: step() draws exactly one variate per
  /// chain regardless of parameters.
  void apply_phase(const WorkloadPhase& phase);

  /// Demand of VM i at the current slot.
  [[nodiscard]] Resource demand(std::size_t vm) const;

  /// Current chain state of VM i.
  [[nodiscard]] VmState state(std::size_t vm) const;

  /// Number of VMs currently ON.
  [[nodiscard]] std::size_t on_count() const;

  [[nodiscard]] std::size_t n_vms() const { return chains_.size(); }

  // Durable-snapshot access: the ensemble is fully determined by its RNG
  // stream plus each chain's (possibly phase-overridden) parameters and
  // state, so restore writes those back directly rather than replaying
  // the phase history.
  [[nodiscard]] const Rng& rng() const { return rng_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const OnOffChain& chain(std::size_t vm) const {
    return chains_[vm];
  }
  void restore_chain(std::size_t vm, const OnOffParams& params,
                     VmState state) {
    chains_[vm].set_params(params);
    chains_[vm].reset(state);
  }

 private:
  const ProblemInstance* inst_;
  Rng rng_;
  std::vector<OnOffChain> chains_;
};

/// A recorded per-VM demand trace: trace[t][i] = W_i(t).  Used by tests
/// that need to replay identical workloads against different placements.
using DemandTrace = std::vector<std::vector<Resource>>;

/// Records `slots` steps of demands for all VMs of `inst`.
DemandTrace record_demand_trace(const ProblemInstance& inst,
                                std::size_t slots, Rng rng,
                                bool start_stationary = true);

}  // namespace burstq
