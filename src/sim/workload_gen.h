// Demand-trace generation for a consolidation instance.
//
// WorkloadEnsemble owns one ON-OFF chain per VM and advances them in lock
// step, exposing per-VM demand W_i(t) (Eq. 3's load terms).  This is the
// driver for the no-migration CVR evaluation (Figure 6): "packing VMs and
// running them simulatively to assess the performance".

#pragma once

#include <vector>

#include "common/rng.h"
#include "markov/onoff.h"
#include "placement/spec.h"

namespace burstq {

class WorkloadEnsemble {
 public:
  /// One chain per VM in `inst`.  When `start_stationary`, initial states
  /// are drawn from each chain's stationary law (skips burn-in); otherwise
  /// all VMs start OFF like the paper's Pi0.
  WorkloadEnsemble(const ProblemInstance& inst, Rng rng,
                   bool start_stationary = true);

  /// Advances every chain one slot.
  void step();

  /// Demand of VM i at the current slot.
  [[nodiscard]] Resource demand(std::size_t vm) const;

  /// Current chain state of VM i.
  [[nodiscard]] VmState state(std::size_t vm) const;

  /// Number of VMs currently ON.
  [[nodiscard]] std::size_t on_count() const;

  [[nodiscard]] std::size_t n_vms() const { return chains_.size(); }

 private:
  const ProblemInstance* inst_;
  Rng rng_;
  std::vector<OnOffChain> chains_;
};

/// A recorded per-VM demand trace: trace[t][i] = W_i(t).  Used by tests
/// that need to replay identical workloads against different placements.
using DemandTrace = std::vector<std::vector<Resource>>;

/// Records `slots` steps of demands for all VMs of `inst`.
DemandTrace record_demand_trace(const ProblemInstance& inst,
                                std::size_t slots, Rng rng,
                                bool start_stationary = true);

}  // namespace burstq
