// Energy accounting.
//
// The paper equates "number of PMs used at the end of the evaluation
// period" with overall energy consumption (web servers run indefinitely,
// so the steady-state PM count dominates the integral).  We additionally
// integrate a standard linear server power model so the energy claim can
// be reported in physical units.

#pragma once

#include <cstddef>

#include "common/error.h"

namespace burstq {

/// Linear power model: P(u) = idle + (busy - idle) * u for utilization
/// u in [0, 1]; an unused (off) PM draws nothing.
struct PowerModel {
  double idle_watts{150.0};
  double busy_watts{250.0};

  void validate() const {
    BURSTQ_REQUIRE(idle_watts >= 0.0, "idle power must be non-negative");
    BURSTQ_REQUIRE(busy_watts >= idle_watts,
                   "busy power must be >= idle power");
  }

  /// Instantaneous draw at utilization u (clamped to [0, 1]).
  [[nodiscard]] double watts(double utilization) const {
    const double u =
        utilization < 0.0 ? 0.0 : (utilization > 1.0 ? 1.0 : utilization);
    return idle_watts + (busy_watts - idle_watts) * u;
  }
};

/// Accumulates energy over slots.
class EnergyMeter {
 public:
  EnergyMeter(PowerModel model, double slot_seconds)
      : model_(model), slot_seconds_(slot_seconds) {
    model_.validate();
    BURSTQ_REQUIRE(slot_seconds > 0.0, "slot length must be positive");
  }

  /// Adds one active PM-slot at the given utilization.
  void add_pm_slot(double utilization) {
    joules_ += model_.watts(utilization) * slot_seconds_;
  }

  [[nodiscard]] double joules() const { return joules_; }
  [[nodiscard]] double watt_hours() const { return joules_ / 3600.0; }

  /// Restores the accumulator from a durable snapshot (exact bit
  /// pattern, so resumed accounting matches the uninterrupted run).
  void restore_joules(double joules) { joules_ = joules; }

 private:
  PowerModel model_;
  double slot_seconds_;
  double joules_{0.0};
};

}  // namespace burstq
