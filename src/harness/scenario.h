// Declarative scenario files — the input half of the invariants harness
// ("physics CI").
//
// A scenario file describes one deterministic cluster experiment:
// topology (fleet size, spike pattern, capacities), a workload timeline
// (piecewise-constant ON-OFF phases), a fault script (the FaultPlan
// grammar from fault/plan.h, one event per `fault` statement), and the
// invariant thresholds the run must satisfy.  The runner (harness/
// runner.h) drives ClusterSimulator from a Scenario and emits one JSON
// verdict per invariant.
//
// Grammar — line-oriented keyword statements, `#` starts a comment:
//
//   scenario NAME                      required, first statement
//   seed N                             workload/instance RNG seed
//   slots N                            simulation horizon
//   rho X                              CVR budget (Eq. 16/17)
//   max-vms-per-pm N                   the paper's per-PM cap d
//   strategy queue|rp|rb|rbex|sbp      initial placement strategy
//   topology vms=N pms=M pattern=equal|small|large
//   capacity LO HI                     PM capacity uniform range
//   workload p_on=X p_off=Y            baseline ON-OFF parameters
//   phase at=T [p_on=X] [p_off=Y]      timeline override from slot T on
//   fault ITEM                         one --fault-plan item, e.g.
//                                      crash@10:pm=2 (see fault/plan.h)
//   fault-markov [p_crash=X] [p_recover=Y] [p_mig_fail=Z] [p_kill=K]
//                [seed=N]
//   migration [window=N] [cost=N]      trigger window / copy cost slots
//   slo [fast=N] [slow=N]              SLO burn-rate windows
//   durability [every=N] [fsync=on|off]  snapshot cadence for crash
//                                      recovery (durable/durable.h); the
//                                      runner auto-enables it (every=25)
//                                      whenever the fault plan has kills
//   invariant NAME <=|== VALUE         threshold (harness/invariants.h)
//
// Every parse error is positioned: the exception message starts with
// `path:line:col:` and names the offending token, so a broken scenario
// fails CI with an actionable pointer instead of a stack trace.
// Rejected loudly: unknown keywords, unknown key=value keys, duplicate
// singleton statements, trailing garbage after a complete statement,
// phases/faults at or beyond the horizon, and non-ascending phases.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "fault/plan.h"
#include "harness/invariants.h"
#include "sim/workload_gen.h"

namespace burstq::harness {

/// One `invariant` statement, with its source line for error reporting.
struct ScenarioInvariant {
  InvariantKind kind{InvariantKind::kClusterCvr};
  InvariantOp op{InvariantOp::kLe};
  double threshold{0.0};
  std::size_t line{0};  ///< 1-based source line of the statement
};

/// A parsed scenario, ready for harness::run_scenario.
struct Scenario {
  std::string name;
  std::string source;  ///< path (or label) the scenario was parsed from
  std::uint64_t seed{42};
  std::size_t slots{100};
  double rho{0.01};
  std::size_t max_vms_per_pm{16};
  std::string strategy{"queue"};
  std::size_t n_vms{20};
  std::size_t n_pms{10};
  SpikePattern pattern{SpikePattern::kEqual};
  double capacity_lo{80.0};
  double capacity_hi{100.0};
  OnOffParams onoff{0.01, 0.09};  ///< the paper's default burstiness
  std::vector<WorkloadPhase> phases;  ///< ascending, all < slots
  fault::FaultPlan faults;  ///< empty scripted list + zero Markov = none
  std::size_t migration_window{10};
  std::size_t migration_cost{1};
  std::size_t slo_fast{10};
  std::size_t slo_slow{120};
  /// From the `durability` statement; the runner also turns this on
  /// implicitly (with the defaults below) when `faults.has_kills()` — a
  /// kill-point without a restore path would just lose the run.
  bool durability{false};
  std::size_t durability_every{25};
  bool durability_fsync{false};
  std::vector<ScenarioInvariant> invariants;

  /// Cross-statement checks the parser cannot do line-locally (ranges,
  /// probability validity, at least one invariant).  parse_scenario_*
  /// already calls this; exposed for programmatically built scenarios.
  void validate() const;
};

/// Parses a scenario from text.  `source` labels error messages (use the
/// file path, or something like "<inline>" for tests).  Throws
/// InvalidArgument with a `source:line:col:` prefix on any error.
Scenario parse_scenario_text(std::string_view text, std::string source);

/// Reads and parses a scenario file.  Throws InvalidArgument when the
/// file cannot be opened, and like parse_scenario_text on bad content.
Scenario parse_scenario_file(const std::string& path);

}  // namespace burstq::harness
