// The invariant catalog of the scenario harness: the physics the
// consolidation stack must not violate, each checkable against one run.
//
// Every invariant compares a worst-case observed value against a
// scenario-supplied threshold.  The comparison is inclusive: an
// exactly-met threshold passes (the budget rho *is* the contract), one
// epsilon over fails.  Evaluation consumes the per-slot series the
// runner collects through SimConfig::on_slot plus the final SimReport,
// so verdicts never re-derive state from the trace — the trace pointer
// in each result is for humans (and `burstq_cli trace head --at-offset`),
// not for the verdict itself.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace burstq::harness {

enum class InvariantKind {
  kClusterCvr,         ///< cumulative cluster-wide CVR (Eq. 4)
  kPmCvr,              ///< worst per-PM cumulative CVR
  kLostVms,            ///< FaultReport.lost_vms (conservation; == 0)
  kMigrationsPerSlot,  ///< successful migrations in any single slot
  kVmFlaps,            ///< migrations of the most-moved VM (flapping)
  kSloFastBurn,        ///< fast-window SLO burn rate (cvr / rho)
  kSloSlowBurn,        ///< slow-window SLO burn rate
  kRecoveryReplaySlots,  ///< worst WAL replay length over kill-restores
};

enum class InvariantOp { kLe, kEq };

/// "cluster_cvr", "pm_cvr", ... — the scenario-file spelling.
std::string_view invariant_name(InvariantKind kind);

/// "<=" | "==".
std::string_view invariant_op_name(InvariantOp op);

/// Reverse lookups; nullopt on unknown spellings.
std::optional<InvariantKind> invariant_from_name(std::string_view name);
std::optional<InvariantOp> invariant_op_from_name(std::string_view name);

/// One catalog row for `harness list --catalog` and docs.
struct InvariantInfo {
  InvariantKind kind;
  std::string_view name;
  std::string_view description;
};

/// All known invariants, in a stable presentation order.
const std::vector<InvariantInfo>& invariant_catalog();

/// Byte-offset pointer into the flight-recorder trace: where to start
/// reading to see the violation unfold.  For BTRC traces `offset` is the
/// boundary of the block containing the event; for JSONL it is the exact
/// start of the event's line.  Either way
/// `burstq_cli trace head --log FILE --at-offset OFFSET` resolves it.
struct TracePointer {
  std::uint64_t offset{0};
  std::uint64_t event_index{0};  ///< 0-based index in the event stream
  std::size_t slot{0};           ///< the slot.obs `t` the pointer lands on
};

/// Verdict for one invariant over one run.
struct InvariantResult {
  InvariantKind kind{InvariantKind::kClusterCvr};
  InvariantOp op{InvariantOp::kLe};
  double threshold{0.0};
  bool pass{false};
  /// Worst-case observed value: the peak single-slot value for per-slot
  /// quantities (migrations, burn rates, flaps), the FINAL cumulative
  /// value for the Eq. 4 ratios (cluster_cvr, pm_cvr) — a running ratio
  /// dilutes, so its final value is the honest worst case.
  double worst{0.0};
  std::size_t worst_slot{0};   ///< slot where `worst` was (first) reached
  /// Violating time window [begin, end] in slots — the first through the
  /// last slot whose observed value breached the threshold.  Absent when
  /// the invariant passed or the series never crossed (e.g. an
  /// end-of-run-only quantity like lost_vms on a passing run).
  std::optional<std::pair<std::size_t, std::size_t>> window;
  /// Pointer to the flight-recorder event at the window's first slot.
  /// Absent when there is no window or the trace carries no slot.obs
  /// events (recording below detail level).
  std::optional<TracePointer> trace;
};

/// The per-slot series the runner collects while the simulator runs.
/// All vectors grow one entry per completed slot; a run aborted at slot
/// t leaves t entries, and evaluation degrades gracefully to the prefix.
struct SlotSeries {
  std::vector<double> cluster_cvr;    ///< running cumulative cluster CVR
  std::vector<double> worst_pm_cvr;   ///< worst per-PM cumulative CVR, per slot
  std::vector<std::size_t> migrations;  ///< successful migrations per slot
  std::vector<double> fast_burn;      ///< SLO fast-window burn per slot
  std::vector<double> slow_burn;      ///< SLO slow-window burn per slot
  /// Running max per-VM migration count per slot (flap bookkeeping).
  std::vector<std::size_t> max_vm_moves;
  std::size_t lost_vms{0};  ///< from the final FaultReport (0 until then)
  /// Largest WAL replay (in slots) any single kill-restore performed; 0
  /// on runs with no kills.  Bounds how far the newest snapshot lagged
  /// behind the kill point — it must stay under the snapshot cadence.
  std::size_t recovery_replay_slots{0};
};

/// Evaluates one invariant against the collected series.  Pure: same
/// series, same verdict.  `threshold` comparisons are inclusive.
InvariantResult evaluate_invariant(InvariantKind kind, InvariantOp op,
                                   double threshold,
                                   const SlotSeries& series);

}  // namespace burstq::harness
