#include "harness/report.h"

#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "obs/event_log.h"  // json_escape

namespace burstq::harness {

bool ScenarioReport::all_pass() const {
  if (status != "pass") return false;
  for (const InvariantResult& inv : invariants)
    if (!inv.pass) return false;
  return true;
}

// ---- writing ---------------------------------------------------------

namespace {

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  out += obs::json_escape(s);
  out += '"';
}

void append_number(std::string& out, double v) { out += csv_format(v); }

}  // namespace

std::string render_report_json(const ScenarioReport& report) {
  std::string out;
  out += "{\n  \"schema\": ";
  append_quoted(out, kReportSchema);
  out += ",\n  \"scenario\": ";
  append_quoted(out, report.scenario);
  out += ",\n  \"seed\": " + std::to_string(report.seed);
  out += ",\n  \"slots\": " + std::to_string(report.slots);
  out +=
      ",\n  \"slots_completed\": " + std::to_string(report.slots_completed);
  out += ",\n  \"status\": ";
  append_quoted(out, report.status);
  if (report.status == "abort") {
    out += ",\n  \"abort_reason\": ";
    append_quoted(out, report.abort_reason);
  }
  out += ",\n  \"trace\": {\"file\": ";
  append_quoted(out, report.trace_file);
  out += ", \"format\": ";
  append_quoted(out, report.trace_format);
  out += ", \"events\": " + std::to_string(report.trace_events) + "}";
  out += ",\n  \"invariants\": [";
  for (std::size_t i = 0; i < report.invariants.size(); ++i) {
    const InvariantResult& inv = report.invariants[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_quoted(out, invariant_name(inv.kind));
    out += ", \"op\": ";
    append_quoted(out, invariant_op_name(inv.op));
    out += ", \"threshold\": ";
    append_number(out, inv.threshold);
    out += ", \"pass\": ";
    out += inv.pass ? "true" : "false";
    out += ", \"worst\": ";
    append_number(out, inv.worst);
    out += ", \"worst_slot\": " + std::to_string(inv.worst_slot);
    out += ", \"window\": ";
    if (inv.window) {
      out += "{\"begin\": " + std::to_string(inv.window->first) +
             ", \"end\": " + std::to_string(inv.window->second) + "}";
    } else {
      out += "null";
    }
    out += ", \"trace_pointer\": ";
    if (inv.trace) {
      out += "{\"offset\": " + std::to_string(inv.trace->offset) +
             ", \"event_index\": " + std::to_string(inv.trace->event_index) +
             ", \"slot\": " + std::to_string(inv.trace->slot) + "}";
    } else {
      out += "null";
    }
    out += "}";
  }
  out += report.invariants.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void write_report(const ScenarioReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc |
                              std::ios::binary);
  BURSTQ_REQUIRE(out.is_open(), "cannot open report file: " + path);
  out << render_report_json(report);
  BURSTQ_REQUIRE(out.good(), "failed writing report file: " + path);
}

// ---- reading ---------------------------------------------------------
//
// A minimal recursive-descent JSON parser, just enough for the report
// schema (objects, arrays, strings, doubles, bools, null).  Deliberately
// local: burstq has no general JSON dependency and the flat-event parser
// in obs/jsonl.h cannot read nested documents.

namespace {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Tag { kNull, kBool, kNumber, kString, kObject, kArray };
  Tag tag{Tag::kNull};
  bool b{false};
  double num{0.0};
  std::string str;
  std::shared_ptr<JsonObject> object;
  std::shared_ptr<JsonArray> array;
};

class JsonParser {
 public:
  JsonParser(std::string_view text, const std::string& source)
      : text_(text), source_(source) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument(source_ + ": malformed report JSON at byte " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The writer only escapes control characters; encode the code
          // point as UTF-8 (BMP only — surrogate pairs never appear in
          // harness output and are rejected as unpaired).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) fail("bad number '" + token + "'");
      return v;
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.tag = JsonValue::Tag::kObject;
      v.object = std::make_shared<JsonObject>();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        (*v.object)[std::move(key)] = parse_value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.tag = JsonValue::Tag::kArray;
      v.array = std::make_shared<JsonArray>();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array->push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.tag = JsonValue::Tag::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.tag = JsonValue::Tag::kBool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      v.tag = JsonValue::Tag::kBool;
      v.b = false;
      return v;
    }
    if (consume_literal("null")) return v;
    v.tag = JsonValue::Tag::kNumber;
    v.num = parse_number();
    return v;
  }

  std::string_view text_;
  std::string source_;
  std::size_t pos_{0};
};

const JsonValue& require_key(const JsonValue& obj, std::string_view key,
                             const std::string& source) {
  BURSTQ_REQUIRE(obj.tag == JsonValue::Tag::kObject && obj.object,
                 source + ": report JSON: expected an object around '" +
                     std::string(key) + "'");
  const auto it = obj.object->find(key);
  BURSTQ_REQUIRE(it != obj.object->end(),
                 source + ": report JSON is missing '" + std::string(key) +
                     "'");
  return it->second;
}

std::string get_string(const JsonValue& obj, std::string_view key,
                       const std::string& source) {
  const JsonValue& v = require_key(obj, key, source);
  BURSTQ_REQUIRE(v.tag == JsonValue::Tag::kString,
                 source + ": report field '" + std::string(key) +
                     "' is not a string");
  return v.str;
}

double get_number(const JsonValue& obj, std::string_view key,
                  const std::string& source) {
  const JsonValue& v = require_key(obj, key, source);
  BURSTQ_REQUIRE(v.tag == JsonValue::Tag::kNumber,
                 source + ": report field '" + std::string(key) +
                     "' is not a number");
  return v.num;
}

std::uint64_t get_count(const JsonValue& obj, std::string_view key,
                        const std::string& source) {
  const double v = get_number(obj, key, source);
  BURSTQ_REQUIRE(v >= 0.0 && v == std::floor(v),
                 source + ": report field '" + std::string(key) +
                     "' is not a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

ScenarioReport parse_report_json(std::string_view text,
                                 const std::string& source) {
  JsonParser parser(text, source);
  const JsonValue doc = parser.parse_document();
  BURSTQ_REQUIRE(doc.tag == JsonValue::Tag::kObject,
                 source + ": report JSON is not an object");
  const std::string schema = get_string(doc, "schema", source);
  BURSTQ_REQUIRE(schema == kReportSchema,
                 source + ": unknown report schema '" + schema +
                     "' (expected " + std::string(kReportSchema) + ")");

  ScenarioReport report;
  report.scenario = get_string(doc, "scenario", source);
  report.seed = get_count(doc, "seed", source);
  report.slots = static_cast<std::size_t>(get_count(doc, "slots", source));
  report.slots_completed =
      static_cast<std::size_t>(get_count(doc, "slots_completed", source));
  report.status = get_string(doc, "status", source);
  BURSTQ_REQUIRE(report.status == "pass" || report.status == "fail" ||
                     report.status == "abort",
                 source + ": unknown report status '" + report.status + "'");
  if (report.status == "abort")
    report.abort_reason = get_string(doc, "abort_reason", source);

  const JsonValue& trace = require_key(doc, "trace", source);
  report.trace_file = get_string(trace, "file", source);
  report.trace_format = get_string(trace, "format", source);
  report.trace_events = get_count(trace, "events", source);

  const JsonValue& invs = require_key(doc, "invariants", source);
  BURSTQ_REQUIRE(invs.tag == JsonValue::Tag::kArray && invs.array,
                 source + ": report field 'invariants' is not an array");
  for (const JsonValue& entry : *invs.array) {
    InvariantResult inv;
    const std::string name = get_string(entry, "name", source);
    const auto kind = invariant_from_name(name);
    BURSTQ_REQUIRE(kind.has_value(),
                   source + ": unknown invariant '" + name + "' in report");
    inv.kind = *kind;
    const std::string op = get_string(entry, "op", source);
    const auto parsed_op = invariant_op_from_name(op);
    BURSTQ_REQUIRE(parsed_op.has_value(),
                   source + ": unknown invariant op '" + op + "' in report");
    inv.op = *parsed_op;
    inv.threshold = get_number(entry, "threshold", source);
    const JsonValue& pass = require_key(entry, "pass", source);
    BURSTQ_REQUIRE(pass.tag == JsonValue::Tag::kBool,
                   source + ": report field 'pass' is not a boolean");
    inv.pass = pass.b;
    inv.worst = get_number(entry, "worst", source);
    inv.worst_slot =
        static_cast<std::size_t>(get_count(entry, "worst_slot", source));
    const JsonValue& window = require_key(entry, "window", source);
    if (window.tag != JsonValue::Tag::kNull)
      inv.window = {
          static_cast<std::size_t>(get_count(window, "begin", source)),
          static_cast<std::size_t>(get_count(window, "end", source))};
    const JsonValue& pointer = require_key(entry, "trace_pointer", source);
    if (pointer.tag != JsonValue::Tag::kNull) {
      TracePointer tp;
      tp.offset = get_count(pointer, "offset", source);
      tp.event_index = get_count(pointer, "event_index", source);
      tp.slot =
          static_cast<std::size_t>(get_count(pointer, "slot", source));
      inv.trace = tp;
    }
    report.invariants.push_back(inv);
  }
  return report;
}

ScenarioReport load_report(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in.is_open(), "cannot open report file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_report_json(buf.str(), path);
}

}  // namespace burstq::harness
