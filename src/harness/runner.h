// The harness runner: drives ClusterSimulator from a parsed Scenario and
// emits one JSON verdict per invariant (harness/report.h), plus the
// flight-recorder trace the verdicts point into.
//
// Determinism contract: a scenario runs bit-identically from its seed —
// instance generation, workload, faults, and the trace and report bytes.
// Two same-seed runs in different output directories produce
// byte-identical reports (traces are referenced by basename).
//
// Abort safety: when the run dies mid-flight (a BURSTQ_REQUIRE tripping
// inside the simulator, a placement that cannot complete), the runner
// catches the exception, CLOSES the event log so the partial trace is
// flushed and finalized (BTRC gets its last block; JSONL its last
// lines), evaluates the invariants over the slots that did complete, and
// writes a status="abort" report whose trace pointers still resolve.
// A crash must never leave a truncated trace and no report.

#pragma once

#include <string>

#include "harness/report.h"
#include "harness/scenario.h"
#include "obs/event_log.h"

namespace burstq::harness {

struct HarnessOptions {
  std::string out_dir{"."};  ///< reports and traces land here
  obs::EventFormat trace_format{obs::EventFormat::kJsonl};
  bool compress{false};  ///< LZ-compress BTRC blocks (kBinary only)
};

struct RunSummary {
  ScenarioReport report;
  std::string report_path;
  std::string trace_path;
};

/// Runs one scenario end to end: places the fleet, simulates, evaluates
/// every declared invariant, scans the finalized trace for violation
/// pointers, and writes `<out_dir>/<name>.report.json` next to
/// `<out_dir>/<name>.trace.<fmt>`.
///
/// Owns the global event log for the duration of the call (it reopens
/// obs::events() onto the scenario's trace file at detail level and
/// closes it before returning — including on abort).  Does not throw on
/// simulation aborts (they become status="abort" reports); does throw
/// InvalidArgument when the output directory is unwritable.
RunSummary run_scenario(const Scenario& scenario,
                        const HarnessOptions& options);

}  // namespace burstq::harness
