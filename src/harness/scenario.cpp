#include "harness/scenario.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.h"

namespace burstq::harness {

namespace {

/// One whitespace-separated token with its 1-based source column.
struct Token {
  std::string_view text;
  std::size_t col{0};
};

/// Parser state shared by the statement handlers: the scenario being
/// built, positions for error messages, and first-seen lines so a
/// duplicated singleton statement names where it was set first.
struct Parser {
  Scenario sc;
  std::string source;
  std::size_t line{0};

  // first-seen source line per singleton keyword; 0 = not seen yet
  std::size_t seen_scenario{0}, seen_seed{0}, seen_slots{0}, seen_rho{0},
      seen_d{0}, seen_strategy{0}, seen_topology{0}, seen_capacity{0},
      seen_workload{0}, seen_fault_markov{0}, seen_migration{0},
      seen_slo{0}, seen_durability{0};

  // source lines of order-sensitive statements, validated post-parse
  std::vector<std::size_t> phase_lines;
  std::vector<std::size_t> fault_lines;
  std::vector<std::size_t> invariant_lines;

  [[noreturn]] void fail(std::size_t col, const std::string& what) const {
    throw InvalidArgument(source + ":" + std::to_string(line) + ":" +
                          std::to_string(col) + ": " + what);
  }
  [[noreturn]] void fail_at(std::size_t at_line, std::size_t col,
                            const std::string& what) const {
    throw InvalidArgument(source + ":" + std::to_string(at_line) + ":" +
                          std::to_string(col) + ": " + what);
  }
};


/// Builds "head'quoted'tail" without the const-char* + temporary-string
/// concatenation GCC 12 flags with a spurious -Wrestrict.
std::string msg(std::string_view head, std::string_view quoted,
                std::string_view tail) {
  std::string out(head);
  out += '\'';
  out += quoted;
  out += '\'';
  out += tail;
  return out;
}

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ' || text[i] == '\t') {
      ++i;
      continue;
    }
    if (text[i] == '#') break;  // comment runs to end of line
    const std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' &&
           text[i] != '#')
      ++i;
    out.push_back({text.substr(start, i - start), start + 1});
  }
  return out;
}

double parse_number(const Parser& p, const Token& tok,
                    std::string_view what) {
  double value = 0.0;
  const char* begin = tok.text.data();
  const char* end = begin + tok.text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    p.fail(tok.col, msg("", tok.text, " is not a valid ") +
                        std::string(what));
  return value;
}

std::size_t parse_count(const Parser& p, const Token& tok,
                        std::string_view what) {
  std::size_t value = 0;
  const char* begin = tok.text.data();
  const char* end = begin + tok.text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    p.fail(tok.col, msg("", tok.text, " is not a valid ") +
                        std::string(what) + " (non-negative integer)");
  return value;
}

/// Splits `key=value`; errors name the token, not just the line.
std::pair<std::string_view, Token> split_kv(const Parser& p,
                                            const Token& tok) {
  const std::size_t eq = tok.text.find('=');
  if (eq == std::string_view::npos || eq == 0 ||
      eq + 1 == tok.text.size())
    p.fail(tok.col, msg("expected key=value, got ", tok.text, ""));
  return {tok.text.substr(0, eq),
          Token{tok.text.substr(eq + 1), tok.col + eq + 1}};
}

void require_seen(Parser& p, std::size_t& seen, const Token& keyword) {
  if (seen != 0)
    p.fail(keyword.col, msg("duplicate ", keyword.text,
                            " (first set at line ") +
                            std::to_string(seen) + ")");
  seen = p.line;
}

void no_trailing(const Parser& p, const std::vector<Token>& toks,
                 std::size_t used) {
  if (toks.size() > used)
    p.fail(toks[used].col, msg("unexpected trailing token ",
                               toks[used].text,
                               " after a complete statement"));
}

/// `value` in statements that take exactly one operand.
const Token& sole_operand(const Parser& p, const std::vector<Token>& toks) {
  if (toks.size() < 2)
    p.fail(toks[0].col + toks[0].text.size(),
           msg("", toks[0].text, " needs a value"));
  no_trailing(p, toks, 2);
  return toks[1];
}

void handle_topology(Parser& p, const std::vector<Token>& toks) {
  require_seen(p, p.seen_topology, toks[0]);
  bool got_vms = false;
  bool got_pms = false;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto [key, value] = split_kv(p, toks[i]);
    if (key == "vms") {
      p.sc.n_vms = parse_count(p, value, "vms count");
      got_vms = true;
    } else if (key == "pms") {
      p.sc.n_pms = parse_count(p, value, "pms count");
      got_pms = true;
    } else if (key == "pattern") {
      if (value.text == "equal") {
        p.sc.pattern = SpikePattern::kEqual;
      } else if (value.text == "small") {
        p.sc.pattern = SpikePattern::kSmallSpike;
      } else if (value.text == "large") {
        p.sc.pattern = SpikePattern::kLargeSpike;
      } else {
        p.fail(value.col, msg("unknown pattern ", value.text,
                              " (equal | small | large)"));
      }
    } else {
      p.fail(toks[i].col, msg("unknown topology key ", key,
                              " (vms | pms | pattern)"));
    }
  }
  if (!got_vms || !got_pms)
    p.fail(toks[0].col, "topology needs both vms= and pms=");
}

void handle_phase(Parser& p, const std::vector<Token>& toks) {
  WorkloadPhase phase;
  bool got_at = false;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto [key, value] = split_kv(p, toks[i]);
    if (key == "at") {
      phase.slot = parse_count(p, value, "phase slot");
      got_at = true;
    } else if (key == "p_on") {
      phase.p_on = parse_number(p, value, "probability");
    } else if (key == "p_off") {
      phase.p_off = parse_number(p, value, "probability");
    } else {
      p.fail(toks[i].col, msg("unknown phase key ", key,
                              " (at | p_on | p_off)"));
    }
  }
  if (!got_at) p.fail(toks[0].col, "phase needs at=<slot>");
  if (!phase.p_on && !phase.p_off)
    p.fail(toks[0].col, "phase must override p_on, p_off, or both");
  p.sc.phases.push_back(phase);
  p.phase_lines.push_back(p.line);
}

void handle_fault_markov(Parser& p, const std::vector<Token>& toks) {
  require_seen(p, p.seen_fault_markov, toks[0]);
  if (toks.size() < 2)
    p.fail(toks[0].col, "fault-markov needs at least one key=value");
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto [key, value] = split_kv(p, toks[i]);
    if (key == "p_crash") {
      p.sc.faults.markov.p_crash = parse_number(p, value, "probability");
    } else if (key == "p_recover") {
      p.sc.faults.markov.p_recover = parse_number(p, value, "probability");
    } else if (key == "p_mig_fail") {
      p.sc.faults.markov.p_mig_fail = parse_number(p, value, "probability");
    } else if (key == "p_kill") {
      p.sc.faults.markov.p_kill = parse_number(p, value, "probability");
    } else if (key == "seed") {
      p.sc.faults.seed =
          static_cast<std::uint64_t>(parse_count(p, value, "seed"));
    } else {
      p.fail(toks[i].col,
             msg("unknown fault-markov key ", key,
                 " (p_crash | p_recover | p_mig_fail | p_kill | seed)"));
    }
  }
}

void handle_invariant(Parser& p, const std::vector<Token>& toks) {
  if (toks.size() < 4)
    p.fail(toks[0].col + toks[0].text.size(),
           "invariant needs NAME <=|== VALUE");
  no_trailing(p, toks, 4);
  ScenarioInvariant inv;
  const auto kind = invariant_from_name(toks[1].text);
  if (!kind) {
    std::string known;
    for (const InvariantInfo& info : invariant_catalog()) {
      if (!known.empty()) known += " | ";
      known += info.name;
    }
    p.fail(toks[1].col, msg("unknown invariant ", toks[1].text,
                            " (") + known + ")");
  }
  inv.kind = *kind;
  const auto op = invariant_op_from_name(toks[2].text);
  if (!op)
    p.fail(toks[2].col, msg("unknown comparison ", toks[2].text,
                            " (<= | ==)"));
  inv.op = *op;
  inv.threshold = parse_number(p, toks[3], "threshold");
  inv.line = p.line;
  for (std::size_t i = 0; i < p.sc.invariants.size(); ++i)
    if (p.sc.invariants[i].kind == inv.kind)
      p.fail(toks[1].col, msg("duplicate invariant ", toks[1].text,
                              " (first set at line ") +
                              std::to_string(p.sc.invariants[i].line) + ")");
  p.sc.invariants.push_back(inv);
  p.invariant_lines.push_back(p.line);
}

void handle_statement(Parser& p, const std::vector<Token>& toks) {
  const Token& kw = toks[0];
  if (kw.text == "scenario") {
    require_seen(p, p.seen_scenario, kw);
    const Token& name = sole_operand(p, toks);
    p.sc.name = std::string(name.text);
  } else if (kw.text == "seed") {
    require_seen(p, p.seen_seed, kw);
    p.sc.seed = static_cast<std::uint64_t>(
        parse_count(p, sole_operand(p, toks), "seed"));
  } else if (kw.text == "slots") {
    require_seen(p, p.seen_slots, kw);
    p.sc.slots = parse_count(p, sole_operand(p, toks), "slot count");
  } else if (kw.text == "rho") {
    require_seen(p, p.seen_rho, kw);
    p.sc.rho = parse_number(p, sole_operand(p, toks), "rho");
  } else if (kw.text == "max-vms-per-pm") {
    require_seen(p, p.seen_d, kw);
    p.sc.max_vms_per_pm =
        parse_count(p, sole_operand(p, toks), "max-vms-per-pm");
  } else if (kw.text == "strategy") {
    require_seen(p, p.seen_strategy, kw);
    const Token& value = sole_operand(p, toks);
    if (value.text != "queue" && value.text != "rp" && value.text != "rb" &&
        value.text != "rbex" && value.text != "sbp")
      p.fail(value.col, msg("unknown strategy ", value.text,
                            " (queue | rp | rb | rbex | sbp)"));
    p.sc.strategy = std::string(value.text);
  } else if (kw.text == "topology") {
    handle_topology(p, toks);
  } else if (kw.text == "capacity") {
    require_seen(p, p.seen_capacity, kw);
    if (toks.size() < 3)
      p.fail(kw.col + kw.text.size(), "capacity needs LO HI");
    no_trailing(p, toks, 3);
    p.sc.capacity_lo = parse_number(p, toks[1], "capacity");
    p.sc.capacity_hi = parse_number(p, toks[2], "capacity");
  } else if (kw.text == "workload") {
    require_seen(p, p.seen_workload, kw);
    if (toks.size() < 2)
      p.fail(kw.col + kw.text.size(),
             "workload needs p_on= and/or p_off=");
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const auto [key, value] = split_kv(p, toks[i]);
      if (key == "p_on") {
        p.sc.onoff.p_on = parse_number(p, value, "probability");
      } else if (key == "p_off") {
        p.sc.onoff.p_off = parse_number(p, value, "probability");
      } else {
        p.fail(toks[i].col, msg("unknown workload key ", key,
                                " (p_on | p_off)"));
      }
    }
  } else if (kw.text == "phase") {
    handle_phase(p, toks);
  } else if (kw.text == "fault") {
    const Token& item = sole_operand(p, toks);
    // Reuse the --fault-plan item grammar; re-anchor its error to the
    // token position so the message stays file:line:col-actionable.
    try {
      fault::FaultPlan one = fault::parse_fault_plan(item.text);
      p.sc.faults.scripted.push_back(one.scripted.front());
    } catch (const InvalidArgument& e) {
      p.fail(item.col, e.what());
    }
    p.fault_lines.push_back(p.line);
  } else if (kw.text == "fault-markov") {
    handle_fault_markov(p, toks);
  } else if (kw.text == "migration") {
    require_seen(p, p.seen_migration, kw);
    if (toks.size() < 2)
      p.fail(kw.col + kw.text.size(),
             "migration needs window= and/or cost=");
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const auto [key, value] = split_kv(p, toks[i]);
      if (key == "window") {
        p.sc.migration_window = parse_count(p, value, "window");
      } else if (key == "cost") {
        p.sc.migration_cost = parse_count(p, value, "cost");
      } else {
        p.fail(toks[i].col, msg("unknown migration key ", key,
                                " (window | cost)"));
      }
    }
  } else if (kw.text == "slo") {
    require_seen(p, p.seen_slo, kw);
    if (toks.size() < 2)
      p.fail(kw.col + kw.text.size(), "slo needs fast= and/or slow=");
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const auto [key, value] = split_kv(p, toks[i]);
      if (key == "fast") {
        p.sc.slo_fast = parse_count(p, value, "window");
      } else if (key == "slow") {
        p.sc.slo_slow = parse_count(p, value, "window");
      } else {
        p.fail(toks[i].col, msg("unknown slo key ", key,
                                " (fast | slow)"));
      }
    }
  } else if (kw.text == "durability") {
    require_seen(p, p.seen_durability, kw);
    p.sc.durability = true;
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const auto [key, value] = split_kv(p, toks[i]);
      if (key == "every") {
        p.sc.durability_every = parse_count(p, value, "snapshot cadence");
      } else if (key == "fsync") {
        if (value.text == "on") {
          p.sc.durability_fsync = true;
        } else if (value.text == "off") {
          p.sc.durability_fsync = false;
        } else {
          p.fail(value.col,
                 msg("bad fsync value ", value.text, " (on | off)"));
        }
      } else {
        p.fail(toks[i].col, msg("unknown durability key ", key,
                                " (every | fsync)"));
      }
    }
  } else if (kw.text == "invariant") {
    handle_invariant(p, toks);
  } else {
    p.fail(kw.col, msg("unknown keyword ", kw.text, ""));
  }
}

}  // namespace

void Scenario::validate() const {
  BURSTQ_REQUIRE(!name.empty(), "scenario has no name");
  BURSTQ_REQUIRE(slots > 0, "scenario needs slots > 0");
  BURSTQ_REQUIRE(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1]");
  BURSTQ_REQUIRE(n_vms > 0 && n_pms > 0,
                 "topology needs vms >= 1 and pms >= 1");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "max-vms-per-pm must be >= 1");
  BURSTQ_REQUIRE(capacity_lo > 0.0 && capacity_lo <= capacity_hi,
                 "capacity range must satisfy 0 < lo <= hi");
  BURSTQ_REQUIRE(migration_window >= 1, "migration window must be >= 1");
  BURSTQ_REQUIRE(migration_cost >= 1, "migration cost must be >= 1");
  BURSTQ_REQUIRE(slo_fast >= 1 && slo_slow >= slo_fast,
                 "slo windows must satisfy 1 <= fast <= slow");
  BURSTQ_REQUIRE(durability_every >= 1,
                 "durability every= must be >= 1");
  BURSTQ_REQUIRE(!invariants.empty(),
                 "scenario declares no invariants; a run nothing checks "
                 "is not a scenario");
  onoff.validate();
  for (const WorkloadPhase& phase : phases) phase.validate();
  faults.validate(n_pms, slots);
}

Scenario parse_scenario_text(std::string_view text, std::string source) {
  Parser p;
  p.source = std::move(source);
  p.sc.source = p.source;

  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    ++p.line;
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::vector<Token> toks = tokenize(line);
    if (!toks.empty()) {
      if (p.seen_scenario == 0 && toks[0].text != "scenario")
        p.fail(toks[0].col,
               msg("the first statement must be 'scenario NAME', got ",
                   toks[0].text, ""));
      handle_statement(p, toks);
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  if (p.seen_scenario == 0) {
    p.line = 1;
    p.fail(1, "empty scenario: no 'scenario NAME' statement");
  }

  // Positional checks the statements could not do alone (slots may be
  // declared after the phases/faults that reference it).
  for (std::size_t i = 0; i < p.sc.phases.size(); ++i) {
    p.line = p.phase_lines[i];
    if (p.sc.phases[i].slot >= p.sc.slots)
      p.fail(1, "phase at=" + std::to_string(p.sc.phases[i].slot) +
                    " is outside the horizon (slots=" +
                    std::to_string(p.sc.slots) + "); it would never apply");
    if (i > 0 && p.sc.phases[i].slot <= p.sc.phases[i - 1].slot)
      p.fail(1, "phases must have strictly ascending at= slots (previous "
                "phase is at=" +
                    std::to_string(p.sc.phases[i - 1].slot) + ")");
  }
  std::stable_sort(p.sc.faults.scripted.begin(), p.sc.faults.scripted.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.slot < b.slot;
                   });
  try {
    p.sc.validate();
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(p.source + ": " + e.what());
  }
  return p.sc;
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in.is_open(), "cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_text(buf.str(), path);
}

}  // namespace burstq::harness
