#include "harness/invariants.h"

#include "common/error.h"

namespace burstq::harness {

std::string_view invariant_name(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kClusterCvr: return "cluster_cvr";
    case InvariantKind::kPmCvr: return "pm_cvr";
    case InvariantKind::kLostVms: return "lost_vms";
    case InvariantKind::kMigrationsPerSlot: return "migrations_per_slot";
    case InvariantKind::kVmFlaps: return "vm_flaps";
    case InvariantKind::kSloFastBurn: return "slo_fast_burn";
    case InvariantKind::kSloSlowBurn: return "slo_slow_burn";
    case InvariantKind::kRecoveryReplaySlots:
      return "recovery_replay_slots";
  }
  return "?";
}

std::string_view invariant_op_name(InvariantOp op) {
  return op == InvariantOp::kLe ? "<=" : "==";
}

std::optional<InvariantKind> invariant_from_name(std::string_view name) {
  for (const InvariantInfo& info : invariant_catalog())
    if (info.name == name) return info.kind;
  return std::nullopt;
}

std::optional<InvariantOp> invariant_op_from_name(std::string_view name) {
  if (name == "<=") return InvariantOp::kLe;
  if (name == "==") return InvariantOp::kEq;
  return std::nullopt;
}

const std::vector<InvariantInfo>& invariant_catalog() {
  static const std::vector<InvariantInfo> catalog = {
      {InvariantKind::kClusterCvr, "cluster_cvr",
       "cumulative cluster-wide capacity violation ratio (Eq. 4)"},
      {InvariantKind::kPmCvr, "pm_cvr",
       "worst per-PM cumulative CVR — the Eq. 16/17 per-machine budget"},
      {InvariantKind::kLostVms, "lost_vms",
       "VMs neither hosted nor queued at the end (conservation; use == 0)"},
      {InvariantKind::kMigrationsPerSlot, "migrations_per_slot",
       "successful migrations in any single slot (migration storms)"},
      {InvariantKind::kVmFlaps, "vm_flaps",
       "migrations of the most-moved VM (placement flapping)"},
      {InvariantKind::kSloFastBurn, "slo_fast_burn",
       "worst fast-window SLO burn rate (observed CVR / rho)"},
      {InvariantKind::kSloSlowBurn, "slo_slow_burn",
       "worst slow-window SLO burn rate (observed CVR / rho)"},
      {InvariantKind::kRecoveryReplaySlots, "recovery_replay_slots",
       "largest WAL replay (slots) any kill-restore performed"},
  };
  return catalog;
}

namespace {

bool breaches(InvariantOp op, double v, double threshold) {
  return op == InvariantOp::kLe ? v > threshold : v != threshold;
}

/// Per-slot quantity (migrations, burn rates, flap counts): the verdict
/// is about the worst single slot; the window spans the first through
/// the last breaching slot.
template <typename T>
InvariantResult evaluate_max_series(InvariantOp op, double threshold,
                                    const std::vector<T>& series) {
  InvariantResult r;
  r.op = op;
  r.threshold = threshold;
  bool any_breach = false;
  std::size_t first = 0;
  std::size_t last = 0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const double v = static_cast<double>(series[t]);
    if (t == 0 || v > r.worst) {
      r.worst = v;
      r.worst_slot = t;
    }
    if (breaches(op, v, threshold)) {
      if (!any_breach) first = t;
      last = t;
      any_breach = true;
    }
  }
  r.pass = !any_breach;
  if (any_breach) r.window = {first, last};
  return r;
}

/// Cumulative ratio (cluster/per-PM CVR, Eq. 4): the verdict is about
/// the FINAL value — a max-over-slots verdict would trip on early-run
/// small-denominator noise (one violated PM-slot at t=0 reads as a
/// running CVR of 1.0 that later dilutes away).  On failure the window
/// is the trailing run of slots over which the running value stayed in
/// breach through the end — the stretch that explains the verdict.
InvariantResult evaluate_final_series(InvariantOp op, double threshold,
                                      const std::vector<double>& series) {
  InvariantResult r;
  r.op = op;
  r.threshold = threshold;
  if (series.empty()) {
    r.pass = op == InvariantOp::kLe ? 0.0 <= threshold : 0.0 == threshold;
    return r;
  }
  r.worst = series.back();
  r.worst_slot = series.size() - 1;
  r.pass = !breaches(op, r.worst, threshold);
  if (!r.pass) {
    std::size_t begin = series.size() - 1;
    while (begin > 0 && breaches(op, series[begin - 1], threshold)) --begin;
    r.window = {begin, series.size() - 1};
  }
  return r;
}

}  // namespace

InvariantResult evaluate_invariant(InvariantKind kind, InvariantOp op,
                                   double threshold,
                                   const SlotSeries& series) {
  InvariantResult r;
  switch (kind) {
    case InvariantKind::kClusterCvr:
      r = evaluate_final_series(op, threshold, series.cluster_cvr);
      break;
    case InvariantKind::kPmCvr:
      r = evaluate_final_series(op, threshold, series.worst_pm_cvr);
      break;
    case InvariantKind::kMigrationsPerSlot:
      r = evaluate_max_series(op, threshold, series.migrations);
      break;
    case InvariantKind::kVmFlaps:
      r = evaluate_max_series(op, threshold, series.max_vm_moves);
      break;
    case InvariantKind::kSloFastBurn:
      r = evaluate_max_series(op, threshold, series.fast_burn);
      break;
    case InvariantKind::kSloSlowBurn:
      r = evaluate_max_series(op, threshold, series.slow_burn);
      break;
    case InvariantKind::kLostVms:
    case InvariantKind::kRecoveryReplaySlots: {
      // End-of-run scalar quantities, not series: the verdict is about
      // the final value (lost-VM count, or the worst single restore's
      // replay length); the window (when failing) is pinned to the last
      // completed slot so the trace pointer lands where the books were
      // closed.
      r.op = op;
      r.threshold = threshold;
      r.worst = static_cast<double>(kind == InvariantKind::kLostVms
                                        ? series.lost_vms
                                        : series.recovery_replay_slots);
      const std::size_t slots = series.cluster_cvr.size();
      r.worst_slot = slots == 0 ? 0 : slots - 1;
      r.pass = op == InvariantOp::kLe ? r.worst <= threshold
                                      : r.worst == threshold;
      if (!r.pass) r.window = {r.worst_slot, r.worst_slot};
      r.kind = kind;
      return r;
    }
  }
  r.kind = kind;
  return r;
}

}  // namespace burstq::harness
