// Machine-readable harness reports: one JSON document per scenario run,
// one entry per invariant.
//
// The format is deliberately boring and deterministic: fixed field
// order, csv_format doubles (round-trippable shortest form), no
// wall-clock timestamps, and the trace referenced by basename only — so
// two same-seed runs produce byte-identical reports wherever the output
// directory lives, and CI can diff them directly.
//
// Schema (burstq.harness.report/v1):
//
//   {
//     "schema": "burstq.harness.report/v1",
//     "scenario": "flash_crowd",
//     "seed": 42, "slots": 200, "slots_completed": 200,
//     "status": "pass" | "fail" | "abort",
//     "abort_reason": "...",                      // abort only
//     "trace": {"file": "flash_crowd.jsonl", "format": "jsonl",
//               "events": 412},
//     "invariants": [
//       {"name": "cluster_cvr", "op": "<=", "threshold": 0.02,
//        "pass": false, "worst": 0.031, "worst_slot": 57,
//        "window": {"begin": 50, "end": 70},      // null when no breach
//        "trace_pointer": {"offset": 12345, "event_index": 67,
//                          "slot": 50}}           // null when no window
//     ]
//   }
//
// `trace_pointer.offset` resolves with
// `burstq_cli trace head --log TRACE --at-offset OFFSET`.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/invariants.h"

namespace burstq::harness {

inline constexpr std::string_view kReportSchema =
    "burstq.harness.report/v1";

struct ScenarioReport {
  std::string scenario;
  std::uint64_t seed{0};
  std::size_t slots{0};            ///< configured horizon
  std::size_t slots_completed{0};  ///< < slots when the run aborted
  std::string status;              ///< "pass" | "fail" | "abort"
  std::string abort_reason;        ///< empty unless status == "abort"
  std::string trace_file;          ///< basename, next to the report
  std::string trace_format;        ///< "jsonl" | "btrc"
  std::uint64_t trace_events{0};   ///< events finalized into the trace
  std::vector<InvariantResult> invariants;

  [[nodiscard]] bool all_pass() const;
};

/// Renders the report as JSON (trailing newline included).
std::string render_report_json(const ScenarioReport& report);

/// Writes render_report_json to `path` (truncating).  Throws
/// InvalidArgument when the file cannot be opened.
void write_report(const ScenarioReport& report, const std::string& path);

/// Parses a report back.  `source` labels error messages.  Throws
/// InvalidArgument on malformed JSON, a wrong schema tag, or unknown
/// invariant/op names.
ScenarioReport parse_report_json(std::string_view text,
                                 const std::string& source);

/// Reads and parses a report file.
ScenarioReport load_report(const std::string& path);

}  // namespace burstq::harness
