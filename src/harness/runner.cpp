#include "harness/runner.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "common/error.h"
#include "durable/durable.h"
#include "obs/jsonl.h"
#include "obs/obs.h"
#include "obs/query.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "placement/baselines.h"
#include "queuing/mapcal.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"
#include "sim/cluster_sim.h"

namespace burstq::harness {

namespace {

PlacementResult place_fleet(const Scenario& sc,
                            const ProblemInstance& inst) {
  if (sc.strategy == "queue") {
    QueuingFfdOptions opt;
    opt.rho = sc.rho;
    opt.max_vms_per_pm = sc.max_vms_per_pm;
    return queuing_ffd(inst, opt).result;
  }
  if (sc.strategy == "rp") return ffd_by_peak(inst, sc.max_vms_per_pm);
  if (sc.strategy == "rb") return ffd_by_normal(inst, sc.max_vms_per_pm);
  if (sc.strategy == "rbex")
    return ffd_reserved(inst, 0.3, sc.max_vms_per_pm);
  if (sc.strategy == "sbp")
    return sbp_normal(inst, sc.rho, sc.max_vms_per_pm);
  throw InvalidArgument("unknown strategy: " + sc.strategy);
}

/// Streams the finalized trace once (obs::scan_events — JSONL
/// line-by-line, BTRC block-by-block): resolves a TracePointer for
/// every slot in `targets` (the first slot.obs event at that `t`; BTRC
/// pointers use the containing block's boundary so `trace head
/// --at-offset` can start decoding there) and counts the total events.
std::uint64_t scan_trace(const std::string& path,
                         std::map<std::size_t, TracePointer>& targets) {
  return obs::scan_events(
      path, [&targets](const obs::RecordedEvent& ev, std::uint64_t offset,
                       std::uint64_t index) {
        if (ev.kind != "slot.obs") return true;
        const auto t = static_cast<std::size_t>(ev.integer("t"));
        const auto it = targets.find(t);
        if (it != targets.end() && it->second.offset == 0 &&
            it->second.event_index == 0)
          it->second = TracePointer{offset, index, t};
        return true;
      });
}

}  // namespace

RunSummary run_scenario(const Scenario& sc, const HarnessOptions& opt) {
  sc.validate();
  RunSummary out;
  const std::string trace_ext =
      opt.trace_format == obs::EventFormat::kBinary ? ".trace.btrc"
                                                    : ".trace.jsonl";
  out.trace_path = opt.out_dir + "/" + sc.name + trace_ext;
  out.report_path = opt.out_dir + "/" + sc.name + ".report.json";

  ScenarioReport& report = out.report;
  report.scenario = sc.name;
  report.seed = sc.seed;
  report.slots = sc.slots;
  // Reports reference the trace by basename so two same-seed runs are
  // byte-identical regardless of where --out points.
  report.trace_file = sc.name + trace_ext;
  report.trace_format =
      std::string(obs::format_name(opt.trace_format));

  // The trace must exist (and later: be finalized) no matter how the run
  // ends; open it before anything that can throw.
  obs::events().open(out.trace_path, opt.trace_format,
                     obs::EventLevel::kDetail, opt.compress);
  obs::events().set_run_label("harness/" + sc.name);

  // A scenario's trace must not depend on what else ran in this process:
  // a warm MapCal cache would swallow the mapcal events a cold run
  // emits, breaking the byte-identical contract for back-to-back runs.
  mapcal_table_cache_clear();

  SlotSeries series;
  obs::SloTracker slo(sc.n_pms, [&] {
    obs::SloOptions slo_opt;
    slo_opt.rho = sc.rho;
    slo_opt.fast_window = sc.slo_fast;
    slo_opt.slow_window = sc.slo_slow;
    return slo_opt;
  }());

  std::string abort_reason;
  std::vector<MigrationEvent> migration_events;
  bool completed = false;
  try {
    Rng rng(sc.seed);
    ProblemInstance inst = table_i_instance(
        sc.pattern, sc.n_vms, sc.n_pms, sc.onoff, rng, [&] {
          InstanceRanges ranges;
          ranges.capacity_lo = sc.capacity_lo;
          ranges.capacity_hi = sc.capacity_hi;
          return ranges;
        }());

    const PlacementResult placed = place_fleet(sc, inst);
    BURSTQ_REQUIRE(placed.complete(),
                   std::to_string(placed.unplaced.size()) +
                       " VMs could not be placed; grow pms=, capacity, or "
                       "relax rho in the scenario");

    SimConfig cfg;
    cfg.slots = sc.slots;
    cfg.policy.rho = sc.rho;
    cfg.policy.max_vms_per_pm = sc.max_vms_per_pm;
    cfg.policy.cvr_window = sc.migration_window;
    cfg.policy.cost_slots = sc.migration_cost;
    if (sc.faults.any()) cfg.faults = sc.faults;
    cfg.slo = &slo;
    cfg.workload_phases = sc.phases;

    // Durability: a `durability` statement opts in explicitly; a fault
    // plan with kill-points turns it on implicitly (a kill without a
    // restore path would just lose the run).  The state directory is
    // scenario-private and wiped up front — stale snapshots from an
    // earlier run must never leak into this one's restores.
    if (sc.durability || sc.faults.has_kills()) {
      durable::DurabilityConfig dur;
      dur.dir = opt.out_dir + "/" + sc.name + ".durable";
      dur.snapshot_every = sc.durability_every;
      dur.fsync = sc.durability_fsync;
      std::filesystem::remove_all(dur.dir);
      cfg.durability = dur;
    }

    // Per-slot bookkeeping: running cumulative CVR cluster-wide and for
    // the worst PM, so breach windows come out in slots, not just a
    // final scalar.
    std::vector<std::size_t> pm_observed(sc.n_pms, 0);
    std::vector<std::size_t> pm_violated(sc.n_pms, 0);
    std::size_t cluster_observed = 0;
    std::size_t cluster_violated = 0;
    cfg.on_slot = [&](const SlotObservation& ob) {
      cluster_observed += ob.active->size();
      cluster_violated += ob.violated->size();
      for (const std::size_t pm : *ob.active) ++pm_observed[pm];
      for (const std::size_t pm : *ob.violated) ++pm_violated[pm];
      // Current (not running-max) worst per-PM cumulative CVR: the
      // ratio dilutes as observations accumulate, and the invariant is
      // about where the books stand, not a transient.
      double worst_pm = 0.0;
      for (std::size_t pm = 0; pm < sc.n_pms; ++pm)
        if (pm_violated[pm] > 0)
          worst_pm = std::max(
              worst_pm, static_cast<double>(pm_violated[pm]) /
                            static_cast<double>(pm_observed[pm]));
      series.cluster_cvr.push_back(
          cluster_observed == 0
              ? 0.0
              : static_cast<double>(cluster_violated) /
                    static_cast<double>(cluster_observed));
      series.worst_pm_cvr.push_back(worst_pm);
      series.migrations.push_back(ob.migrations);
      const obs::SloReport slo_now = slo.report();
      series.fast_burn.push_back(slo_now.fast.burn);
      series.slow_burn.push_back(slo_now.slow.burn);
    };

    // Kill-restore loop.  A kill-point (fault kill@SLOT / Markov p_kill)
    // surfaces as durable::SimKilled — deliberately not a std::exception,
    // so the abort handler below can never swallow it.  Each restore
    // builds a FRESH simulator from the same arguments (the RNG is split
    // once: every construction must consume the identical stream), zeroes
    // the accumulators, and restore_from_durable() re-fires on_slot for
    // every pre-snapshot slot — so the series rebuilds exactly and the
    // final report is byte-identical to an uninterrupted run.
    const Rng sim_rng = rng.split();
    std::size_t worst_replay = 0;
    bool restore = false;
    for (;;) {
      pm_observed.assign(sc.n_pms, 0);
      pm_violated.assign(sc.n_pms, 0);
      cluster_observed = 0;
      cluster_violated = 0;
      series.cluster_cvr.clear();
      series.worst_pm_cvr.clear();
      series.migrations.clear();
      series.fast_burn.clear();
      series.slow_burn.clear();

      ClusterSimulator sim(inst, placed.placement, cfg, sim_rng);
      if (restore) {
        const ClusterSimulator::RestoreInfo info =
            sim.restore_from_durable();
        worst_replay = std::max(worst_replay, info.replay_slots);
        BURSTQ_COUNT("harness.restores", 1);
      }
      try {
        const SimReport rep = sim.run();
        series.lost_vms = rep.faults.lost_vms;
        migration_events = rep.events;
        break;
      } catch (const durable::SimKilled&) {
        restore = true;
      }
    }
    series.recovery_replay_slots = worst_replay;
    completed = true;
  } catch (const std::exception& e) {
    abort_reason = e.what();
  }

  // Finalize the trace FIRST — on abort this is what makes the report's
  // pointers resolvable at all.
  obs::events().close();
  obs::events().set_run_label("");

  report.slots_completed = series.cluster_cvr.size();

  // Flap bookkeeping: running max per-VM successful-migration count.
  // Derived from the migration log post-run (the observer only sees
  // counts); an aborted run has no log and the series stays empty.
  {
    std::map<std::size_t, std::size_t> moves;
    std::size_t running_max = 0;
    std::size_t next = 0;
    std::sort(migration_events.begin(), migration_events.end(),
              [](const MigrationEvent& a, const MigrationEvent& b) {
                return a.slot < b.slot;
              });
    series.max_vm_moves.assign(report.slots_completed, 0);
    for (std::size_t t = 0; t < report.slots_completed; ++t) {
      while (next < migration_events.size() &&
             migration_events[next].slot <= static_cast<TimeSlot>(t)) {
        if (!migration_events[next].failed())
          running_max = std::max(
              running_max, ++moves[migration_events[next].vm.value]);
        ++next;
      }
      series.max_vm_moves[t] = running_max;
    }
  }

  std::map<std::size_t, TracePointer> pointer_targets;
  for (const ScenarioInvariant& inv : sc.invariants) {
    InvariantResult r =
        evaluate_invariant(inv.kind, inv.op, inv.threshold, series);
    if (r.window) pointer_targets.emplace(r.window->first, TracePointer{});
    report.invariants.push_back(r);
  }

  report.trace_events = scan_trace(out.trace_path, pointer_targets);
  bool all_pass = true;
  for (InvariantResult& r : report.invariants) {
    if (!r.pass) all_pass = false;
    if (!r.window) continue;
    const auto it = pointer_targets.find(r.window->first);
    // offset==0 && event_index==0 means the scan never saw a slot.obs at
    // that t (e.g. an obs-stripped build): leave the pointer absent
    // rather than pointing at the file header.
    if (it != pointer_targets.end() &&
        (it->second.offset != 0 || it->second.event_index != 0))
      r.trace = it->second;
  }

  if (!completed) {
    report.status = "abort";
    report.abort_reason = abort_reason;
  } else {
    report.status = all_pass ? "pass" : "fail";
  }

  BURSTQ_COUNT("harness.scenarios_run", 1);
  BURSTQ_COUNT("harness.invariants_checked", report.invariants.size());
  std::size_t failed = 0;
  for (const InvariantResult& r : report.invariants)
    if (!r.pass) ++failed;
  if (failed > 0) BURSTQ_COUNT("harness.invariants_failed", failed);
  if (!completed) BURSTQ_COUNT("harness.aborts", 1);

  write_report(report, out.report_path);
  return out;
}

}  // namespace burstq::harness
