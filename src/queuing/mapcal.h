// Algorithm 1 (MapCal) of the paper: how many spike blocks K must a PM
// hosting k ON-OFF VMs reserve so that the capacity violation ratio stays
// below rho?
//
//   1. Build the (k+1)x(k+1) transition matrix P of theta(t)   (Eq. 12)
//   2. Form the homogeneous system Pi P = Pi                   (Eq. 14)
//   3. Solve by Gaussian elimination (with sum(pi)=1)
//   4. K = min { K : sum_{m<=K} pi_m >= 1 - rho }              (Eq. 15)
//
// The resulting CVR equals 1 - CDF(K) <= rho                    (Eq. 16).
//
// MapCalTable precomputes mapping(k) for k in [1, d] exactly as Algorithm 2
// lines 1-6 do, so placement runs in O(1) per feasibility check.

#pragma once

#include <cstddef>
#include <vector>

#include "markov/aggregate_chain.h"

namespace burstq {

/// Tolerance for ties at the CDF boundary: when sum(pi_0..pi_K) equals
/// 1 - rho exactly in real arithmetic (e.g. k = 2, q = 0.1, rho = 0.01),
/// floating-point noise must not flip the decision between backends.  Ties
/// resolve in favor of fewer blocks, so the achieved CVR may exceed rho by
/// at most this epsilon.
inline constexpr double kCdfTieEpsilon = 1e-9;

struct MapCalResult {
  std::size_t blocks{0};  ///< K: number of reserved spike blocks
  double cvr_bound{0.0};  ///< 1 - sum_{m<=K} pi_m, the analytic CVR (Eq. 16)
  std::vector<double> stationary;  ///< pi_0..pi_k of theta(t)
};

/// Runs Algorithm 1 for one PM with k hosted VMs and CVR budget rho.
/// Requires k >= 1, rho in [0, 1), valid params.  Returns K in [0, k]:
/// K = k means no reduction is possible within the budget (this subsumes
/// the paper's "K < k" search — if even K = k-1 misses the budget the PM
/// must keep one block per VM, which gives CVR 0 like provisioning for
/// peak).  rho >= 1 would make reservation pointless and is rejected.
MapCalResult map_cal(std::size_t k, const OnOffParams& params, double rho,
                     StationaryMethod method = StationaryMethod::kGaussian);

/// Convenience: just K.
std::size_t map_cal_blocks(std::size_t k, const OnOffParams& params,
                           double rho,
                           StationaryMethod method = StationaryMethod::kGaussian);

/// The mapping(k) table of Algorithm 2 (lines 1-6): mapping(k) blocks are
/// needed when k VMs share a PM.  Index 0 is 0 by definition.
class MapCalTable {
 public:
  /// Precomputes mapping(k) for k in [1, max_vms_per_pm].
  MapCalTable(std::size_t max_vms_per_pm, const OnOffParams& params,
              double rho,
              StationaryMethod method = StationaryMethod::kGaussian);

  /// mapping(k); requires k <= max_vms_per_pm().
  [[nodiscard]] std::size_t blocks(std::size_t k) const;

  /// Analytic CVR bound achieved at k VMs (Eq. 16).
  [[nodiscard]] double cvr_bound(std::size_t k) const;

  [[nodiscard]] std::size_t max_vms_per_pm() const {
    return blocks_.size() - 1;
  }
  [[nodiscard]] const OnOffParams& params() const { return params_; }
  [[nodiscard]] double rho() const { return rho_; }

 private:
  OnOffParams params_;
  double rho_;
  std::vector<std::size_t> blocks_;
  std::vector<double> cvr_bounds_;
};

}  // namespace burstq
