// Algorithm 1 (MapCal) of the paper: how many spike blocks K must a PM
// hosting k ON-OFF VMs reserve so that the capacity violation ratio stays
// below rho?
//
//   1. Build the (k+1)x(k+1) transition matrix P of theta(t)   (Eq. 12)
//   2. Form the homogeneous system Pi P = Pi                   (Eq. 14)
//   3. Solve by Gaussian elimination (with sum(pi)=1)
//   4. K = min { K : sum_{m<=K} pi_m >= 1 - rho }              (Eq. 15)
//
// The resulting CVR equals 1 - CDF(K) <= rho                    (Eq. 16).
//
// MapCalTable precomputes mapping(k) for k in [1, d] exactly as Algorithm 2
// lines 1-6 do, so placement runs in O(1) per feasibility check.  Tables
// are memoized in a process-wide cache keyed by (d, params, rho, method):
// constructing a table for a setting that was already solved reuses the
// immutable precomputed data (zero new stationary solves — benches, sweeps
// and the online consolidator stop re-solving identical chains), and
// uncached builds fan the per-k solves out over parallel_for.  Copying a
// MapCalTable is a shared_ptr copy.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "markov/aggregate_chain.h"

namespace burstq {

/// Tolerance for ties at the CDF boundary: when sum(pi_0..pi_K) equals
/// 1 - rho exactly in real arithmetic (e.g. k = 2, q = 0.1, rho = 0.01),
/// floating-point noise must not flip the decision between backends.  Ties
/// resolve in favor of fewer blocks, so the achieved CVR may exceed rho by
/// at most this epsilon.
inline constexpr double kCdfTieEpsilon = 1e-9;

struct MapCalResult {
  std::size_t blocks{0};  ///< K: number of reserved spike blocks
  double cvr_bound{0.0};  ///< 1 - sum_{m<=K} pi_m, the analytic CVR (Eq. 16)
  std::vector<double> stationary;  ///< pi_0..pi_k of theta(t)
};

/// Runs Algorithm 1 for one PM with k hosted VMs and CVR budget rho.
/// Requires k >= 1, rho in [0, 1), valid params.  Returns K in [0, k]:
/// K = k means no reduction is possible within the budget (this subsumes
/// the paper's "K < k" search — if even K = k-1 misses the budget the PM
/// must keep one block per VM, which gives CVR 0 like provisioning for
/// peak).  rho >= 1 would make reservation pointless and is rejected.
MapCalResult map_cal(std::size_t k, const OnOffParams& params, double rho,
                     StationaryMethod method = StationaryMethod::kGaussian);

/// Convenience: just K.
std::size_t map_cal_blocks(std::size_t k, const OnOffParams& params,
                           double rho,
                           StationaryMethod method = StationaryMethod::kGaussian);

/// The mapping(k) table of Algorithm 2 (lines 1-6): mapping(k) blocks are
/// needed when k VMs share a PM.  Index 0 is 0 by definition.
class MapCalTable {
 public:
  /// Returns the memoized table for (max_vms_per_pm, params, rho, method),
  /// solving the d stationary systems only on a cache miss.
  MapCalTable(std::size_t max_vms_per_pm, const OnOffParams& params,
              double rho,
              StationaryMethod method = StationaryMethod::kGaussian);

  /// mapping(k); requires k <= max_vms_per_pm().
  [[nodiscard]] std::size_t blocks(std::size_t k) const;

  /// Analytic CVR bound achieved at k VMs (Eq. 16).
  [[nodiscard]] double cvr_bound(std::size_t k) const;

  [[nodiscard]] std::size_t max_vms_per_pm() const {
    return data_->blocks.size() - 1;
  }
  [[nodiscard]] const OnOffParams& params() const { return data_->params; }
  [[nodiscard]] double rho() const { return data_->rho; }
  [[nodiscard]] StationaryMethod method() const { return data_->method; }

 private:
  /// Immutable precomputed mapping shared between all tables (and cache
  /// entries) with the same key.
  struct Data {
    OnOffParams params;
    double rho{0.0};
    StationaryMethod method{StationaryMethod::kGaussian};
    std::vector<std::size_t> blocks;
    std::vector<double> cvr_bounds;
  };

  static std::shared_ptr<const Data> lookup_or_build(
      std::size_t max_vms_per_pm, const OnOffParams& params, double rho,
      StationaryMethod method);

  std::shared_ptr<const Data> data_;
};

/// Chaos hook for fault injection (src/fault): while enabled, map_cal()
/// and *uncached* MapCalTable builds throw SolverUnavailable.  Memoized
/// tables keep resolving (a cache hit needs no solve), which is the first
/// rung of the degradation ladder in fault/degrade.h.  Counter
/// `fault.solver.faults` increments per injected throw.  Process-wide;
/// intended for tests and the fault injector, not concurrent toggling.
void mapcal_set_solver_fault(bool enabled);
[[nodiscard]] bool mapcal_solver_fault_enabled();

/// RAII toggle for mapcal_set_solver_fault (restores the previous state).
class ScopedSolverFault {
 public:
  explicit ScopedSolverFault(bool enabled = true)
      : previous_(mapcal_solver_fault_enabled()) {
    mapcal_set_solver_fault(enabled);
  }
  ~ScopedSolverFault() { mapcal_set_solver_fault(previous_); }
  ScopedSolverFault(const ScopedSolverFault&) = delete;
  ScopedSolverFault& operator=(const ScopedSolverFault&) = delete;

 private:
  bool previous_;
};

/// Number of distinct (d, params, rho, method) settings currently
/// memoized by the process-wide table cache.
std::size_t mapcal_table_cache_size();

/// Drops every memoized table (handles held by live MapCalTable objects
/// stay valid).  Tests and benches use this to measure cold builds.
void mapcal_table_cache_clear();

}  // namespace burstq
