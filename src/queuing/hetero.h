// Exact reservation for heterogeneous burstiness — an extension beyond
// the paper.
//
// Section IV-E handles per-VM (p_on, p_off) by rounding to uniform values
// and running Algorithm 1.  Because the chains stay independent, the
// stationary ON-count of a heterogeneous group is exactly
// PoissonBinomial(q_1, ..., q_k); the block count can therefore be
// computed without any rounding error:
//
//   K = min { K : P[PoissonBinomial(q) <= K] >= 1 - rho }
//
// This module provides that exact MapCal plus the induced CVR bound.
// bench/ablation_hetero measures what the paper's rounding policies cost
// relative to it.

#pragma once

#include <span>
#include <vector>

#include "markov/onoff.h"

namespace burstq {

struct HeteroMapCalResult {
  std::size_t blocks{0};
  double cvr_bound{0.0};
  std::vector<double> stationary;  ///< Poisson-binomial pmf of theta
};

/// Exact Algorithm-1 analogue for VMs with individual parameters.
/// Requires at least one entry; every params element must be valid;
/// rho in [0, 1).
HeteroMapCalResult map_cal_hetero(std::span<const OnOffParams> params,
                                  double rho);

/// Convenience: blocks only.
std::size_t map_cal_hetero_blocks(std::span<const OnOffParams> params,
                                  double rho);

/// Stationary ON-probabilities q_i of each chain (helper for callers that
/// maintain incremental state).
std::vector<double> stationary_on_probabilities(
    std::span<const OnOffParams> params);

}  // namespace burstq
