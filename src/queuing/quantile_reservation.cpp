#include "queuing/quantile_reservation.h"

#include <cmath>

#include "common/error.h"
#include "queuing/mapcal.h"

namespace burstq {

void QuantileReservationOptions::validate() const {
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
  BURSTQ_REQUIRE(grid_step > 0.0, "grid step must be positive");
}

std::vector<double> extra_demand_distribution(std::span<const double> re,
                                              std::span<const double> q,
                                              double grid_step) {
  BURSTQ_REQUIRE(re.size() == q.size(), "one q per Re required");
  BURSTQ_REQUIRE(grid_step > 0.0, "grid step must be positive");

  // Each VM's spike size in grid units, rounded UP (soundness: the
  // modeled spike is never smaller than the real one).
  std::vector<std::size_t> units;
  units.reserve(re.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < re.size(); ++i) {
    BURSTQ_REQUIRE(re[i] >= 0.0, "spike sizes must be non-negative");
    BURSTQ_REQUIRE(q[i] >= 0.0 && q[i] <= 1.0, "q must lie in [0, 1]");
    const auto u =
        static_cast<std::size_t>(std::ceil(re[i] / grid_step - 1e-12));
    units.push_back(u);
    total += u;
  }

  // Convolution DP, identical in spirit to the Poisson-binomial pmf but
  // with per-VM jump sizes.
  std::vector<double> pmf(total + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t reach = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    const std::size_t u = units[i];
    const double qi = q[i];
    if (u == 0 || qi == 0.0) continue;  // contributes nothing
    reach += u;
    for (std::size_t g = reach + 1; g-- > u;)
      pmf[g] = pmf[g] * (1.0 - qi) + pmf[g - u] * qi;
    for (std::size_t g = u; g-- > 0;) pmf[g] *= 1.0 - qi;
  }
  return pmf;
}

double exact_quantile_reservation(std::span<const double> re,
                                  std::span<const double> q,
                                  const QuantileReservationOptions& options) {
  options.validate();
  if (re.empty()) return 0.0;
  const auto pmf = extra_demand_distribution(re, q, options.grid_step);
  double cdf = 0.0;
  for (std::size_t g = 0; g < pmf.size(); ++g) {
    cdf += pmf[g];
    if (cdf >= 1.0 - options.rho - kCdfTieEpsilon)
      return static_cast<double>(g) * options.grid_step;
  }
  return static_cast<double>(pmf.size() - 1) * options.grid_step;
}

}  // namespace burstq
