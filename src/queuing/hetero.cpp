#include "queuing/hetero.h"

#include "common/error.h"
#include "prob/poisson_binomial.h"
#include "queuing/mapcal.h"

namespace burstq {

std::vector<double> stationary_on_probabilities(
    std::span<const OnOffParams> params) {
  std::vector<double> qs;
  qs.reserve(params.size());
  for (const auto& p : params) {
    p.validate();
    qs.push_back(p.stationary_on_probability());
  }
  return qs;
}

HeteroMapCalResult map_cal_hetero(std::span<const OnOffParams> params,
                                  double rho) {
  BURSTQ_REQUIRE(!params.empty(), "map_cal_hetero needs at least one VM");
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");

  const std::vector<double> qs = stationary_on_probabilities(params);
  HeteroMapCalResult result;
  result.stationary = poisson_binomial_pmf(qs);

  double cdf = 0.0;
  std::size_t chosen = params.size();
  for (std::size_t m = 0; m < result.stationary.size(); ++m) {
    cdf += result.stationary[m];
    if (cdf >= 1.0 - rho - kCdfTieEpsilon) {
      chosen = m;
      break;
    }
  }
  result.blocks = chosen;

  double mass = 0.0;
  for (std::size_t m = 0; m <= chosen && m < result.stationary.size(); ++m)
    mass += result.stationary[m];
  result.cvr_bound = mass >= 1.0 ? 0.0 : 1.0 - mass;
  return result;
}

std::size_t map_cal_hetero_blocks(std::span<const OnOffParams> params,
                                  double rho) {
  return map_cal_hetero(params, rho).blocks;
}

}  // namespace burstq
