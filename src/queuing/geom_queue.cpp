#include "queuing/geom_queue.h"

#include <algorithm>

#include "common/error.h"
#include "markov/aggregate_chain.h"
#include "prob/binomial.h"
#include "prob/combinatorics.h"
#include "queuing/mapcal.h"

namespace burstq {

GeomQueueMetrics analyze_geom_queue(std::size_t k, std::size_t servers,
                                    const OnOffParams& params) {
  BURSTQ_REQUIRE(k >= 1, "queue needs at least one source");
  BURSTQ_REQUIRE(servers <= k, "more servers than sources is never needed");
  params.validate();

  const std::vector<double> pi = aggregate_stationary_distribution(
      k, params, StationaryMethod::kClosedForm);

  GeomQueueMetrics m;
  m.sources = k;
  m.servers = servers;
  for (std::size_t i = 0; i <= k; ++i) {
    const auto theta = static_cast<double>(i);
    const double busy = std::min(theta, static_cast<double>(servers));
    m.mean_on_sources += theta * pi[i];
    m.mean_busy_servers += busy * pi[i];
    if (i > servers) {
      m.overflow_probability += pi[i];
      m.expected_overflow_excess +=
          (theta - static_cast<double>(servers)) * pi[i];
    }
  }
  m.server_utilization =
      servers == 0 ? 0.0 : m.mean_busy_servers / static_cast<double>(servers);
  return m;
}

std::size_t min_servers_for_overflow(std::size_t k, const OnOffParams& params,
                                     double rho) {
  BURSTQ_REQUIRE(k >= 1, "queue needs at least one source");
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
  params.validate();
  // Overflow probability P[theta > K] = 1 - BinomialCDF(K); the smallest K
  // with CDF >= 1 - rho is the Binomial quantile.  Shares map_cal's tie
  // epsilon so both entry points make identical boundary decisions.
  const double q = params.stationary_on_probability();
  double cdf = 0.0;
  for (std::size_t servers = 0; servers < k; ++servers) {
    cdf += binomial_pmf(static_cast<std::int64_t>(k),
                        static_cast<std::int64_t>(servers), q);
    if (cdf >= 1.0 - rho - kCdfTieEpsilon) return servers;
  }
  return k;
}

}  // namespace burstq
