// General discrete-time multi-server queue with finite capacity —
// the textbook family (Tian et al., "Discrete Time Queuing Theory") that
// the paper's finite-source no-waiting-room system is a member of.
//
// Model (early-arrival convention): each slot,
//   1. with probability lambda one customer arrives; if the system holds
//      capacity customers already, the arrival is blocked and lost
//   2. each of the min(n, servers) busy servers completes its customer
//      independently with probability mu
// State = number in system (queue + service), in {0..capacity}.  The
// one-step transition matrix is built numerically and solved with the
// same stationary machinery as the paper's Algorithm 1, so this module
// doubles as an independent exercise of that code path on a different
// chain family.
//
// Special cases: servers = 1 -> Geo/Geo/1/N; capacity = servers ->
// the discrete Erlang-loss analogue; capacity large -> Geo/Geo/c.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace burstq {

struct DiscreteQueueModel {
  double arrival_p{0.1};   ///< lambda: P[one arrival per slot]
  double service_p{0.5};   ///< mu: per-busy-server completion probability
  std::size_t servers{1};  ///< c
  std::size_t capacity{10};  ///< N >= c: max customers in system

  void validate() const;
};

struct DiscreteQueueMetrics {
  std::vector<double> stationary;   ///< pi over states 0..N
  double mean_in_system{0.0};       ///< E[L]
  double mean_in_queue{0.0};        ///< E[max(L - c, 0)]
  double blocking_probability{0.0}; ///< P[arrival lost] = pi_N (PASTA-like
                                    ///< for Bernoulli arrivals)
  double throughput{0.0};           ///< accepted arrivals per slot
  double mean_wait_slots{0.0};      ///< W via Little's law: E[L]/throughput
  double server_utilization{0.0};   ///< E[min(L, c)] / c
};

/// Builds the one-step transition matrix of the model.
Matrix discrete_queue_transition_matrix(const DiscreteQueueModel& model);

/// Solves the stationary law and derives the standard metrics.
DiscreteQueueMetrics analyze_discrete_queue(const DiscreteQueueModel& model);

/// Simulates the queue for `slots` slots and reports the empirical
/// occupancy distribution plus blocked/accepted counts (oracle for the
/// analytics).
struct DiscreteQueueSimResult {
  std::vector<double> occupancy;  ///< empirical state frequencies
  std::size_t arrivals{0};
  std::size_t blocked{0};
  std::size_t served{0};
};

DiscreteQueueSimResult simulate_discrete_queue(
    const DiscreteQueueModel& model, std::size_t slots, Rng& rng);

}  // namespace burstq
