#include "queuing/discrete_queue.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/gaussian.h"
#include "prob/combinatorics.h"

namespace burstq {

void DiscreteQueueModel::validate() const {
  BURSTQ_REQUIRE(arrival_p >= 0.0 && arrival_p <= 1.0,
                 "arrival probability must lie in [0, 1]");
  BURSTQ_REQUIRE(service_p > 0.0 && service_p <= 1.0,
                 "service probability must lie in (0, 1]");
  BURSTQ_REQUIRE(servers >= 1, "need at least one server");
  BURSTQ_REQUIRE(capacity >= servers,
                 "capacity must cover at least the servers");
}

Matrix discrete_queue_transition_matrix(const DiscreteQueueModel& model) {
  model.validate();
  const std::size_t n_states = model.capacity + 1;
  Matrix p(n_states, n_states);

  // From state n: arrival (accepted when n < N), then Binomial departures
  // among the busy servers (the arrival may start service immediately).
  for (std::size_t n = 0; n < n_states; ++n) {
    struct Branch {
      double prob;
      std::size_t occupancy;  // after the arrival phase
    };
    std::vector<Branch> branches;
    if (n < model.capacity) {
      branches.push_back({model.arrival_p, n + 1});
      branches.push_back({1.0 - model.arrival_p, n});
    } else {
      branches.push_back({1.0, n});  // arrival (if any) is blocked
    }
    for (const auto& b : branches) {
      if (b.prob == 0.0) continue;
      const auto busy =
          static_cast<std::int64_t>(std::min(b.occupancy, model.servers));
      for (std::int64_t d = 0; d <= busy; ++d) {
        const std::size_t next =
            b.occupancy - static_cast<std::size_t>(d);
        p(n, next) += b.prob * binomial_pmf(busy, d, model.service_p);
      }
    }
  }
  BURSTQ_ASSERT(p.is_row_stochastic(1e-9),
                "discrete queue matrix failed stochasticity");
  return p;
}

DiscreteQueueMetrics analyze_discrete_queue(const DiscreteQueueModel& model) {
  const Matrix p = discrete_queue_transition_matrix(model);
  auto pi = stationary_distribution_gaussian(p);
  BURSTQ_ASSERT(pi.has_value(), "queue chain is irreducible for mu > 0");

  DiscreteQueueMetrics m;
  m.stationary = std::move(*pi);
  const auto c = static_cast<double>(model.servers);
  // Busy servers are counted after the arrival phase (that is when
  // service happens), so flow balance holds exactly:
  //   throughput = mu * E[busy] = lambda * (1 - blocking).
  double busy_post = 0.0;
  for (std::size_t n = 0; n < m.stationary.size(); ++n) {
    const auto nn = static_cast<double>(n);
    m.mean_in_system += nn * m.stationary[n];
    m.mean_in_queue += std::max(0.0, nn - c) * m.stationary[n];
    if (n < model.capacity) {
      busy_post += m.stationary[n] *
                   (model.arrival_p * std::min(nn + 1.0, c) +
                    (1.0 - model.arrival_p) * std::min(nn, c));
    } else {
      busy_post += m.stationary[n] * std::min(nn, c);
    }
  }
  m.server_utilization = busy_post / c;
  m.blocking_probability = m.stationary.back();
  m.throughput = model.arrival_p * (1.0 - m.blocking_probability);
  BURSTQ_ASSERT(std::abs(m.throughput - model.service_p * busy_post) < 1e-9,
                "flow balance violated: analytics are inconsistent");
  m.mean_wait_slots =
      m.throughput > 0.0 ? m.mean_in_system / m.throughput : 0.0;
  return m;
}

DiscreteQueueSimResult simulate_discrete_queue(
    const DiscreteQueueModel& model, std::size_t slots, Rng& rng) {
  model.validate();
  BURSTQ_REQUIRE(slots > 0, "needs at least one slot");

  DiscreteQueueSimResult result;
  result.occupancy.assign(model.capacity + 1, 0.0);
  std::size_t n = 0;
  for (std::size_t t = 0; t < slots; ++t) {
    result.occupancy[n] += 1.0;  // state at slot start (matches analytics)
    // Arrival phase.
    if (rng.bernoulli(model.arrival_p)) {
      ++result.arrivals;
      if (n < model.capacity)
        ++n;
      else
        ++result.blocked;
    }
    // Service phase.
    const std::size_t busy = std::min(n, model.servers);
    std::size_t departures = 0;
    for (std::size_t s = 0; s < busy; ++s)
      if (rng.bernoulli(model.service_p)) ++departures;
    n -= departures;
    result.served += departures;
  }
  for (double& f : result.occupancy) f /= static_cast<double>(slots);
  return result;
}

}  // namespace burstq
