// Exact quantile reservation — burstq's sharpest extension of the
// paper's block scheme.
//
// The paper reserves K uniform blocks of size max(Re): sound, but loose
// when collocated spike sizes differ (the clustering step exists to
// limit exactly that looseness).  The stationary aggregate *extra*
// demand of a host set is in fact a sum of independent scaled Bernoullis
//   E = sum_i Re_i * 1[VM i ON],   P[1] = q_i = p_on_i/(p_on_i+p_off_i)
// whose full distribution is computable by dynamic programming on a
// discretized grid.  Reserving its (1 - rho)-quantile R* gives
//   P[E > R*] <= rho
// directly — the minimal sound reservation for the stationary law, for
// any mix of Re and switch parameters, with no clustering heuristic and
// no uniform-block slack.
//
// Discretization rounds each Re *up* to the grid, so the computed
// reservation only ever over-covers (soundness is preserved; tightness
// costs at most one grid step per VM).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/onoff.h"

namespace burstq {

struct QuantileReservationOptions {
  double rho{0.01};
  /// Grid resolution in resource units.  Smaller = tighter reservation,
  /// linearly more work.
  double grid_step{0.05};

  void validate() const;
};

/// The (1 - rho)-quantile of the aggregate extra-demand distribution of
/// independent VMs with spike sizes `re` and ON-probabilities `q`.
/// Requires re.size() == q.size(); zero-size input reserves 0.
double exact_quantile_reservation(std::span<const double> re,
                                  std::span<const double> q,
                                  const QuantileReservationOptions& options);

/// The full distribution (pmf over grid multiples) of the aggregate
/// extra demand; element g is P[E = g * grid_step'] where grid_step' is
/// the returned bin width (== options.grid_step).  Exposed for tests and
/// diagnostics.
std::vector<double> extra_demand_distribution(
    std::span<const double> re, std::span<const double> q, double grid_step);

}  // namespace burstq
