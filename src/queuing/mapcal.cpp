#include "queuing/mapcal.h"

#include "common/error.h"
#include "obs/obs.h"

namespace burstq {

namespace {

[[maybe_unused]] std::string_view method_name(StationaryMethod method) {
  switch (method) {
    case StationaryMethod::kGaussian: return "gaussian";
    case StationaryMethod::kPower: return "power";
    case StationaryMethod::kClosedForm: return "closed";
  }
  return "unknown";
}

}  // namespace

MapCalResult map_cal(std::size_t k, const OnOffParams& params, double rho,
                     StationaryMethod method) {
  BURSTQ_SPAN("mapcal.solve");
  BURSTQ_REQUIRE(k >= 1, "map_cal requires at least one VM");
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "map_cal requires rho in [0, 1)");
  params.validate();

  BURSTQ_COUNT("mapcal.calls", 1);
  BURSTQ_HIST("mapcal.k", k);

  MapCalResult result;
  result.stationary = aggregate_stationary_distribution(k, params, method);

  // Eq. (15): smallest K with CDF(K) >= 1 - rho.  Searching from 0 also
  // covers K = k (no reduction) when rho is tighter than even pi_k allows.
  double cdf = 0.0;
  std::size_t chosen = k;
  for (std::size_t m = 0; m <= k; ++m) {
    cdf += result.stationary[m];
    if (cdf >= 1.0 - rho - kCdfTieEpsilon) {
      chosen = m;
      break;
    }
  }
  result.blocks = chosen;

  // Eq. (16): CVR = 1 - sum_{m<=K} pi_m (clamped against roundoff).
  double mass = 0.0;
  for (std::size_t m = 0; m <= chosen; ++m) mass += result.stationary[m];
  result.cvr_bound = mass >= 1.0 ? 0.0 : 1.0 - mass;

  BURSTQ_EVENT(obs::EventLevel::kDecisions, "mapcal", {"k", k},
               {"rho", rho}, {"blocks", result.blocks},
               {"cvr_bound", result.cvr_bound},
               {"method", method_name(method)});
  return result;
}

std::size_t map_cal_blocks(std::size_t k, const OnOffParams& params,
                           double rho, StationaryMethod method) {
  return map_cal(k, params, rho, method).blocks;
}

MapCalTable::MapCalTable(std::size_t max_vms_per_pm,
                         const OnOffParams& params, double rho,
                         StationaryMethod method)
    : params_(params), rho_(rho) {
  BURSTQ_SPAN("mapcal.table.build");
  BURSTQ_COUNT("mapcal.table.builds", 1);
  BURSTQ_REQUIRE(max_vms_per_pm >= 1,
                 "MapCalTable requires max_vms_per_pm >= 1");
  params_.validate();
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "MapCalTable requires rho in [0,1)");

  blocks_.resize(max_vms_per_pm + 1, 0);
  cvr_bounds_.resize(max_vms_per_pm + 1, 0.0);
  for (std::size_t k = 1; k <= max_vms_per_pm; ++k) {
    const MapCalResult r = map_cal(k, params_, rho_, method);
    blocks_[k] = r.blocks;
    cvr_bounds_[k] = r.cvr_bound;
  }
}

std::size_t MapCalTable::blocks(std::size_t k) const {
  BURSTQ_REQUIRE(k < blocks_.size(), "mapping(k) queried beyond table");
  return blocks_[k];
}

double MapCalTable::cvr_bound(std::size_t k) const {
  BURSTQ_REQUIRE(k < cvr_bounds_.size(), "cvr_bound(k) queried beyond table");
  return cvr_bounds_[k];
}

}  // namespace burstq
