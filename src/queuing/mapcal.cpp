#include "queuing/mapcal.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/obs.h"

namespace burstq {

namespace {

[[maybe_unused]] std::string_view method_name(StationaryMethod method) {
  switch (method) {
    case StationaryMethod::kGaussian: return "gaussian";
    case StationaryMethod::kPower: return "power";
    case StationaryMethod::kClosedForm: return "closed";
  }
  return "unknown";
}

/// Cache key: exact value equality (double ==) — callers that re-solve
/// "the same" setting pass the very same values (rounded params, option
/// structs), and near-misses must not alias.
struct TableKey {
  std::size_t d{0};
  double p_on{0.0};
  double p_off{0.0};
  double rho{0.0};
  StationaryMethod method{StationaryMethod::kGaussian};

  friend bool operator==(const TableKey&, const TableKey&) = default;
};

/// Canonical bit pattern of a double for hashing.  operator== on TableKey
/// compares doubles with ==, under which -0.0 == +0.0 — but the two have
/// different bit patterns, so a raw bit_cast would hash equal keys (e.g.
/// rho = 0.0 vs rho = -0.0) into different buckets and the lookup would
/// miss, silently duplicating a cache entry.  Collapse the zeros before
/// casting.  NaN (the other ==/bits mismatch) cannot reach the cache:
/// params and rho are validated.
std::uint64_t canonical_double_bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v);
}

struct TableKeyHash {
  std::size_t operator()(const TableKey& k) const noexcept {
    auto mix = [](std::size_t seed, std::uint64_t v) {
      return seed ^ (std::hash<std::uint64_t>{}(v) + 0x9e3779b97f4a7c15ULL +
                     (seed << 6) + (seed >> 2));
    };
    std::size_t h = std::hash<std::size_t>{}(k.d);
    h = mix(h, canonical_double_bits(k.p_on));
    h = mix(h, canonical_double_bits(k.p_off));
    h = mix(h, canonical_double_bits(k.rho));
    h = mix(h, static_cast<std::uint64_t>(k.method));
    return h;
  }
};

/// Below this d the per-k solves are too small to amortize thread spawns;
/// build serially.
constexpr std::size_t kParallelBuildThreshold = 8;

std::atomic<bool>& solver_fault_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

[[noreturn]] void throw_solver_fault(const char* where) {
  BURSTQ_COUNT("fault.solver.faults", 1);
  throw SolverUnavailable(std::string(where) +
                          ": injected MapCal solver fault");
}

}  // namespace

void mapcal_set_solver_fault(bool enabled) {
  solver_fault_flag().store(enabled, std::memory_order_relaxed);
}

bool mapcal_solver_fault_enabled() {
  return solver_fault_flag().load(std::memory_order_relaxed);
}

MapCalResult map_cal(std::size_t k, const OnOffParams& params, double rho,
                     StationaryMethod method) {
  BURSTQ_SPAN("mapcal.solve");
  BURSTQ_REQUIRE(k >= 1, "map_cal requires at least one VM");
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "map_cal requires rho in [0, 1)");
  params.validate();

  if (mapcal_solver_fault_enabled()) throw_solver_fault("map_cal");

  BURSTQ_COUNT("mapcal.calls", 1);
  BURSTQ_HIST("mapcal.k", k);

  MapCalResult result;
  result.stationary = aggregate_stationary_distribution(k, params, method);

  // Eq. (15): smallest K with CDF(K) >= 1 - rho.  Searching from 0 also
  // covers K = k (no reduction) when rho is tighter than even pi_k allows.
  double cdf = 0.0;
  std::size_t chosen = k;
  for (std::size_t m = 0; m <= k; ++m) {
    cdf += result.stationary[m];
    if (cdf >= 1.0 - rho - kCdfTieEpsilon) {
      chosen = m;
      break;
    }
  }
  result.blocks = chosen;

  // Eq. (16): CVR = 1 - sum_{m<=K} pi_m (clamped against roundoff).
  double mass = 0.0;
  for (std::size_t m = 0; m <= chosen; ++m) mass += result.stationary[m];
  result.cvr_bound = mass >= 1.0 ? 0.0 : 1.0 - mass;

  BURSTQ_EVENT(obs::EventLevel::kDecisions, "mapcal", {"k", k},
               {"rho", rho}, {"blocks", result.blocks},
               {"cvr_bound", result.cvr_bound},
               {"method", method_name(method)});
  return result;
}

std::size_t map_cal_blocks(std::size_t k, const OnOffParams& params,
                           double rho, StationaryMethod method) {
  return map_cal(k, params, rho, method).blocks;
}

namespace {

// Process-wide memoized tables.  Values are type-erased so the free
// cache-introspection functions below need no access to MapCalTable::Data.
std::mutex& table_cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<TableKey, std::shared_ptr<const void>, TableKeyHash>&
table_cache() {
  static std::unordered_map<TableKey, std::shared_ptr<const void>,
                            TableKeyHash>
      cache;
  return cache;
}

}  // namespace

std::shared_ptr<const MapCalTable::Data> MapCalTable::lookup_or_build(
    std::size_t max_vms_per_pm, const OnOffParams& params, double rho,
    StationaryMethod method) {
  const TableKey key{max_vms_per_pm, params.p_on, params.p_off, rho, method};
  {
    std::lock_guard lock(table_cache_mutex());
    const auto it = table_cache().find(key);
    if (it != table_cache().end()) {
      BURSTQ_COUNT("mapcal.table.cache_hits", 1);
      return std::static_pointer_cast<const Data>(it->second);
    }
  }

  // A cache miss needs real solves; during an injected solver outage the
  // miss path fails here, *before* any work, while hits above keep
  // serving (the ladder's first rung).
  if (mapcal_solver_fault_enabled()) throw_solver_fault("MapCalTable");

  // Miss: solve outside the lock (builds may be slow and should not
  // serialize unrelated settings).  A concurrent duplicate build is
  // harmless — first insert wins below.
  BURSTQ_SPAN("mapcal.table.build");
  BURSTQ_COUNT("mapcal.table.builds", 1);
  auto data = std::make_shared<Data>();
  data->params = params;
  data->rho = rho;
  data->method = method;
  data->blocks.resize(max_vms_per_pm + 1, 0);
  data->cvr_bounds.resize(max_vms_per_pm + 1, 0.0);
  const auto solve_one = [&](std::size_t i) {
    const std::size_t k = i + 1;
    const MapCalResult r = map_cal(k, params, rho, method);
    data->blocks[k] = r.blocks;
    data->cvr_bounds[k] = r.cvr_bound;
  };
  if (max_vms_per_pm >= kParallelBuildThreshold)
    parallel_for(max_vms_per_pm, solve_one);
  else
    for (std::size_t i = 0; i < max_vms_per_pm; ++i) solve_one(i);

  std::lock_guard lock(table_cache_mutex());
  const auto [it, inserted] =
      table_cache().emplace(key, std::shared_ptr<const void>(data));
  return std::static_pointer_cast<const Data>(it->second);
}

MapCalTable::MapCalTable(std::size_t max_vms_per_pm,
                         const OnOffParams& params, double rho,
                         StationaryMethod method) {
  BURSTQ_REQUIRE(max_vms_per_pm >= 1,
                 "MapCalTable requires max_vms_per_pm >= 1");
  params.validate();
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "MapCalTable requires rho in [0,1)");
  data_ = lookup_or_build(max_vms_per_pm, params, rho, method);
}

std::size_t MapCalTable::blocks(std::size_t k) const {
  BURSTQ_REQUIRE(k < data_->blocks.size(), "mapping(k) queried beyond table");
  return data_->blocks[k];
}

double MapCalTable::cvr_bound(std::size_t k) const {
  BURSTQ_REQUIRE(k < data_->cvr_bounds.size(),
                 "cvr_bound(k) queried beyond table");
  return data_->cvr_bounds[k];
}

std::size_t mapcal_table_cache_size() {
  std::lock_guard lock(table_cache_mutex());
  return table_cache().size();
}

void mapcal_table_cache_clear() {
  std::lock_guard lock(table_cache_mutex());
  table_cache().clear();
}

}  // namespace burstq
