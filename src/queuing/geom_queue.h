// Analytic metrics of the discrete-time finite-source Geom/Geom/K queue
// with no waiting room — the queuing-theory formalization of a PM hosting
// k bursty VMs with K reserved spike blocks (paper Section IV-B, citing
// Tian et al., "Discrete Time Queuing Theory").
//
// Sources: k ON-OFF VMs.  Servers: K spike blocks.  A VM turning ON
// "enters service"; with no waiting room, an ON-count above K overflows the
// PM capacity (a violation) rather than queueing.

#pragma once

#include <cstddef>
#include <vector>

#include "markov/onoff.h"

namespace burstq {

/// Steady-state metrics of the k-source, K-server system.
struct GeomQueueMetrics {
  std::size_t sources{0};       ///< k: hosted VMs
  std::size_t servers{0};       ///< K: reserved blocks
  double overflow_probability{0.0};  ///< P[theta > K] = analytic CVR
  double mean_busy_servers{0.0};     ///< E[min(theta, K)]
  double mean_on_sources{0.0};       ///< E[theta] = k q
  double server_utilization{0.0};    ///< E[min(theta,K)] / K (0 if K == 0)
  double expected_overflow_excess{0.0};  ///< E[(theta - K)^+], spill depth
};

/// Computes the metrics from the exact stationary law of theta.
/// Requires k >= 1, servers <= k, valid params.
GeomQueueMetrics analyze_geom_queue(std::size_t k, std::size_t servers,
                                    const OnOffParams& params);

/// Smallest K achieving overflow probability <= rho (equivalent to
/// Algorithm 1's Eq. 15, expressed in queuing terms).
std::size_t min_servers_for_overflow(std::size_t k, const OnOffParams& params,
                                     double rho);

}  // namespace burstq
