#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace burstq {

namespace {

// 0 means "no override"; any positive value wins over env + hardware.
std::atomic<std::size_t> g_thread_override{0};

std::size_t env_thread_count() {
  const char* raw = std::getenv("BURSTQ_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return 0;  // not a number
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t default_thread_count() {
  const std::size_t forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const std::size_t env = env_thread_count();
  if (env > 0) return env;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void set_thread_count_override(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = default_thread_count();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::unique_lock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  parallel_for_workers(
      n, [&fn](std::size_t i, std::size_t /*worker*/) { fn(i); }, threads);
}

void parallel_for_workers(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t threads) {
  if (n == 0) return;
  std::size_t workers = threads;
  if (workers == 0) workers = default_thread_count();
  workers = std::min(workers, n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> ts;
  ts.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    ts.emplace_back([&, w] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i, w);
      }
    });
  }
  for (auto& t : ts) t.join();
}

}  // namespace burstq
