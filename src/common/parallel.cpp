#include "common/parallel.h"

#include <algorithm>
#include <atomic>

namespace burstq {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::unique_lock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  std::size_t workers = threads;
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> ts;
  ts.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    ts.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : ts) t.join();
}

}  // namespace burstq
