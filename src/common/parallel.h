// Shared-memory parallelism for the experiment harnesses and the sharded
// placement engine.
//
// Monte-Carlo trials (Figures 6 and 9 repeat each setting 10+ times) are
// embarrassingly parallel, so the runner fans trials out over a ThreadPool.
// Determinism is preserved by deriving one Rng per trial index *before*
// dispatch; results are written to per-index slots so no ordering matters.
//
// The process-wide worker count resolves, in priority order:
//   1. set_thread_count_override() (the --threads CLI flag),
//   2. the BURSTQ_THREADS environment variable,
//   3. std::thread::hardware_concurrency(),
// and is never below 1.  Every ThreadPool / parallel_for call that passes
// threads == 0 picks up the resolved value, so one flag governs MapCal
// cold builds, experiment fan-out, and the sharded placement engine alike.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace burstq {

/// Process-wide worker count: override > BURSTQ_THREADS > hardware
/// concurrency, minimum 1.  Thread-safe.
std::size_t default_thread_count();

/// Sets (n >= 1) or clears (n == 0) the process-wide thread-count
/// override.  Thread-safe; takes effect for pools created afterwards.
void set_thread_count_override(std::size_t n);

/// Fixed-size worker pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count()).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Jobs must not throw; exceptions escaping a job
  /// terminate the process (they indicate library bugs, not data errors).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_{0};
  bool stop_{false};
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across a transient pool.  Blocks until done.
/// fn must be safe to invoke concurrently for distinct indices.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Like parallel_for but fn also receives the executing worker's index in
/// [0, workers).  Indices are claimed dynamically off a shared counter, so
/// an idle worker steals whatever task is next — fn(i, w) with w != i %
/// workers is exactly a stolen task.  Callers must not let results depend
/// on the worker index (it is for steal accounting / scratch selection).
void parallel_for_workers(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t threads = 0);

}  // namespace burstq
