// Shared-memory parallelism for the experiment harnesses.
//
// Monte-Carlo trials (Figures 6 and 9 repeat each setting 10+ times) are
// embarrassingly parallel, so the runner fans trials out over a ThreadPool.
// Determinism is preserved by deriving one Rng per trial index *before*
// dispatch; results are written to per-index slots so no ordering matters.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace burstq {

/// Fixed-size worker pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Jobs must not throw; exceptions escaping a job
  /// terminate the process (they indicate library bugs, not data errors).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_{0};
  bool stop_{false};
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across a transient pool.  Blocks until done.
/// fn must be safe to invoke concurrently for distinct indices.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace burstq
