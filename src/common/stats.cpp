#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace burstq {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  BURSTQ_REQUIRE(n_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  BURSTQ_REQUIRE(n_ > 1, "variance requires at least two observations");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  BURSTQ_REQUIRE(n_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  BURSTQ_REQUIRE(n_ > 0, "max of empty RunningStats");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  BURSTQ_REQUIRE(!xs_.empty(), "mean of empty SampleSet");
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double SampleSet::min() const {
  BURSTQ_REQUIRE(!xs_.empty(), "min of empty SampleSet");
  return *std::min_element(xs_.begin(), xs_.end());
}

double SampleSet::max() const {
  BURSTQ_REQUIRE(!xs_.empty(), "max of empty SampleSet");
  return *std::max_element(xs_.begin(), xs_.end());
}

double SampleSet::quantile(double q) const {
  BURSTQ_REQUIRE(!xs_.empty(), "quantile of empty SampleSet");
  BURSTQ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must lie in [0,1]");
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double SampleSet::ci95_halfwidth() const {
  BURSTQ_REQUIRE(xs_.size() > 1, "ci95 requires at least two observations");
  const double m = mean();
  double ss = 0.0;
  for (double x : xs_) ss += (x - m) * (x - m);
  const double var = ss / static_cast<double>(xs_.size() - 1);
  return 1.959963984540054 * std::sqrt(var / static_cast<double>(xs_.size()));
}

ChiSquareResult chi_square_gof(const std::vector<std::size_t>& counts,
                               const std::vector<double>& expected_probs,
                               double min_expected_fraction) {
  BURSTQ_REQUIRE(counts.size() == expected_probs.size(),
                 "counts and probabilities must align");
  BURSTQ_REQUIRE(counts.size() >= 2, "need at least two bins");
  std::size_t total = 0;
  for (auto c : counts) total += c;
  BURSTQ_REQUIRE(total > 0, "no observations");
  double prob_sum = 0.0;
  for (double p : expected_probs) {
    BURSTQ_REQUIRE(p >= 0.0, "negative expected probability");
    prob_sum += p;
  }
  BURSTQ_REQUIRE(std::abs(prob_sum - 1.0) < 1e-6,
                 "expected probabilities must sum to 1");

  // Pool low-expectation bins left-to-right into a running accumulator.
  std::vector<double> pooled_probs;
  std::vector<double> pooled_counts;
  double acc_p = 0.0;
  double acc_c = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    acc_p += expected_probs[i];
    acc_c += static_cast<double>(counts[i]);
    if (acc_p >= min_expected_fraction) {
      pooled_probs.push_back(acc_p);
      pooled_counts.push_back(acc_c);
      acc_p = 0.0;
      acc_c = 0.0;
    }
  }
  if (acc_p > 0.0 || acc_c > 0.0) {
    if (pooled_probs.empty()) {
      pooled_probs.push_back(acc_p);
      pooled_counts.push_back(acc_c);
    } else {
      pooled_probs.back() += acc_p;
      pooled_counts.back() += acc_c;
    }
  }

  ChiSquareResult r;
  const auto n = static_cast<double>(total);
  for (std::size_t i = 0; i < pooled_probs.size(); ++i) {
    const double expect = n * pooled_probs[i];
    if (expect <= 0.0) continue;
    const double diff = pooled_counts[i] - expect;
    r.statistic += diff * diff / expect;
  }
  r.degrees_of_freedom =
      pooled_probs.size() > 1 ? pooled_probs.size() - 1 : 0;
  return r;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  BURSTQ_REQUIRE(lo < hi, "histogram range must be non-empty");
  BURSTQ_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  double idx = (x - lo_) / width_;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  BURSTQ_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  BURSTQ_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + width_;
}

double Histogram::fraction(std::size_t bin) const {
  BURSTQ_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

}  // namespace burstq
