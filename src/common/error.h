// Error handling policy for burstq.
//
// Precondition violations on the public API throw burstq::InvalidArgument;
// internal invariant breakage throws burstq::InternalError.  Hot loops in
// the simulator use BURSTQ_ASSERT, which compiles to nothing in release
// builds with BURSTQ_DISABLE_ASSERTS defined.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace burstq {

/// Thrown when a caller passes arguments outside a function's documented
/// domain (e.g. probabilities outside (0,1], negative capacities).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a solver backend is (transiently) unavailable — today only
/// by the MapCal fault-injection hook used for chaos testing.  Unlike
/// InvalidArgument this is a *retryable* condition: callers on the
/// recovery path catch it and degrade to a wider reservation instead of
/// aborting (see fault/degrade.h).
class SolverUnavailable : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}

[[noreturn]] inline void throw_internal(const std::string& what) {
  throw InternalError(what);
}

}  // namespace detail

/// Validates a documented precondition of a public entry point.
#define BURSTQ_REQUIRE(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream oss_;                                          \
      oss_ << __func__ << ": requirement failed: " << (msg) << " ["     \
           << #cond << "]";                                             \
      ::burstq::detail::throw_invalid(oss_.str());                      \
    }                                                                   \
  } while (false)

/// Checks an internal invariant; failure indicates a bug in burstq itself.
#if defined(BURSTQ_DISABLE_ASSERTS)
#define BURSTQ_ASSERT(cond, msg) \
  do {                           \
  } while (false)
#else
#define BURSTQ_ASSERT(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream oss_;                                        \
      oss_ << __func__ << ": internal invariant violated: " << (msg)  \
           << " [" << #cond << "]";                                   \
      ::burstq::detail::throw_internal(oss_.str());                   \
    }                                                                 \
  } while (false)
#endif

}  // namespace burstq
