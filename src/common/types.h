// Core value types shared by every burstq subsystem.
//
// The paper treats resource amounts as abstract one-dimensional quantities
// (memory in its evaluation, but explicitly "any one-dimensional resource
// type").  We model amounts as double so that fractional reservations and
// utilization ratios compose without lossy rounding; identifiers are strong
// integer wrappers so a VM index can never be passed where a PM index is
// expected.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace burstq {

/// One-dimensional resource amount (e.g. MB of memory, CPU shares).
using Resource = double;

/// Discrete simulation time, measured in slots of length sigma.
using TimeSlot = std::int64_t;

/// Strongly-typed index.  Tag disambiguates VM vs PM identifiers.
template <typename Tag>
struct Id {
  std::size_t value{invalid_value};

  static constexpr std::size_t invalid_value =
      std::numeric_limits<std::size_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(std::size_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != invalid_value; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

struct VmTag {};
struct PmTag {};

/// Index of a virtual machine within a problem instance.
using VmId = Id<VmTag>;
/// Index of a physical machine within a problem instance.
using PmId = Id<PmTag>;

}  // namespace burstq

template <typename Tag>
struct std::hash<burstq::Id<Tag>> {
  std::size_t operator()(burstq::Id<Tag> id) const noexcept {
    return std::hash<std::size_t>{}(id.value);
  }
};
