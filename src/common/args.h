// Minimal command-line flag parser for the example tools.
//
// Supports "--key value" pairs and boolean "--flag" switches declared up
// front, with typed accessors, defaults, optional single-letter aliases
// ("-n 5"), and a generated usage string.  Deliberately tiny: the CLI
// tools need exactly this and nothing more.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace burstq {

class ArgParser {
 public:
  /// `program` and `description` feed the usage text.
  ArgParser(std::string program, std::string description);

  /// Declares a --key that takes a value.  `help` appears in usage().
  ArgParser& add_option(const std::string& key, const std::string& help,
                        std::optional<std::string> default_value =
                            std::nullopt);

  /// Declares a boolean --key switch (no value).
  ArgParser& add_flag(const std::string& key, const std::string& help);

  /// Registers `-c` as shorthand for an already-declared --key, so
  /// pipe-style tools can take "-n 20" like their unix counterparts.
  ArgParser& add_alias(char c, const std::string& key);

  /// Parses argv.  Returns false (and sets error()) on unknown keys,
  /// missing values, or a missing required option.
  bool parse(int argc, const char* const* argv);

  /// True when the option was supplied or has a default.
  [[nodiscard]] bool has(const std::string& key) const;
  /// String value; throws InvalidArgument when absent.
  [[nodiscard]] std::string get(const std::string& key) const;
  /// Numeric value; throws InvalidArgument when absent or malformed.
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key) const;
  /// Flag state (false when not supplied).
  [[nodiscard]] bool flag(const std::string& key) const;

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag{false};
    std::optional<std::string> default_value;
  };
  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Spec>> specs_;  // declaration order
  std::map<char, std::string> aliases_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::string error_;

  [[nodiscard]] const Spec* find(const std::string& key) const;
};

}  // namespace burstq
