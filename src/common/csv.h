// Minimal RFC-4180-ish CSV writer used by the benchmark harnesses to dump
// figure data series next to the human-readable console tables.

#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace burstq {

/// Streams rows to a CSV file.  Fields containing commas, quotes or
/// newlines are quoted; numeric overloads format with full precision.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating.  Throws InvalidArgument when the
  /// file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Writes one row from string fields.
  void row(std::initializer_list<std::string_view> fields);
  void row(const std::vector<std::string>& fields);

  /// Fluent per-field interface: csv.begin_row().field("a").field(1.5).end_row();
  CsvWriter& begin_row();
  CsvWriter& field(std::string_view s);
  CsvWriter& field(double v);
  CsvWriter& field(std::size_t v);
  CsvWriter& field(long long v);
  void end_row();

  /// Flushes buffered output to disk.
  void flush();

 private:
  void write_field(std::string_view s);

  std::ofstream out_;
  bool row_open_{false};
  bool first_field_{true};
};

/// Escapes one CSV field (exposed for testing).
std::string csv_escape(std::string_view s);

/// Formats a double compactly but round-trippably.
std::string csv_format(double v);

}  // namespace burstq
