// Streaming and batch statistics used by the experiment harnesses.
//
// RunningStats implements Welford's numerically-stable online mean/variance;
// SampleSet keeps the raw observations for percentiles and min/avg/max bars
// (Figure 9 in the paper reports average plus min/max whiskers over 10
// runs); Histogram buckets values for workload-shape diagnostics.

#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace burstq {

/// Welford online accumulator: O(1) memory mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of observations.  Requires count() > 0.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance.  Requires count() > 1.
  [[nodiscard]] double variance() const;
  /// Sample standard deviation.  Requires count() > 1.
  [[nodiscard]] double stddev() const;
  /// Smallest observation.  Requires count() > 0.
  [[nodiscard]] double min() const;
  /// Largest observation.  Requires count() > 0.
  [[nodiscard]] double max() const;
  /// Sum of observations.
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Batch sample container with quantile queries.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated quantile, q in [0,1].  Requires non-empty.
  [[nodiscard]] double quantile(double q) const;
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean.  Requires count() > 1.
  [[nodiscard]] double ci95_halfwidth() const;

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Pearson chi-square goodness-of-fit statistic for observed counts
/// against expected probabilities.  Bins with expected probability below
/// `min_expected_fraction` are pooled into their neighbor to keep the
/// approximation valid.  Returns the statistic and the degrees of freedom
/// (pooled bins - 1); callers compare against a critical value.
struct ChiSquareResult {
  double statistic{0.0};
  std::size_t degrees_of_freedom{0};
};

/// Requires counts.size() == expected_probabilities.size() >= 2, total
/// count > 0, probabilities summing to ~1.
ChiSquareResult chi_square_gof(const std::vector<std::size_t>& counts,
                               const std::vector<double>& expected_probs,
                               double min_expected_fraction = 1e-4);

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  /// Requires lo < hi and bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of all observations landing in `bin`; 0 if empty.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace burstq
