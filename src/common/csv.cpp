#include "common/csv.h"

#include <charconv>
#include <cmath>

#include "common/error.h"

namespace burstq {

std::string csv_escape(std::string_view s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(s);
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_format(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  BURSTQ_REQUIRE(out_.is_open(), "cannot open CSV output file: " + path);
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  begin_row();
  for (auto f : fields) field(f);
  end_row();
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  begin_row();
  for (const auto& f : fields) field(std::string_view{f});
  end_row();
}

CsvWriter& CsvWriter::begin_row() {
  BURSTQ_REQUIRE(!row_open_, "begin_row called with a row already open");
  row_open_ = true;
  first_field_ = true;
  return *this;
}

void CsvWriter::write_field(std::string_view s) {
  BURSTQ_REQUIRE(row_open_, "field written outside begin_row/end_row");
  if (!first_field_) out_ << ',';
  first_field_ = false;
  out_ << csv_escape(s);
}

CsvWriter& CsvWriter::field(std::string_view s) {
  write_field(s);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  write_field(csv_format(v));
  return *this;
}

CsvWriter& CsvWriter::field(std::size_t v) {
  write_field(std::to_string(v));
  return *this;
}

CsvWriter& CsvWriter::field(long long v) {
  write_field(std::to_string(v));
  return *this;
}

void CsvWriter::end_row() {
  BURSTQ_REQUIRE(row_open_, "end_row without begin_row");
  out_ << '\n';
  row_open_ = false;
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace burstq
