#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace burstq {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  BURSTQ_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  BURSTQ_REQUIRE(cells.size() == header_.size(),
                 "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::size_t total = 0;
  for (auto w : width) total += w + 3;

  if (!title_.empty()) {
    os << title_ << '\n';
    os << std::string(std::max<std::size_t>(total, title_.size()), '=')
       << '\n';
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << " | ";
    }
    os << '\n';
  };
  print_row(header_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string ConsoleTable::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string ConsoleTable::num(std::size_t v) { return std::to_string(v); }

std::string ConsoleTable::percent(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << fraction * 100.0
      << '%';
  return oss.str();
}

}  // namespace burstq
