// Console table rendering for benchmark output.
//
// Every bench binary prints the paper's figure/table as aligned rows so the
// reproduction can be eyeballed against the paper without plotting.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace burstq {

/// Accumulates rows of string cells and renders them with aligned columns,
/// a header rule and an optional title banner.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders to the given stream.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Helpers for formatting numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string num(std::size_t v);
  static std::string percent(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace burstq
