#include "common/args.h"

#include <charconv>
#include <sstream>

#include "common/error.h"

namespace burstq {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_option(const std::string& key,
                                 const std::string& help,
                                 std::optional<std::string> default_value) {
  BURSTQ_REQUIRE(find(key) == nullptr, "duplicate option --" + key);
  specs_.emplace_back(key, Spec{help, false, std::move(default_value)});
  return *this;
}

ArgParser& ArgParser::add_flag(const std::string& key,
                               const std::string& help) {
  BURSTQ_REQUIRE(find(key) == nullptr, "duplicate flag --" + key);
  specs_.emplace_back(key, Spec{help, true, std::nullopt});
  return *this;
}

ArgParser& ArgParser::add_alias(char c, const std::string& key) {
  BURSTQ_REQUIRE(find(key) != nullptr,
                 "alias -" + std::string(1, c) + " for undeclared --" + key);
  BURSTQ_REQUIRE(aliases_.emplace(c, key).second,
                 "duplicate alias -" + std::string(1, c));
  return *this;
}

const ArgParser::Spec* ArgParser::find(const std::string& key) const {
  for (const auto& [k, spec] : specs_)
    if (k == key) return &spec;
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  values_.clear();
  flags_.clear();
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    std::string key;
    if (token.rfind("--", 0) == 0) {
      key = token.substr(2);
    } else if (token.size() == 2 && token[0] == '-') {
      const auto it = aliases_.find(token[1]);
      if (it == aliases_.end()) {
        error_ = "unknown option " + token;
        return false;
      }
      key = it->second;
    } else {
      error_ = "unexpected positional argument: " + token;
      return false;
    }
    const Spec* spec = find(key);
    if (spec == nullptr) {
      error_ = "unknown option --" + key;
      return false;
    }
    if (spec->is_flag) {
      flags_[key] = true;
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "option --" + key + " requires a value";
      return false;
    }
    values_[key] = argv[++i];
  }
  return true;
}

bool ArgParser::has(const std::string& key) const {
  if (values_.count(key)) return true;
  const Spec* spec = find(key);
  return spec != nullptr && spec->default_value.has_value();
}

std::string ArgParser::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  const Spec* spec = find(key);
  BURSTQ_REQUIRE(spec != nullptr, "undeclared option --" + key);
  BURSTQ_REQUIRE(spec->default_value.has_value(),
                 "option --" + key + " was not supplied");
  return *spec->default_value;
}

double ArgParser::get_double(const std::string& key) const {
  const std::string s = get(key);
  double v = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  BURSTQ_REQUIRE(res.ec == std::errc{} && res.ptr == s.data() + s.size(),
                 "option --" + key + " expects a number, got '" + s + "'");
  return v;
}

long long ArgParser::get_int(const std::string& key) const {
  const std::string s = get(key);
  long long v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  BURSTQ_REQUIRE(res.ec == std::errc{} && res.ptr == s.data() + s.size(),
                 "option --" + key + " expects an integer, got '" + s + "'");
  return v;
}

bool ArgParser::flag(const std::string& key) const {
  const auto it = flags_.find(key);
  return it != flags_.end() && it->second;
}

std::string ArgParser::usage() const {
  std::ostringstream oss;
  oss << "usage: " << program_ << " [options]\n" << description_ << "\n\n";
  for (const auto& [key, spec] : specs_) {
    oss << "  --" << key;
    for (const auto& [c, aliased] : aliases_)
      if (aliased == key) oss << " | -" << c;
    if (!spec.is_flag) oss << " <value>";
    oss << "  " << spec.help;
    if (spec.default_value) oss << " (default: " << *spec.default_value << ")";
    oss << "\n";
  }
  return oss.str();
}

}  // namespace burstq
