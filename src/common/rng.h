// Deterministic, splittable pseudo-random number generation.
//
// burstq experiments must be reproducible bit-for-bit across runs and
// parallel schedules, so every component that needs randomness receives an
// explicit Rng (xoshiro256**, seeded via SplitMix64).  Rng::split() derives
// an independent child stream, which lets the experiment runner hand one
// stream per trial to worker threads without contention or schedule
// dependence.

#pragma once

#include <array>
#include <cstdint>

#include "common/error.h"

namespace burstq {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed here); period 2^256 - 1, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64, which
  /// guarantees a well-mixed, never-all-zero state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface so <random> distributions compose.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.  Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial: true with probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Geometric variate: number of Bernoulli(p) trials up to and including
  /// the first success; support {1, 2, ...}.  Requires p in (0, 1].
  std::int64_t geometric(double p);

  /// Derives an independent child generator.  The parent is advanced, so
  /// repeated splits yield distinct streams.
  Rng split();

  /// Raw state words, for durable snapshots: restoring via set_state()
  /// resumes the exact stream, so a snapshot-and-replay run draws the
  /// same variates as the uninterrupted one.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    BURSTQ_REQUIRE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
                   "xoshiro state must not be all-zero");
    state_ = s;
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace burstq
