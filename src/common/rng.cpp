#include "common/rng.h"

#include <cmath>

namespace burstq {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used only for seeding / stream derivation.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is the one invalid state; splitmix64 output of any seed
  // cannot produce four zero words in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BURSTQ_REQUIRE(lo <= hi, "uniform bounds must satisfy lo <= hi");
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  BURSTQ_REQUIRE(n > 0, "next_below requires n > 0");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BURSTQ_REQUIRE(lo <= hi, "uniform_int bounds must satisfy lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) {
  BURSTQ_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
  return next_double() < p;
}

double Rng::exponential(double mean) {
  BURSTQ_REQUIRE(mean > 0.0, "exponential requires mean > 0");
  // Inverse CDF; next_double() < 1 so the log argument is in (0, 1].
  return -mean * std::log1p(-next_double());
}

std::int64_t Rng::geometric(double p) {
  BURSTQ_REQUIRE(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
  if (p == 1.0) return 1;
  const double u = 1.0 - next_double();  // in (0, 1]
  return 1 + static_cast<std::int64_t>(std::floor(std::log(u) /
                                                  std::log1p(-p)));
}

Rng Rng::split() {
  // Derive a child seed from fresh output; child re-expands via SplitMix64.
  return Rng(next_u64());
}

}  // namespace burstq
