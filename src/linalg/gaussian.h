// Gaussian elimination, the linear-algebra workhorse of Algorithm 1.
//
// The paper solves the homogeneous system Pi * P = Pi (Eq. 14) by Gaussian
// elimination.  That system is rank-deficient by exactly one (the rows of
// P^T - I sum to zero), so we replace one equation with the normalization
// sum(pi) = 1 and solve the resulting non-singular square system with
// partial pivoting.

#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace burstq {

/// Solves A x = b with partial pivoting.  Returns nullopt when A is
/// (numerically) singular.  Requires A square and b.size() == A.rows().
std::optional<std::vector<double>> solve_linear_system(Matrix a,
                                                       std::vector<double> b);

/// Stationary distribution of a row-stochastic transition matrix P:
/// the probability vector pi with pi P = pi and sum(pi) = 1, obtained by
/// Gaussian elimination on (P^T - I | 0) with the last equation replaced by
/// the normalization row.  This is exactly the paper's Algorithm 1 step 3.
///
/// Requires P square with at least one row.  Throws InvalidArgument when P
/// is not row-stochastic; returns nullopt when elimination degenerates
/// (cannot happen for an irreducible chain, but callers must not crash on
/// adversarial input).  Tiny negative entries produced by roundoff are
/// clamped to zero and the result re-normalized.
std::optional<std::vector<double>> stationary_distribution_gaussian(
    const Matrix& p);

}  // namespace burstq
