// Power iteration on a stochastic matrix: the textbook definition of the
// limiting distribution, Pi = lim Pi0 * P^t (paper Eq. 13), evaluated on
// the damped matrix (P + I)/2 so that periodic chains converge as well
// (the Cesàro-style limit agrees with Eq. 13 whenever Eq. 13's limit
// exists, and extends it to period-2 chains like p_on = p_off = 1).
//
// Algorithm 1 uses Gaussian elimination instead; we keep this direct method
// as an independent oracle (tests assert both agree) and as the baseline in
// bench/ablation_mapcal.

#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace burstq {

struct PowerIterationResult {
  std::vector<double> distribution;  ///< stationary probability vector
  std::size_t iterations{0};         ///< steps until convergence
  double residual{0.0};              ///< final max-abs change per step
};

/// Iterates the *damped* update pi_{t+1} = pi_t (P + I)/2 from
/// pi_0 = (1, 0, ..., 0) until the max-abs change drops below `tol` or
/// `max_iterations` is reached.  (P + I)/2 has the same stationary vector
/// as P but is strictly aperiodic — every eigenvalue lambda of P maps to
/// (1 + lambda)/2, so the -1 mode of a periodic chain no longer
/// oscillates and all valid chains contract.  Returns nullopt only when
/// the iteration budget runs out before `tol` is met (slow-mixing chains
/// whose damped spectral gap is below roughly 30/max_iterations; callers
/// with a known gap should scale the budget or fall back to a direct
/// solver).  On a reducible chain the iteration still converges, but to a
/// pi_0-dependent vector; uniqueness needs irreducibility.
/// Requires P square, row-stochastic.
std::optional<PowerIterationResult> stationary_distribution_power(
    const Matrix& p, double tol = 1e-13, std::size_t max_iterations = 200000);

}  // namespace burstq
