// Power iteration on a stochastic matrix: the textbook definition of the
// limiting distribution, Pi = lim Pi0 * P^t (paper Eq. 13).
//
// Algorithm 1 uses Gaussian elimination instead; we keep this direct method
// as an independent oracle (tests assert both agree) and as the baseline in
// bench/ablation_mapcal.

#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace burstq {

struct PowerIterationResult {
  std::vector<double> distribution;  ///< stationary probability vector
  std::size_t iterations{0};         ///< steps until convergence
  double residual{0.0};              ///< final max-abs change per step
};

/// Iterates pi_{t+1} = pi_t P from pi_0 = (1, 0, ..., 0) until the max-abs
/// change drops below `tol` or `max_iterations` is reached.  Returns
/// nullopt when it fails to converge (periodic or reducible chains).
/// Requires P square, row-stochastic.
std::optional<PowerIterationResult> stationary_distribution_power(
    const Matrix& p, double tol = 1e-13, std::size_t max_iterations = 200000);

}  // namespace burstq
