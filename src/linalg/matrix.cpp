#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace burstq {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    BURSTQ_REQUIRE(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  BURSTQ_REQUIRE(cols_ == rhs.rows_, "shape mismatch in Matrix::multiply");
  Matrix out(rows_, rhs.cols_);
  // ikj loop order: the innermost loop walks both `out` and `rhs`
  // contiguously, which matters even at (d+1)^2 sizes when the consolidator
  // evaluates many k values.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

std::vector<double> Matrix::left_multiply(const std::vector<double>& v) const {
  BURSTQ_REQUIRE(v.size() == rows_, "vector length mismatch in left_multiply");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) out[j] += vi * (*this)(i, j);
  }
  return out;
}

bool Matrix::is_row_stochastic(double tol) const {
  if (rows_ == 0 || rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const double p = (*this)(i, j);
      if (p < -tol) return false;
      sum += p;
    }
    if (std::abs(sum - 1.0) > tol * static_cast<double>(cols_)) return false;
  }
  return true;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  BURSTQ_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

}  // namespace burstq
