#include "linalg/power_iteration.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace burstq {

std::optional<PowerIterationResult> stationary_distribution_power(
    const Matrix& p, double tol, std::size_t max_iterations) {
  BURSTQ_SPAN("linalg.stationary.power");
  const std::size_t n = p.rows();
  BURSTQ_REQUIRE(n > 0 && p.cols() == n, "power iteration needs square P");
  BURSTQ_REQUIRE(p.is_row_stochastic(1e-9), "P must be row-stochastic");

  // Pi0 = (1, 0, ..., 0): the queue starts empty (paper Section IV-B).
  std::vector<double> pi(n, 0.0);
  pi[0] = 1.0;

  for (std::size_t it = 1; it <= max_iterations; ++it) {
    std::vector<double> next = p.left_multiply(pi);
    // Damped step: pi (P + I)/2.  Same fixed point as P, but strictly
    // aperiodic — periodic chains (e.g. theta(t) at p_on = p_off = 1,
    // whose Pi0 P^t oscillates forever) now converge too.
    for (std::size_t i = 0; i < n; ++i) next[i] = 0.5 * (next[i] + pi[i]);
    // Re-normalize to damp accumulated roundoff drift.
    double sum = 0.0;
    for (double v : next) sum += v;
    for (double& v : next) v /= sum;

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      delta = std::max(delta, std::abs(next[i] - pi[i]));
    pi = std::move(next);
    if (delta < tol) {
      BURSTQ_HIST("linalg.power.iterations", it);
      return PowerIterationResult{std::move(pi), it, delta};
    }
  }
  return std::nullopt;
}

}  // namespace burstq
