#include "linalg/gaussian.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace burstq {

std::optional<std::vector<double>> solve_linear_system(Matrix a,
                                                       std::vector<double> b) {
  BURSTQ_SPAN("linalg.gaussian.solve");
  const std::size_t n = a.rows();
  BURSTQ_REQUIRE(a.cols() == n, "solve_linear_system requires a square A");
  BURSTQ_REQUIRE(b.size() == n, "right-hand side length mismatch");
  BURSTQ_COUNT("linalg.gaussian.solves", 1);
  BURSTQ_HIST("linalg.gaussian.n", n);

  // Forward elimination with partial (row) pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(a(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-13) return std::nullopt;  // numerically singular
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv_pivot = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_pivot;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

std::optional<std::vector<double>> stationary_distribution_gaussian(
    const Matrix& p) {
  BURSTQ_SPAN("linalg.stationary.gaussian");
  BURSTQ_COUNT("linalg.stationary.solves", 1);
  const std::size_t n = p.rows();
  BURSTQ_REQUIRE(n > 0 && p.cols() == n,
                 "stationary distribution needs a square non-empty P");
  BURSTQ_REQUIRE(p.is_row_stochastic(1e-9),
                 "P must be row-stochastic for a stationary distribution");

  // Build (P^T - I); replace the final row with the normalization equation
  // sum(pi) = 1, restoring full rank.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = p(j, i) - (i == j ? 1.0 : 0.0);
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;

  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;

  auto x = solve_linear_system(std::move(a), std::move(b));
  if (!x) return std::nullopt;

  // Clamp roundoff negatives and re-normalize so downstream CDF sums are
  // well-behaved probabilities.
  double sum = 0.0;
  for (double& v : *x) {
    if (v < 0.0) {
      BURSTQ_ASSERT(v > -1e-9, "stationary solve produced a large negative");
      v = 0.0;
    }
    sum += v;
  }
  if (sum <= 0.0) return std::nullopt;
  for (double& v : *x) v /= sum;
  return x;
}

}  // namespace burstq
