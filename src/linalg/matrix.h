// Dense row-major matrix of doubles.
//
// Sized for the paper's workload: transition matrices are (k+1)x(k+1) with
// k <= d (the per-PM VM cap, 16 in the evaluation), so simplicity and
// cache-friendly contiguous storage beat any sparse representation.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/error.h"

namespace burstq {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Construction from nested braces: Matrix{{1,2},{3,4}}.  All rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    BURSTQ_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    BURSTQ_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Matrix product; requires cols() == rhs.rows().
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Transpose.
  [[nodiscard]] Matrix transposed() const;

  /// Row-vector * matrix: result[j] = sum_i v[i] * M(i, j).
  /// Requires v.size() == rows().
  [[nodiscard]] std::vector<double> left_multiply(
      const std::vector<double>& v) const;

  /// True when every row sums to 1 within tol and entries are >= -tol.
  [[nodiscard]] bool is_row_stochastic(double tol = 1e-12) const;

  /// Max-abs elementwise difference; requires equal shapes.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

}  // namespace burstq
