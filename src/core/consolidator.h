// Consolidator — the top-level facade of burstq.
//
// Wraps placement (Algorithm 2 plus the paper's baselines), analytic
// reservation reporting, and simulation behind one object a downstream
// user configures once.  Typical use:
//
//   burstq::Consolidator c;                    // paper-default options
//   auto outcome = c.place(instance, burstq::Strategy::kQueue);
//   auto analysis = c.analyze(instance, outcome.placement);
//   auto report = c.simulate(instance, outcome.placement, simcfg, seed);

#pragma once

#include <cstdint>
#include <vector>

#include "placement/baselines.h"
#include "placement/hetero_ffd.h"
#include "placement/quantile_ffd.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"
#include "sim/cluster_sim.h"

namespace burstq {

/// Per-PM analytic view of a placement under the reservation rule.
struct PmAnalysis {
  std::size_t pm{0};
  std::size_t vms{0};           ///< k
  std::size_t blocks{0};        ///< mapping(k)
  Resource block_size{0.0};     ///< max Re of hosted VMs
  Resource reserved{0.0};       ///< blocks * block_size
  Resource rb_sum{0.0};
  Resource capacity{0.0};
  double cvr_bound{0.0};        ///< analytic CVR (Eq. 16)
  double utilization_normal{0.0};  ///< rb_sum / capacity
};

struct PlacementAnalysis {
  std::vector<PmAnalysis> pms;  ///< used PMs only
  std::size_t pms_used{0};
  Resource total_reserved{0.0};
  double worst_cvr_bound{0.0};

  /// Consolidation ratio versus a reference PM count (e.g. RP's):
  /// 1 - used/reference.
  [[nodiscard]] double savings_vs(std::size_t reference_pms) const;
};

class Consolidator {
 public:
  explicit Consolidator(QueuingFfdOptions options = {});

  /// Runs the chosen strategy.  kQueue is Algorithm 2; kReserved uses
  /// `delta` (others ignore it).
  [[nodiscard]] PlacementResult place(const ProblemInstance& inst,
                                      Strategy strategy,
                                      double delta = 0.3) const;

  /// Analytic per-PM report for any placement (the mapping table is built
  /// from the instance's rounded parameters and the configured rho/d).
  [[nodiscard]] PlacementAnalysis analyze(const ProblemInstance& inst,
                                          const Placement& placement) const;

  /// Simulates a placement with the dynamic scheduler.
  [[nodiscard]] SimReport simulate(const ProblemInstance& inst,
                                   const Placement& placement,
                                   const SimConfig& config,
                                   std::uint64_t seed) const;

  [[nodiscard]] const QueuingFfdOptions& options() const { return options_; }

 private:
  QueuingFfdOptions options_;
};

}  // namespace burstq
