#include "core/consolidator.h"

#include <algorithm>

#include "common/error.h"

namespace burstq {

double PlacementAnalysis::savings_vs(std::size_t reference_pms) const {
  if (reference_pms == 0) return 0.0;
  return 1.0 - static_cast<double>(pms_used) /
                   static_cast<double>(reference_pms);
}

Consolidator::Consolidator(QueuingFfdOptions options) : options_(options) {
  options_.validate();
}

PlacementResult Consolidator::place(const ProblemInstance& inst,
                                    Strategy strategy, double delta) const {
  switch (strategy) {
    case Strategy::kQueue:
      return queuing_ffd(inst, options_).result;
    case Strategy::kPeak:
      return ffd_by_peak(inst, options_.max_vms_per_pm);
    case Strategy::kNormal:
      return ffd_by_normal(inst, options_.max_vms_per_pm);
    case Strategy::kReserved:
      return ffd_reserved(inst, delta, options_.max_vms_per_pm);
    case Strategy::kSbp:
      return sbp_normal(inst, options_.rho, options_.max_vms_per_pm);
    case Strategy::kHetero: {
      HeteroFfdOptions hopt;
      hopt.rho = options_.rho;
      hopt.max_vms_per_pm = options_.max_vms_per_pm;
      hopt.cluster_buckets = options_.cluster_buckets;
      return queuing_ffd_hetero(inst, hopt);
    }
    case Strategy::kQuantile: {
      QuantileFfdOptions qopt;
      qopt.reservation.rho = options_.rho;
      qopt.max_vms_per_pm = options_.max_vms_per_pm;
      qopt.cluster_buckets = options_.cluster_buckets;
      return queuing_ffd_quantile(inst, qopt);
    }
  }
  BURSTQ_ASSERT(false, "unknown Strategy");
  return ffd_by_peak(inst, options_.max_vms_per_pm);
}

PlacementAnalysis Consolidator::analyze(const ProblemInstance& inst,
                                        const Placement& placement) const {
  inst.validate();
  const OnOffParams params =
      round_uniform_params(inst.vms, options_.rounding);
  // The analysis table must cover the largest actual co-location, which a
  // non-QUEUE placement may push past the configured d.
  std::size_t max_k = options_.max_vms_per_pm;
  for (std::size_t j = 0; j < placement.n_pms(); ++j)
    max_k = std::max(max_k, placement.count_on(PmId{j}));
  const MapCalTable table(max_k, params, options_.rho, options_.method);

  PlacementAnalysis out;
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    const PmId pm{j};
    const std::size_t k = placement.count_on(pm);
    if (k == 0) continue;
    PmAnalysis a;
    a.pm = j;
    a.vms = k;
    a.blocks = table.blocks(k);
    a.block_size = max_re_on(inst, placement, pm);
    a.reserved = a.block_size * static_cast<double>(a.blocks);
    a.rb_sum = total_rb_on(inst, placement, pm);
    a.capacity = inst.pms[j].capacity;
    a.cvr_bound = table.cvr_bound(k);
    a.utilization_normal = a.rb_sum / a.capacity;
    out.total_reserved += a.reserved;
    out.worst_cvr_bound = std::max(out.worst_cvr_bound, a.cvr_bound);
    out.pms.push_back(a);
  }
  out.pms_used = out.pms.size();
  return out;
}

SimReport Consolidator::simulate(const ProblemInstance& inst,
                                 const Placement& placement,
                                 const SimConfig& config,
                                 std::uint64_t seed) const {
  ClusterSimulator sim(inst, placement, config, Rng(seed));
  return sim.run();
}

}  // namespace burstq
