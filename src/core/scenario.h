// Experiment scenarios: the paper's workload patterns and Table I.
//
// Section V distinguishes three spike patterns — Rb = Re (normal spikes),
// Rb > Re (small spikes), Rb < Re (large spikes) — realized two ways:
//   * Figure 5/6: Rb, Re drawn uniformly from per-pattern ranges,
//     capacities from [80, 100]
//   * Figure 9/10 (Table I): small/medium/large classes sized by how many
//     web users a VM accommodates (400/800/1600 normal), with specific
//     (Rb class, Re class) combinations per pattern
// One resource unit corresponds to 100 users (so "small" = 4 units).

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "placement/spec.h"

namespace burstq {

enum class SpikePattern {
  kEqual,       ///< Rb = Re, "normal spike size"
  kSmallSpike,  ///< Rb > Re, "small spike size"
  kLargeSpike,  ///< Rb < Re, "large spike size"
};

/// All three patterns, in the paper's presentation order.
std::vector<SpikePattern> all_patterns();

/// Display name, e.g. "Rb=Re (normal spikes)".
std::string pattern_name(SpikePattern p);

/// The Figure 5 uniform ranges for a pattern:
///   Rb = Re:  Rb, Re in [2, 20]
///   Rb > Re:  Rb in [12, 20], Re in [2, 10]
///   Rb < Re:  Rb in [2, 10],  Re in [12, 20]
/// with capacity in [80, 100] for every pattern.
InstanceRanges ranges_for_pattern(SpikePattern p);

/// The paper's default burstiness: p_on = 0.01, p_off = 0.09
/// ("spikes usually occur with low frequency and last shortly").
OnOffParams paper_onoff_params();

/// One row of Table I.
struct TableIRow {
  SpikePattern pattern;
  std::string rb_class;       ///< "small" / "medium" / "large"
  std::string re_class;
  Resource rb;                ///< resource units (users / 100)
  Resource re;
  std::size_t normal_users;   ///< users accommodated at normal capability
  std::size_t peak_users;     ///< users accommodated at peak capability
};

/// The seven Table I rows.
std::vector<TableIRow> table_i();

/// The Table I rows belonging to one pattern.
std::vector<TableIRow> table_i_rows(SpikePattern p);

/// Builds a Figure-9-style instance: n VMs drawn uniformly from the
/// pattern's Table I rows, m PMs with capacity uniform in
/// [ranges.capacity_lo, ranges.capacity_hi) (the InstanceRanges defaults
/// reproduce the paper's [80, 100]), shared OnOffParams.  Capacity is
/// routed through InstanceRanges so scenario files and the Figure 5
/// generator share one source of truth instead of a second hardcoded
/// range.
ProblemInstance table_i_instance(SpikePattern p, std::size_t n_vms,
                                 std::size_t n_pms,
                                 const OnOffParams& params, Rng& rng,
                                 const InstanceRanges& ranges =
                                     InstanceRanges{});

/// Builds a Figure-5-style instance from the pattern's uniform ranges.
ProblemInstance pattern_instance(SpikePattern p, std::size_t n_vms,
                                 std::size_t n_pms,
                                 const OnOffParams& params, Rng& rng);

}  // namespace burstq
