#include "core/controller.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "durable/state_codec.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "placement/budget.h"
#include "placement/incremental.h"
#include "placement/placement.h"

namespace burstq {

void ControllerConfig::validate() const {
  ffd.validate();
  policy.validate();
  power.validate();
  recovery.validate();
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
}

CloudController::CloudController(std::vector<PmSpec> pms,
                                 ControllerConfig config, Rng rng)
    : pms_(std::move(pms)),
      config_(config),
      rng_(rng),
      table_(config.ffd.max_vms_per_pm, OnOffParams{}, config.ffd.rho,
             config.ffd.method),
      on_pm_(pms_.size()),
      up_(pms_.size(), 1),
      tracker_(pms_.empty() ? 1 : pms_.size(), config.policy.cvr_window),
      meter_(config.power, config.sigma_seconds) {
  BURSTQ_REQUIRE(!pms_.empty(), "controller needs at least one PM");
  config_.validate();
  for (const auto& p : pms_) p.validate();
  BURSTQ_REQUIRE(config_.slo == nullptr ||
                     config_.slo->n_pms() == pms_.size(),
                 "SLO tracker PM count must match the fleet");
  index_.reset(pms_.size(), config_.ffd.sharded.shards);
  refresh_all_keys();
}

std::size_t CloudController::next_home() {
  const std::size_t home = route_seq_ % index_.shard_count();
  ++route_seq_;
  return home;
}

void CloudController::refresh_key(PmId pm) {
  if (!up_[pm.value]) {
    index_.set_key(pm.value, -std::numeric_limits<double>::infinity());
    return;
  }
  // The controller keeps no per-PM aggregate caches (the hosted lists are
  // short — at most d = max_vms_per_pm entries), so the key is recomputed
  // by a bounded walk.
  Resource rb_sum = 0.0;
  Resource re_max = 0.0;
  for (std::size_t s : on_pm_[pm.value]) {
    rb_sum += tenants_[s].spec.rb;
    re_max = std::max(re_max, tenants_[s].spec.re);
  }
  index_.set_key(pm.value,
                 conservative_admit_key(pms_[pm.value].capacity,
                                        on_pm_[pm.value].size(), rb_sum,
                                        re_max, table_));
}

void CloudController::refresh_all_keys() {
  for (std::size_t j = 0; j < pms_.size(); ++j) refresh_key(PmId{j});
}

std::vector<VmSpec> CloudController::hosted_specs(PmId pm) const {
  std::vector<VmSpec> out;
  out.reserve(on_pm_[pm.value].size());
  for (std::size_t s : on_pm_[pm.value]) out.push_back(tenants_[s].spec);
  return out;
}

std::optional<PmId> CloudController::first_fit(const VmSpec& vm,
                                               std::size_t home, PmId skip) {
  const auto outcome = index_.route(
      vm.rb, home,
      [&](std::size_t j) {
        if (skip.valid() && j == skip.value) return false;
        // Down PMs never reach here: their key is -inf.
        return fits_with_reservation_specs(hosted_specs(PmId{j}), vm,
                                           pms_[j].capacity, table_);
      },
      config_.ffd.sharded.decision_budget);
  if (outcome.budget_exhausted)
    BURSTQ_COUNT("placement.shard.budget_exhausted", 1);
  if (outcome.pm == ShardedAdmitIndex::npos) return std::nullopt;
  return PmId{outcome.pm};
}

std::optional<TenantId> CloudController::admit(const VmSpec& vm) {
  vm.validate();
  const auto pm = first_fit(vm, next_home());
  if (!pm) {
    ++stats_.rejections;
    return std::nullopt;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = tenants_.size();
    tenants_.emplace_back();
  }
  Tenant& t = tenants_[slot];
  t.spec = vm;
  t.chain = OnOffChain(vm.onoff);
  t.chain.reset_stationary(rng_);
  t.pm = *pm;
  t.live = true;
  on_pm_[pm->value].push_back(slot);
  refresh_key(*pm);
  ++stats_.admissions;
  ++stats_.vms_hosted;
  return TenantId{slot};
}

void CloudController::depart(TenantId id) {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "depart on an invalid or dead tenant");
  Tenant& t = tenants_[id.slot];
  if (t.pm.valid()) {
    auto& list = on_pm_[t.pm.value];
    const auto it = std::find(list.begin(), list.end(), id.slot);
    BURSTQ_ASSERT(it != list.end(), "controller PM lists out of sync");
    list.erase(it);
    refresh_key(t.pm);
  } else {
    // Parked in the post-crash admission queue; departing just removes it.
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [&](const QueuedTenant& q) { return q.slot == id.slot; });
    BURSTQ_ASSERT(it != queue_.end(), "unplaced tenant missing from queue");
    queue_.erase(it);
  }
  t.live = false;
  free_slots_.push_back(id.slot);
  ++stats_.departures;
  --stats_.vms_hosted;
}

bool CloudController::resize(TenantId id, const VmSpec& new_spec) {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "resize on an invalid or dead tenant");
  new_spec.validate();
  Tenant& t = tenants_[id.slot];
  const bool chain_restart = !(t.spec.onoff.p_on == new_spec.onoff.p_on &&
                               t.spec.onoff.p_off == new_spec.onoff.p_off);

  if (!t.pm.valid()) {
    // Parked in the post-crash queue: just swap the spec; the queue drain
    // re-places it under the new size.
    t.spec = new_spec;
  } else {
    const PmId pm = t.pm;
    // Fast path: the current PM still satisfies Eq. (17) with the
    // resized spec alongside its unchanged co-residents.
    std::vector<VmSpec> others;
    others.reserve(on_pm_[pm.value].size() - 1);
    for (std::size_t s : on_pm_[pm.value])
      if (s != id.slot) others.push_back(tenants_[s].spec);
    if (fits_with_reservation_specs(others, new_spec, pms_[pm.value].capacity,
                                    table_)) {
      t.spec = new_spec;
      refresh_key(pm);
    } else {
      // Detach, then route the resized tenant with its current PM's shard
      // as home (locality-preserving and deterministic).
      auto& list = on_pm_[pm.value];
      list.erase(std::find(list.begin(), list.end(), id.slot));
      refresh_key(pm);
      const auto target = first_fit(new_spec, index_.shard_of(pm.value));
      if (!target) {
        // Roll back: the original spec on the original PM is always
        // feasible (that exact hosted set satisfied Eq. 17 before).
        on_pm_[pm.value].push_back(id.slot);
        refresh_key(pm);
        ++stats_.resize_rejections;
        BURSTQ_COUNT("controller.resize.rejected", 1);
        return false;
      }
      t.spec = new_spec;
      t.pm = *target;
      on_pm_[target->value].push_back(id.slot);
      refresh_key(*target);
      ++stats_.resize_migrations;
      BURSTQ_COUNT("controller.resize.moved", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "resize.migrate",
                   {"t", stats_.slots}, {"tenant", id.slot},
                   {"from", pm.value}, {"to", target->value});
    }
  }

  if (chain_restart) {
    t.chain = OnOffChain(new_spec.onoff);
    t.chain.reset_stationary(rng_);
  }
  ++stats_.resizes;
  BURSTQ_COUNT("controller.resizes", 1);
  return true;
}

void CloudController::inject_pm_crash(PmId pm) {
  BURSTQ_REQUIRE(pm.valid() && pm.value < pms_.size(),
                 "inject_pm_crash on an out-of-range PM");
  if (!up_[pm.value]) return;
  up_[pm.value] = 0;
  refresh_key(pm);  // -inf: routing skips the dead host entirely
  ++stats_.pm_crashes;
  BURSTQ_COUNT("fault.pm.crashes", 1);
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.pm.crash",
               {"t", stats_.slots}, {"pm", pm.value});

  // Evacuate: the crashed PM's list is consumed up front so first_fit
  // never counts the dead host's tenants against anything.
  const std::vector<std::size_t> victims = std::move(on_pm_[pm.value]);
  on_pm_[pm.value].clear();
  for (std::size_t s : victims) {
    Tenant& t = tenants_[s];
    t.pm = PmId{};
    if (const auto target = first_fit(t.spec, 0)) {
      t.pm = *target;
      on_pm_[target->value].push_back(s);
      refresh_key(*target);
      ++stats_.evacuations;
      BURSTQ_COUNT("fault.evacuations", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.evacuate",
                   {"t", stats_.slots}, {"tenant", s}, {"from", pm.value},
                   {"to", target->value});
    } else {
      queue_.push_back(QueuedTenant{
          s, 0, stats_.slots + config_.recovery.backoff_base_slots});
      ++stats_.evac_queued;
      BURSTQ_COUNT("fault.queue.enqueued", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.queue.enqueue",
                   {"t", stats_.slots}, {"tenant", s},
                   {"reason", "no-feasible-pm"});
    }
  }
}

void CloudController::inject_pm_recover(PmId pm) {
  BURSTQ_REQUIRE(pm.valid() && pm.value < pms_.size(),
                 "inject_pm_recover on an out-of-range PM");
  if (up_[pm.value]) return;
  up_[pm.value] = 1;
  refresh_key(pm);
  ++stats_.pm_recoveries;
  BURSTQ_COUNT("fault.pm.recoveries", 1);
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.pm.recover",
               {"t", stats_.slots}, {"pm", pm.value});
}

std::size_t CloudController::backoff_delay(std::size_t retries) const {
  const std::size_t cap = config_.recovery.backoff_cap_slots;
  std::size_t delay = config_.recovery.backoff_base_slots;
  const std::size_t exponent =
      std::min(retries, config_.recovery.max_retries);
  for (std::size_t i = 0; i < exponent && delay < cap; ++i) delay *= 2;
  return std::min(delay, cap);
}

void CloudController::drain_queue() {
  for (auto& q : queue_) {
    if (q.next_attempt > stats_.slots) continue;
    ++q.retries;
    ++stats_.retries;
    BURSTQ_COUNT("migration.retries", 1);
    Tenant& t = tenants_[q.slot];
    if (const auto target = first_fit(t.spec, 0)) {
      t.pm = *target;
      on_pm_[target->value].push_back(q.slot);
      refresh_key(*target);
      BURSTQ_COUNT("fault.queue.drained", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.queue.admit",
                   {"t", stats_.slots}, {"tenant", q.slot},
                   {"pm", target->value}, {"retries", q.retries});
      q.slot = static_cast<std::size_t>(-1);  // admitted; erased below
    } else {
      q.next_attempt = stats_.slots + backoff_delay(q.retries);
    }
  }
  std::erase_if(queue_, [](const QueuedTenant& q) {
    return q.slot == static_cast<std::size_t>(-1);
  });
}

bool CloudController::fleet_degraded() const {
  return !queue_.empty() ||
         std::find(up_.begin(), up_.end(), std::uint8_t{0}) != up_.end();
}

void CloudController::run_scheduler(const std::vector<Resource>& /*load*/,
                                    std::vector<Resource>& mutable_load) {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const PmId source{j};
    if (on_pm_[j].empty()) continue;
    if (tracker_.windowed_cvr(source) <= config_.policy.rho) continue;

    // Victim: the spiking tenant with the largest demand, falling back
    // to the largest-demand tenant overall (same rule as select_victim).
    std::size_t best_on = 0;
    double best_on_demand = -1.0;
    std::size_t best_any = on_pm_[j].front();
    double best_any_demand = -1.0;
    for (std::size_t s : on_pm_[j]) {
      const Tenant& t = tenants_[s];
      const double d = t.spec.demand(t.chain.state());
      if (t.chain.on() && d > best_on_demand) {
        best_on_demand = d;
        best_on = s;
      }
      if (d > best_any_demand) {
        best_any_demand = d;
        best_any = s;
      }
    }
    const std::size_t victim_slot =
        best_on_demand >= 0.0 ? best_on : best_any;
    Tenant& victim = tenants_[victim_slot];
    const double vdemand = victim.spec.demand(victim.chain.state());

    // Target: reservation-aware by default in the controller — this is
    // the burstiness-aware component an operator deploys.  Routed through
    // the shard index like an arrival, skipping the violating source.
    const std::optional<PmId> target = first_fit(victim.spec, 0, source);
    if (target) {
      auto& list = on_pm_[j];
      list.erase(std::find(list.begin(), list.end(), victim_slot));
      on_pm_[target->value].push_back(victim_slot);
      victim.pm = *target;
      refresh_key(source);
      refresh_key(*target);
      mutable_load[j] -= vdemand;
      mutable_load[target->value] += vdemand;
      ++stats_.runtime_migrations;
      tracker_.reset_window(source);
      tracker_.reset_window(*target);
    } else {
      ++stats_.failed_migrations;
      tracker_.reset_window(source);
    }
  }
}

void CloudController::run_maintenance() {
  ++stats_.maintenance_windows;
  if (stats_.vms_hosted == 0) return;

  // Recalibrate the mapping table to the current population (IV-E).
  std::vector<VmSpec> live;
  std::vector<std::size_t> slot_of;  // compact index -> tenant slot
  live.reserve(stats_.vms_hosted);
  for (std::size_t s = 0; s < tenants_.size(); ++s) {
    if (!tenants_[s].live) continue;
    live.push_back(tenants_[s].spec);
    slot_of.push_back(s);
  }
  const OnOffParams rounded =
      round_uniform_params(live, config_.ffd.rounding);
  try {
    table_ = MapCalTable(config_.ffd.max_vms_per_pm, rounded,
                         config_.ffd.rho, config_.ffd.method);
    table_params_ = rounded;
  } catch (const SolverUnavailable&) {
    // Solver outage mid-maintenance: keep consolidating with the previous
    // (stale but sound) table rather than aborting the window.
    ++stats_.degraded_maintenance;
    BURSTQ_COUNT("fault.solver.degraded", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.solver.degrade",
                 {"t", stats_.slots}, {"level", "stale-table"});
  }

  // Compact instance + placement view for the budget consolidator.
  ProblemInstance inst;
  inst.vms = live;
  inst.pms = pms_;
  Placement view(live.size(), pms_.size());
  for (std::size_t i = 0; i < live.size(); ++i)
    view.assign(VmId{i}, tenants_[slot_of[i]].pm);

  const auto result = consolidate_with_budget(
      inst, view, table_, config_.maintenance_budget);

  // Apply the executed moves back to the live fleet.
  for (const auto& move : result.moves) {
    const std::size_t s = slot_of[move.vm.value];
    auto& from_list = on_pm_[move.from.value];
    from_list.erase(std::find(from_list.begin(), from_list.end(), s));
    on_pm_[move.to.value].push_back(s);
    tenants_[s].pm = move.to;
    ++stats_.maintenance_migrations;
  }

  // The table may have changed and the moves touched many PMs: rebuild
  // every admissibility key once, at the end of the window.
  refresh_all_keys();
}

void CloudController::tick() {
  ++stats_.slots;

  // 1. Workload evolution + demands.
  std::vector<Resource> load(pms_.size(), 0.0);
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    for (std::size_t s : on_pm_[j]) {
      Tenant& t = tenants_[s];
      t.chain.step(rng_);
      load[j] += t.spec.demand(t.chain.state());
    }
  }

  // 2. Violation bookkeeping.
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    if (on_pm_[j].empty()) continue;
    const bool violated =
        load[j] > pms_[j].capacity * (1.0 + kCapacityEpsilon);
    tracker_.record(PmId{j}, violated);
    if (config_.slo != nullptr) config_.slo->record(PmId{j}, violated);
  }
  if (config_.slo != nullptr) config_.slo->end_slot();

  // 3. Dynamic scheduling.
  run_scheduler(load, load);

  // 3b. Crash victims whose backoff expired retry placement.
  if (!queue_.empty()) drain_queue();

  // 4. Energy.
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    if (on_pm_[j].empty()) continue;
    meter_.add_pm_slot(load[j] / pms_[j].capacity);
  }

  // 5. Maintenance window — deferred while the fleet is degraded (a down
  // PM or queued tenants): consolidation would fight the recovery path
  // and the compact placement view below requires every tenant placed.
  if (config_.maintenance_every > 0 && !fleet_degraded() &&
      stats_.slots % config_.maintenance_every == 0)
    run_maintenance();

  stats_.pms_used = pms_used();
  stats_.mean_cvr = tracker_.mean_cvr();
  stats_.max_cvr = tracker_.max_cvr();
  stats_.energy_wh = meter_.watt_hours();
}

std::size_t CloudController::pms_used() const {
  std::size_t used = 0;
  for (const auto& list : on_pm_)
    if (!list.empty()) ++used;
  return used;
}

PmId CloudController::pm_of(TenantId id) const {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "pm_of on an invalid or dead tenant");
  return tenants_[id.slot].pm;
}

const VmSpec& CloudController::spec_of(TenantId id) const {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "spec_of on an invalid or dead tenant");
  return tenants_[id.slot].spec;
}

bool CloudController::reservation_invariant_holds() const {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const auto hosted = hosted_specs(PmId{j});
    if (!up_[j] && !hosted.empty()) return false;  // dead PMs host nothing
    if (hosted.empty()) continue;
    if (hosted.size() > table_.max_vms_per_pm()) return false;
    if (reserved_footprint_specs(hosted, table_) >
        pms_[j].capacity * (1.0 + kCapacityEpsilon))
      return false;
  }
  // Recovery invariant: every live tenant is placed on an up PM or queued.
  for (std::size_t s = 0; s < tenants_.size(); ++s) {
    const Tenant& t = tenants_[s];
    if (!t.live) continue;
    if (t.pm.valid()) {
      if (!up_[t.pm.value]) return false;
    } else if (std::none_of(
                   queue_.begin(), queue_.end(),
                   [s](const QueuedTenant& q) { return q.slot == s; })) {
      return false;
    }
  }
  return true;
}

namespace {

/// Digest of the construction arguments the blob does NOT carry: a
/// restore into a differently-configured controller must fail loudly,
/// not deserialize garbage.
std::uint32_t controller_config_crc(const std::vector<PmSpec>& pms,
                                    const ControllerConfig& config) {
  durable::StateWriter cfg;
  cfg.varint(pms.size());
  for (const PmSpec& p : pms) cfg.f64(p.capacity);
  cfg.varint(config.ffd.max_vms_per_pm);
  cfg.f64(config.ffd.rho);
  cfg.varint(config.ffd.sharded.shards);
  cfg.varint(config.policy.cvr_window);
  cfg.varint(config.maintenance_every);
  cfg.boolean(config.slo != nullptr);
  return obs::trace_detail::crc32(cfg.data());
}

}  // namespace

std::string CloudController::export_state() const {
  durable::StateWriter w;
  w.u64(1);  // blob version
  w.u32(controller_config_crc(pms_, config_));

  for (const std::uint64_t s : rng_.state()) w.u64(s);
  w.f64(table_params_.p_on);
  w.f64(table_params_.p_off);

  w.varint(tenants_.size());
  for (const Tenant& t : tenants_) {
    w.boolean(t.live);
    if (!t.live) continue;  // the slot is on the free list
    w.f64(t.spec.onoff.p_on);
    w.f64(t.spec.onoff.p_off);
    w.f64(t.spec.rb);
    w.f64(t.spec.re);
    w.u8(static_cast<std::uint8_t>(t.chain.state()));
    w.varint(t.pm.valid() ? t.pm.value + 1 : 0);
  }
  w.size_vec(free_slots_);
  w.varint(on_pm_.size());
  for (const auto& list : on_pm_) w.size_vec(list);
  w.varint(up_.size());
  for (const std::uint8_t b : up_) w.u8(b);
  w.varint(route_seq_);

  w.varint(queue_.size());
  for (const QueuedTenant& q : queue_) {
    w.varint(q.slot);
    w.varint(q.retries);
    w.varint(q.next_attempt);
  }

  const CvrTrackerState ts = tracker_.export_state();
  w.varint(ts.pms.size());
  for (const auto& pm : ts.pms) {
    w.varint(pm.observed);
    w.varint(pm.violated);
    w.varint(pm.window.size());
    for (const std::uint8_t b : pm.window) w.u8(b);
  }
  w.f64(meter_.joules());

  w.varint(stats_.slots);
  w.varint(stats_.vms_hosted);
  w.varint(stats_.pms_used);
  w.varint(stats_.admissions);
  w.varint(stats_.rejections);
  w.varint(stats_.departures);
  w.varint(stats_.resizes);
  w.varint(stats_.resize_migrations);
  w.varint(stats_.resize_rejections);
  w.varint(stats_.runtime_migrations);
  w.varint(stats_.maintenance_migrations);
  w.varint(stats_.failed_migrations);
  w.varint(stats_.maintenance_windows);
  w.varint(stats_.pm_crashes);
  w.varint(stats_.pm_recoveries);
  w.varint(stats_.evacuations);
  w.varint(stats_.evac_queued);
  w.varint(stats_.retries);
  w.varint(stats_.degraded_maintenance);
  w.f64(stats_.mean_cvr);
  w.f64(stats_.max_cvr);
  w.f64(stats_.energy_wh);

  w.boolean(config_.slo != nullptr);
  if (config_.slo != nullptr) {
    const obs::SloTrackerState ss = config_.slo->export_state();
    w.varint(ss.pms.size());
    for (const auto& pm : ss.pms) {
      w.varint(pm.observed);
      w.varint(pm.violated);
      w.varint(pm.ring.size());
      for (const std::uint8_t b : pm.ring) w.u8(b);
      w.varint(pm.ring_observed);
      w.varint(pm.ring_violated);
    }
    w.varint(ss.cur.size());
    for (const std::uint8_t b : ss.cur) w.u8(b);
    w.varint(ss.cluster_ring.size());
    for (const auto& [o, v] : ss.cluster_ring) {
      w.u32(o);
      w.u32(v);
    }
    w.varint(ss.slots);
    w.varint(ss.fast_obs);
    w.varint(ss.fast_viol);
    w.varint(ss.slow_obs);
    w.varint(ss.slow_viol);
    w.varint(ss.cum_obs);
    w.varint(ss.cum_viol);
    w.varint(ss.breaches);
    w.boolean(ss.breaching);
  }

  return w.take();
}

void CloudController::import_state(std::string_view blob) {
  durable::StateReader r(blob, "controller state");
  if (r.u64() != 1) r.fail("unsupported controller state version");
  if (r.u32() != controller_config_crc(pms_, config_))
    r.fail("construction arguments do not match the stored state");

  std::array<std::uint64_t, 4> rs{};
  for (std::uint64_t& s : rs) s = r.u64();
  rng_.set_state(rs);
  table_params_.p_on = r.f64();
  table_params_.p_off = r.f64();
  table_ = MapCalTable(config_.ffd.max_vms_per_pm, table_params_,
                       config_.ffd.rho, config_.ffd.method);

  const std::size_t n_tenants = r.varint();
  tenants_.assign(n_tenants, Tenant{});
  for (Tenant& t : tenants_) {
    t.live = r.boolean();
    if (!t.live) continue;
    t.spec.onoff.p_on = r.f64();
    t.spec.onoff.p_off = r.f64();
    t.spec.rb = r.f64();
    t.spec.re = r.f64();
    t.chain = OnOffChain(t.spec.onoff,
                         static_cast<VmState>(r.u8()));
    const std::size_t pm = r.varint();
    t.pm = pm == 0 ? PmId{} : PmId{pm - 1};
  }
  free_slots_ = r.size_vec();
  if (r.varint() != pms_.size()) r.fail("PM list count mismatch");
  for (auto& list : on_pm_) list = r.size_vec();
  if (r.varint() != pms_.size()) r.fail("PM liveness count mismatch");
  for (std::uint8_t& b : up_) b = r.u8();
  route_seq_ = r.varint();

  queue_.assign(r.varint(), QueuedTenant{});
  for (QueuedTenant& q : queue_) {
    q.slot = r.varint();
    q.retries = r.varint();
    q.next_attempt = r.varint();
  }

  CvrTrackerState ts;
  ts.pms.resize(r.varint());
  if (ts.pms.size() != tracker_.n_pms())
    r.fail("CVR tracker PM count mismatch");
  for (auto& pm : ts.pms) {
    pm.observed = r.varint();
    pm.violated = r.varint();
    pm.window.resize(r.varint());
    for (std::uint8_t& b : pm.window) b = r.u8();
  }
  tracker_.import_state(ts);
  meter_.restore_joules(r.f64());

  stats_.slots = r.varint();
  stats_.vms_hosted = r.varint();
  stats_.pms_used = r.varint();
  stats_.admissions = r.varint();
  stats_.rejections = r.varint();
  stats_.departures = r.varint();
  stats_.resizes = r.varint();
  stats_.resize_migrations = r.varint();
  stats_.resize_rejections = r.varint();
  stats_.runtime_migrations = r.varint();
  stats_.maintenance_migrations = r.varint();
  stats_.failed_migrations = r.varint();
  stats_.maintenance_windows = r.varint();
  stats_.pm_crashes = r.varint();
  stats_.pm_recoveries = r.varint();
  stats_.evacuations = r.varint();
  stats_.evac_queued = r.varint();
  stats_.retries = r.varint();
  stats_.degraded_maintenance = r.varint();
  stats_.mean_cvr = r.f64();
  stats_.max_cvr = r.f64();
  stats_.energy_wh = r.f64();

  const bool has_slo = r.boolean();
  if (has_slo != (config_.slo != nullptr))
    r.fail("SLO tracker presence mismatch");
  if (has_slo) {
    obs::SloTrackerState ss;
    ss.pms.resize(r.varint());
    for (auto& pm : ss.pms) {
      pm.observed = r.varint();
      pm.violated = r.varint();
      pm.ring.resize(r.varint());
      for (std::uint8_t& b : pm.ring) b = r.u8();
      pm.ring_observed = r.varint();
      pm.ring_violated = r.varint();
    }
    ss.cur.resize(r.varint());
    for (std::uint8_t& b : ss.cur) b = r.u8();
    ss.cluster_ring.resize(r.varint());
    for (auto& [o, v] : ss.cluster_ring) {
      o = r.u32();
      v = r.u32();
    }
    ss.slots = r.varint();
    ss.fast_obs = r.varint();
    ss.fast_viol = r.varint();
    ss.slow_obs = r.varint();
    ss.slow_viol = r.varint();
    ss.cum_obs = r.varint();
    ss.cum_viol = r.varint();
    ss.breaches = r.varint();
    ss.breaching = r.boolean();
    config_.slo->import_state(ss);
  }
  r.expect_done();

  // Derived structures are rebuilt, never deserialized: the shard index
  // and per-PM admissibility keys follow from the restored hosted sets
  // and liveness exactly as in the constructor.
  index_.reset(pms_.size(), config_.ffd.sharded.shards);
  refresh_all_keys();
}

}  // namespace burstq
