#include "core/controller.h"

#include <algorithm>

#include "common/error.h"
#include "placement/budget.h"
#include "placement/placement.h"

namespace burstq {

void ControllerConfig::validate() const {
  ffd.validate();
  policy.validate();
  power.validate();
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
}

CloudController::CloudController(std::vector<PmSpec> pms,
                                 ControllerConfig config, Rng rng)
    : pms_(std::move(pms)),
      config_(config),
      rng_(rng),
      table_(config.ffd.max_vms_per_pm, OnOffParams{}, config.ffd.rho,
             config.ffd.method),
      on_pm_(pms_.size()),
      tracker_(pms_.empty() ? 1 : pms_.size(), config.policy.cvr_window),
      meter_(config.power, config.sigma_seconds) {
  BURSTQ_REQUIRE(!pms_.empty(), "controller needs at least one PM");
  config_.validate();
  for (const auto& p : pms_) p.validate();
}

std::vector<VmSpec> CloudController::hosted_specs(PmId pm) const {
  std::vector<VmSpec> out;
  out.reserve(on_pm_[pm.value].size());
  for (std::size_t s : on_pm_[pm.value]) out.push_back(tenants_[s].spec);
  return out;
}

std::optional<PmId> CloudController::first_fit(const VmSpec& vm) const {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const PmId pm{j};
    if (fits_with_reservation_specs(hosted_specs(pm), vm,
                                    pms_[j].capacity, table_))
      return pm;
  }
  return std::nullopt;
}

std::optional<TenantId> CloudController::admit(const VmSpec& vm) {
  vm.validate();
  const auto pm = first_fit(vm);
  if (!pm) {
    ++stats_.rejections;
    return std::nullopt;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = tenants_.size();
    tenants_.emplace_back();
  }
  Tenant& t = tenants_[slot];
  t.spec = vm;
  t.chain = OnOffChain(vm.onoff);
  t.chain.reset_stationary(rng_);
  t.pm = *pm;
  t.live = true;
  on_pm_[pm->value].push_back(slot);
  ++stats_.admissions;
  ++stats_.vms_hosted;
  return TenantId{slot};
}

void CloudController::depart(TenantId id) {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "depart on an invalid or dead tenant");
  Tenant& t = tenants_[id.slot];
  auto& list = on_pm_[t.pm.value];
  const auto it = std::find(list.begin(), list.end(), id.slot);
  BURSTQ_ASSERT(it != list.end(), "controller PM lists out of sync");
  list.erase(it);
  t.live = false;
  free_slots_.push_back(id.slot);
  ++stats_.departures;
  --stats_.vms_hosted;
}

void CloudController::run_scheduler(const std::vector<Resource>& /*load*/,
                                    std::vector<Resource>& mutable_load) {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const PmId source{j};
    if (on_pm_[j].empty()) continue;
    if (tracker_.windowed_cvr(source) <= config_.policy.rho) continue;

    // Victim: the spiking tenant with the largest demand, falling back
    // to the largest-demand tenant overall (same rule as select_victim).
    std::size_t best_on = 0;
    double best_on_demand = -1.0;
    std::size_t best_any = on_pm_[j].front();
    double best_any_demand = -1.0;
    for (std::size_t s : on_pm_[j]) {
      const Tenant& t = tenants_[s];
      const double d = t.spec.demand(t.chain.state());
      if (t.chain.on() && d > best_on_demand) {
        best_on_demand = d;
        best_on = s;
      }
      if (d > best_any_demand) {
        best_any_demand = d;
        best_any = s;
      }
    }
    const std::size_t victim_slot =
        best_on_demand >= 0.0 ? best_on : best_any;
    Tenant& victim = tenants_[victim_slot];
    const double vdemand = victim.spec.demand(victim.chain.state());

    // Target: reservation-aware by default in the controller — this is
    // the burstiness-aware component an operator deploys.
    std::optional<PmId> target;
    for (std::size_t p = 0; p < pms_.size(); ++p) {
      const PmId cand{p};
      if (cand == source) continue;
      if (fits_with_reservation_specs(hosted_specs(cand), victim.spec,
                                      pms_[p].capacity, table_)) {
        target = cand;
        break;
      }
    }
    if (target) {
      auto& list = on_pm_[j];
      list.erase(std::find(list.begin(), list.end(), victim_slot));
      on_pm_[target->value].push_back(victim_slot);
      victim.pm = *target;
      mutable_load[j] -= vdemand;
      mutable_load[target->value] += vdemand;
      ++stats_.runtime_migrations;
      tracker_.reset_window(source);
      tracker_.reset_window(*target);
    } else {
      ++stats_.failed_migrations;
      tracker_.reset_window(source);
    }
  }
}

void CloudController::run_maintenance() {
  ++stats_.maintenance_windows;
  if (stats_.vms_hosted == 0) return;

  // Recalibrate the mapping table to the current population (IV-E).
  std::vector<VmSpec> live;
  std::vector<std::size_t> slot_of;  // compact index -> tenant slot
  live.reserve(stats_.vms_hosted);
  for (std::size_t s = 0; s < tenants_.size(); ++s) {
    if (!tenants_[s].live) continue;
    live.push_back(tenants_[s].spec);
    slot_of.push_back(s);
  }
  const OnOffParams rounded =
      round_uniform_params(live, config_.ffd.rounding);
  table_ = MapCalTable(config_.ffd.max_vms_per_pm, rounded,
                       config_.ffd.rho, config_.ffd.method);

  // Compact instance + placement view for the budget consolidator.
  ProblemInstance inst;
  inst.vms = live;
  inst.pms = pms_;
  Placement view(live.size(), pms_.size());
  for (std::size_t i = 0; i < live.size(); ++i)
    view.assign(VmId{i}, tenants_[slot_of[i]].pm);

  const auto result = consolidate_with_budget(
      inst, view, table_, config_.maintenance_budget);

  // Apply the executed moves back to the live fleet.
  for (const auto& move : result.moves) {
    const std::size_t s = slot_of[move.vm.value];
    auto& from_list = on_pm_[move.from.value];
    from_list.erase(std::find(from_list.begin(), from_list.end(), s));
    on_pm_[move.to.value].push_back(s);
    tenants_[s].pm = move.to;
    ++stats_.maintenance_migrations;
  }
}

void CloudController::tick() {
  ++stats_.slots;

  // 1. Workload evolution + demands.
  std::vector<Resource> load(pms_.size(), 0.0);
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    for (std::size_t s : on_pm_[j]) {
      Tenant& t = tenants_[s];
      t.chain.step(rng_);
      load[j] += t.spec.demand(t.chain.state());
    }
  }

  // 2. Violation bookkeeping.
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    if (on_pm_[j].empty()) continue;
    tracker_.record(PmId{j},
                    load[j] > pms_[j].capacity * (1.0 + kCapacityEpsilon));
  }

  // 3. Dynamic scheduling.
  run_scheduler(load, load);

  // 4. Energy.
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    if (on_pm_[j].empty()) continue;
    meter_.add_pm_slot(load[j] / pms_[j].capacity);
  }

  // 5. Maintenance window.
  if (config_.maintenance_every > 0 &&
      stats_.slots % config_.maintenance_every == 0)
    run_maintenance();

  stats_.pms_used = pms_used();
  stats_.mean_cvr = tracker_.mean_cvr();
  stats_.max_cvr = tracker_.max_cvr();
  stats_.energy_wh = meter_.watt_hours();
}

std::size_t CloudController::pms_used() const {
  std::size_t used = 0;
  for (const auto& list : on_pm_)
    if (!list.empty()) ++used;
  return used;
}

PmId CloudController::pm_of(TenantId id) const {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "pm_of on an invalid or dead tenant");
  return tenants_[id.slot].pm;
}

const VmSpec& CloudController::spec_of(TenantId id) const {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "spec_of on an invalid or dead tenant");
  return tenants_[id.slot].spec;
}

bool CloudController::reservation_invariant_holds() const {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const auto hosted = hosted_specs(PmId{j});
    if (hosted.empty()) continue;
    if (hosted.size() > table_.max_vms_per_pm()) return false;
    if (reserved_footprint_specs(hosted, table_) >
        pms_[j].capacity * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

}  // namespace burstq
