#include "core/controller.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "placement/budget.h"
#include "placement/incremental.h"
#include "placement/placement.h"

namespace burstq {

void ControllerConfig::validate() const {
  ffd.validate();
  policy.validate();
  power.validate();
  recovery.validate();
  BURSTQ_REQUIRE(sigma_seconds > 0.0, "slot length must be positive");
}

CloudController::CloudController(std::vector<PmSpec> pms,
                                 ControllerConfig config, Rng rng)
    : pms_(std::move(pms)),
      config_(config),
      rng_(rng),
      table_(config.ffd.max_vms_per_pm, OnOffParams{}, config.ffd.rho,
             config.ffd.method),
      on_pm_(pms_.size()),
      up_(pms_.size(), 1),
      tracker_(pms_.empty() ? 1 : pms_.size(), config.policy.cvr_window),
      meter_(config.power, config.sigma_seconds) {
  BURSTQ_REQUIRE(!pms_.empty(), "controller needs at least one PM");
  config_.validate();
  for (const auto& p : pms_) p.validate();
  BURSTQ_REQUIRE(config_.slo == nullptr ||
                     config_.slo->n_pms() == pms_.size(),
                 "SLO tracker PM count must match the fleet");
  index_.reset(pms_.size(), config_.ffd.sharded.shards);
  refresh_all_keys();
}

std::size_t CloudController::next_home() {
  const std::size_t home = route_seq_ % index_.shard_count();
  ++route_seq_;
  return home;
}

void CloudController::refresh_key(PmId pm) {
  if (!up_[pm.value]) {
    index_.set_key(pm.value, -std::numeric_limits<double>::infinity());
    return;
  }
  // The controller keeps no per-PM aggregate caches (the hosted lists are
  // short — at most d = max_vms_per_pm entries), so the key is recomputed
  // by a bounded walk.
  Resource rb_sum = 0.0;
  Resource re_max = 0.0;
  for (std::size_t s : on_pm_[pm.value]) {
    rb_sum += tenants_[s].spec.rb;
    re_max = std::max(re_max, tenants_[s].spec.re);
  }
  index_.set_key(pm.value,
                 conservative_admit_key(pms_[pm.value].capacity,
                                        on_pm_[pm.value].size(), rb_sum,
                                        re_max, table_));
}

void CloudController::refresh_all_keys() {
  for (std::size_t j = 0; j < pms_.size(); ++j) refresh_key(PmId{j});
}

std::vector<VmSpec> CloudController::hosted_specs(PmId pm) const {
  std::vector<VmSpec> out;
  out.reserve(on_pm_[pm.value].size());
  for (std::size_t s : on_pm_[pm.value]) out.push_back(tenants_[s].spec);
  return out;
}

std::optional<PmId> CloudController::first_fit(const VmSpec& vm,
                                               std::size_t home, PmId skip) {
  const auto outcome = index_.route(
      vm.rb, home,
      [&](std::size_t j) {
        if (skip.valid() && j == skip.value) return false;
        // Down PMs never reach here: their key is -inf.
        return fits_with_reservation_specs(hosted_specs(PmId{j}), vm,
                                           pms_[j].capacity, table_);
      },
      config_.ffd.sharded.decision_budget);
  if (outcome.budget_exhausted)
    BURSTQ_COUNT("placement.shard.budget_exhausted", 1);
  if (outcome.pm == ShardedAdmitIndex::npos) return std::nullopt;
  return PmId{outcome.pm};
}

std::optional<TenantId> CloudController::admit(const VmSpec& vm) {
  vm.validate();
  const auto pm = first_fit(vm, next_home());
  if (!pm) {
    ++stats_.rejections;
    return std::nullopt;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = tenants_.size();
    tenants_.emplace_back();
  }
  Tenant& t = tenants_[slot];
  t.spec = vm;
  t.chain = OnOffChain(vm.onoff);
  t.chain.reset_stationary(rng_);
  t.pm = *pm;
  t.live = true;
  on_pm_[pm->value].push_back(slot);
  refresh_key(*pm);
  ++stats_.admissions;
  ++stats_.vms_hosted;
  return TenantId{slot};
}

void CloudController::depart(TenantId id) {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "depart on an invalid or dead tenant");
  Tenant& t = tenants_[id.slot];
  if (t.pm.valid()) {
    auto& list = on_pm_[t.pm.value];
    const auto it = std::find(list.begin(), list.end(), id.slot);
    BURSTQ_ASSERT(it != list.end(), "controller PM lists out of sync");
    list.erase(it);
    refresh_key(t.pm);
  } else {
    // Parked in the post-crash admission queue; departing just removes it.
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [&](const QueuedTenant& q) { return q.slot == id.slot; });
    BURSTQ_ASSERT(it != queue_.end(), "unplaced tenant missing from queue");
    queue_.erase(it);
  }
  t.live = false;
  free_slots_.push_back(id.slot);
  ++stats_.departures;
  --stats_.vms_hosted;
}

bool CloudController::resize(TenantId id, const VmSpec& new_spec) {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "resize on an invalid or dead tenant");
  new_spec.validate();
  Tenant& t = tenants_[id.slot];
  const bool chain_restart = !(t.spec.onoff.p_on == new_spec.onoff.p_on &&
                               t.spec.onoff.p_off == new_spec.onoff.p_off);

  if (!t.pm.valid()) {
    // Parked in the post-crash queue: just swap the spec; the queue drain
    // re-places it under the new size.
    t.spec = new_spec;
  } else {
    const PmId pm = t.pm;
    // Fast path: the current PM still satisfies Eq. (17) with the
    // resized spec alongside its unchanged co-residents.
    std::vector<VmSpec> others;
    others.reserve(on_pm_[pm.value].size() - 1);
    for (std::size_t s : on_pm_[pm.value])
      if (s != id.slot) others.push_back(tenants_[s].spec);
    if (fits_with_reservation_specs(others, new_spec, pms_[pm.value].capacity,
                                    table_)) {
      t.spec = new_spec;
      refresh_key(pm);
    } else {
      // Detach, then route the resized tenant with its current PM's shard
      // as home (locality-preserving and deterministic).
      auto& list = on_pm_[pm.value];
      list.erase(std::find(list.begin(), list.end(), id.slot));
      refresh_key(pm);
      const auto target = first_fit(new_spec, index_.shard_of(pm.value));
      if (!target) {
        // Roll back: the original spec on the original PM is always
        // feasible (that exact hosted set satisfied Eq. 17 before).
        on_pm_[pm.value].push_back(id.slot);
        refresh_key(pm);
        ++stats_.resize_rejections;
        BURSTQ_COUNT("controller.resize.rejected", 1);
        return false;
      }
      t.spec = new_spec;
      t.pm = *target;
      on_pm_[target->value].push_back(id.slot);
      refresh_key(*target);
      ++stats_.resize_migrations;
      BURSTQ_COUNT("controller.resize.moved", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "resize.migrate",
                   {"t", stats_.slots}, {"tenant", id.slot},
                   {"from", pm.value}, {"to", target->value});
    }
  }

  if (chain_restart) {
    t.chain = OnOffChain(new_spec.onoff);
    t.chain.reset_stationary(rng_);
  }
  ++stats_.resizes;
  BURSTQ_COUNT("controller.resizes", 1);
  return true;
}

void CloudController::inject_pm_crash(PmId pm) {
  BURSTQ_REQUIRE(pm.valid() && pm.value < pms_.size(),
                 "inject_pm_crash on an out-of-range PM");
  if (!up_[pm.value]) return;
  up_[pm.value] = 0;
  refresh_key(pm);  // -inf: routing skips the dead host entirely
  ++stats_.pm_crashes;
  BURSTQ_COUNT("fault.pm.crashes", 1);
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.pm.crash",
               {"t", stats_.slots}, {"pm", pm.value});

  // Evacuate: the crashed PM's list is consumed up front so first_fit
  // never counts the dead host's tenants against anything.
  const std::vector<std::size_t> victims = std::move(on_pm_[pm.value]);
  on_pm_[pm.value].clear();
  for (std::size_t s : victims) {
    Tenant& t = tenants_[s];
    t.pm = PmId{};
    if (const auto target = first_fit(t.spec, 0)) {
      t.pm = *target;
      on_pm_[target->value].push_back(s);
      refresh_key(*target);
      ++stats_.evacuations;
      BURSTQ_COUNT("fault.evacuations", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.evacuate",
                   {"t", stats_.slots}, {"tenant", s}, {"from", pm.value},
                   {"to", target->value});
    } else {
      queue_.push_back(QueuedTenant{
          s, 0, stats_.slots + config_.recovery.backoff_base_slots});
      ++stats_.evac_queued;
      BURSTQ_COUNT("fault.queue.enqueued", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.queue.enqueue",
                   {"t", stats_.slots}, {"tenant", s},
                   {"reason", "no-feasible-pm"});
    }
  }
}

void CloudController::inject_pm_recover(PmId pm) {
  BURSTQ_REQUIRE(pm.valid() && pm.value < pms_.size(),
                 "inject_pm_recover on an out-of-range PM");
  if (up_[pm.value]) return;
  up_[pm.value] = 1;
  refresh_key(pm);
  ++stats_.pm_recoveries;
  BURSTQ_COUNT("fault.pm.recoveries", 1);
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.pm.recover",
               {"t", stats_.slots}, {"pm", pm.value});
}

std::size_t CloudController::backoff_delay(std::size_t retries) const {
  const std::size_t cap = config_.recovery.backoff_cap_slots;
  std::size_t delay = config_.recovery.backoff_base_slots;
  const std::size_t exponent =
      std::min(retries, config_.recovery.max_retries);
  for (std::size_t i = 0; i < exponent && delay < cap; ++i) delay *= 2;
  return std::min(delay, cap);
}

void CloudController::drain_queue() {
  for (auto& q : queue_) {
    if (q.next_attempt > stats_.slots) continue;
    ++q.retries;
    ++stats_.retries;
    BURSTQ_COUNT("migration.retries", 1);
    Tenant& t = tenants_[q.slot];
    if (const auto target = first_fit(t.spec, 0)) {
      t.pm = *target;
      on_pm_[target->value].push_back(q.slot);
      refresh_key(*target);
      BURSTQ_COUNT("fault.queue.drained", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.queue.admit",
                   {"t", stats_.slots}, {"tenant", q.slot},
                   {"pm", target->value}, {"retries", q.retries});
      q.slot = static_cast<std::size_t>(-1);  // admitted; erased below
    } else {
      q.next_attempt = stats_.slots + backoff_delay(q.retries);
    }
  }
  std::erase_if(queue_, [](const QueuedTenant& q) {
    return q.slot == static_cast<std::size_t>(-1);
  });
}

bool CloudController::fleet_degraded() const {
  return !queue_.empty() ||
         std::find(up_.begin(), up_.end(), std::uint8_t{0}) != up_.end();
}

void CloudController::run_scheduler(const std::vector<Resource>& /*load*/,
                                    std::vector<Resource>& mutable_load) {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const PmId source{j};
    if (on_pm_[j].empty()) continue;
    if (tracker_.windowed_cvr(source) <= config_.policy.rho) continue;

    // Victim: the spiking tenant with the largest demand, falling back
    // to the largest-demand tenant overall (same rule as select_victim).
    std::size_t best_on = 0;
    double best_on_demand = -1.0;
    std::size_t best_any = on_pm_[j].front();
    double best_any_demand = -1.0;
    for (std::size_t s : on_pm_[j]) {
      const Tenant& t = tenants_[s];
      const double d = t.spec.demand(t.chain.state());
      if (t.chain.on() && d > best_on_demand) {
        best_on_demand = d;
        best_on = s;
      }
      if (d > best_any_demand) {
        best_any_demand = d;
        best_any = s;
      }
    }
    const std::size_t victim_slot =
        best_on_demand >= 0.0 ? best_on : best_any;
    Tenant& victim = tenants_[victim_slot];
    const double vdemand = victim.spec.demand(victim.chain.state());

    // Target: reservation-aware by default in the controller — this is
    // the burstiness-aware component an operator deploys.  Routed through
    // the shard index like an arrival, skipping the violating source.
    const std::optional<PmId> target = first_fit(victim.spec, 0, source);
    if (target) {
      auto& list = on_pm_[j];
      list.erase(std::find(list.begin(), list.end(), victim_slot));
      on_pm_[target->value].push_back(victim_slot);
      victim.pm = *target;
      refresh_key(source);
      refresh_key(*target);
      mutable_load[j] -= vdemand;
      mutable_load[target->value] += vdemand;
      ++stats_.runtime_migrations;
      tracker_.reset_window(source);
      tracker_.reset_window(*target);
    } else {
      ++stats_.failed_migrations;
      tracker_.reset_window(source);
    }
  }
}

void CloudController::run_maintenance() {
  ++stats_.maintenance_windows;
  if (stats_.vms_hosted == 0) return;

  // Recalibrate the mapping table to the current population (IV-E).
  std::vector<VmSpec> live;
  std::vector<std::size_t> slot_of;  // compact index -> tenant slot
  live.reserve(stats_.vms_hosted);
  for (std::size_t s = 0; s < tenants_.size(); ++s) {
    if (!tenants_[s].live) continue;
    live.push_back(tenants_[s].spec);
    slot_of.push_back(s);
  }
  const OnOffParams rounded =
      round_uniform_params(live, config_.ffd.rounding);
  try {
    table_ = MapCalTable(config_.ffd.max_vms_per_pm, rounded,
                         config_.ffd.rho, config_.ffd.method);
  } catch (const SolverUnavailable&) {
    // Solver outage mid-maintenance: keep consolidating with the previous
    // (stale but sound) table rather than aborting the window.
    ++stats_.degraded_maintenance;
    BURSTQ_COUNT("fault.solver.degraded", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.solver.degrade",
                 {"t", stats_.slots}, {"level", "stale-table"});
  }

  // Compact instance + placement view for the budget consolidator.
  ProblemInstance inst;
  inst.vms = live;
  inst.pms = pms_;
  Placement view(live.size(), pms_.size());
  for (std::size_t i = 0; i < live.size(); ++i)
    view.assign(VmId{i}, tenants_[slot_of[i]].pm);

  const auto result = consolidate_with_budget(
      inst, view, table_, config_.maintenance_budget);

  // Apply the executed moves back to the live fleet.
  for (const auto& move : result.moves) {
    const std::size_t s = slot_of[move.vm.value];
    auto& from_list = on_pm_[move.from.value];
    from_list.erase(std::find(from_list.begin(), from_list.end(), s));
    on_pm_[move.to.value].push_back(s);
    tenants_[s].pm = move.to;
    ++stats_.maintenance_migrations;
  }

  // The table may have changed and the moves touched many PMs: rebuild
  // every admissibility key once, at the end of the window.
  refresh_all_keys();
}

void CloudController::tick() {
  ++stats_.slots;

  // 1. Workload evolution + demands.
  std::vector<Resource> load(pms_.size(), 0.0);
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    for (std::size_t s : on_pm_[j]) {
      Tenant& t = tenants_[s];
      t.chain.step(rng_);
      load[j] += t.spec.demand(t.chain.state());
    }
  }

  // 2. Violation bookkeeping.
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    if (on_pm_[j].empty()) continue;
    const bool violated =
        load[j] > pms_[j].capacity * (1.0 + kCapacityEpsilon);
    tracker_.record(PmId{j}, violated);
    if (config_.slo != nullptr) config_.slo->record(PmId{j}, violated);
  }
  if (config_.slo != nullptr) config_.slo->end_slot();

  // 3. Dynamic scheduling.
  run_scheduler(load, load);

  // 3b. Crash victims whose backoff expired retry placement.
  if (!queue_.empty()) drain_queue();

  // 4. Energy.
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    if (on_pm_[j].empty()) continue;
    meter_.add_pm_slot(load[j] / pms_[j].capacity);
  }

  // 5. Maintenance window — deferred while the fleet is degraded (a down
  // PM or queued tenants): consolidation would fight the recovery path
  // and the compact placement view below requires every tenant placed.
  if (config_.maintenance_every > 0 && !fleet_degraded() &&
      stats_.slots % config_.maintenance_every == 0)
    run_maintenance();

  stats_.pms_used = pms_used();
  stats_.mean_cvr = tracker_.mean_cvr();
  stats_.max_cvr = tracker_.max_cvr();
  stats_.energy_wh = meter_.watt_hours();
}

std::size_t CloudController::pms_used() const {
  std::size_t used = 0;
  for (const auto& list : on_pm_)
    if (!list.empty()) ++used;
  return used;
}

PmId CloudController::pm_of(TenantId id) const {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "pm_of on an invalid or dead tenant");
  return tenants_[id.slot].pm;
}

const VmSpec& CloudController::spec_of(TenantId id) const {
  BURSTQ_REQUIRE(
      id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live,
      "spec_of on an invalid or dead tenant");
  return tenants_[id.slot].spec;
}

bool CloudController::reservation_invariant_holds() const {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const auto hosted = hosted_specs(PmId{j});
    if (!up_[j] && !hosted.empty()) return false;  // dead PMs host nothing
    if (hosted.empty()) continue;
    if (hosted.size() > table_.max_vms_per_pm()) return false;
    if (reserved_footprint_specs(hosted, table_) >
        pms_[j].capacity * (1.0 + kCapacityEpsilon))
      return false;
  }
  // Recovery invariant: every live tenant is placed on an up PM or queued.
  for (std::size_t s = 0; s < tenants_.size(); ++s) {
    const Tenant& t = tenants_[s];
    if (!t.live) continue;
    if (t.pm.valid()) {
      if (!up_[t.pm.value]) return false;
    } else if (std::none_of(
                   queue_.begin(), queue_.end(),
                   [s](const QueuedTenant& q) { return q.slot == s; })) {
      return false;
    }
  }
  return true;
}

}  // namespace burstq
