// Repeated-trial experiment runner.
//
// The paper runs "each experiment setting for 10 times and gather[s] the
// statistical result" (average plus min/max whiskers, Figure 9).  Trials
// are independent Monte-Carlo repetitions, so they run in parallel with
// per-trial Rngs derived deterministically from (base_seed, trial index).

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/stats.h"
#include "core/consolidator.h"

namespace burstq {

/// Statistics of one (pattern, strategy) cell of Figure 9.
struct TrialSummary {
  SampleSet migrations;      ///< total successful migrations per trial
  SampleSet failed;          ///< failed migrations per trial
  SampleSet pms_initial;     ///< PMs used by the initial packing
  SampleSet pms_end;         ///< PMs used at the end of the period
  SampleSet mean_cvr;        ///< mean cumulative CVR per trial
  SampleSet max_cvr;
  SampleSet energy_wh;
};

/// Builds a fresh problem instance for a trial.
using InstanceFactory = std::function<ProblemInstance(Rng&)>;
/// Produces the initial placement for a trial instance.
using PlacementFactory =
    std::function<PlacementResult(const ProblemInstance&)>;

struct TrialConfig {
  std::size_t trials{10};
  std::uint64_t base_seed{42};
  std::size_t threads{0};  ///< 0 = hardware concurrency
  SimConfig sim{};
};

/// Runs `config.trials` end-to-end trials (instance -> placement ->
/// dynamic simulation) and aggregates the reports.  Trials whose placement
/// leaves VMs unplaced throw InternalError — experiment setups must
/// provision enough PMs.
TrialSummary run_trials(const InstanceFactory& make_instance,
                        const PlacementFactory& make_placement,
                        const TrialConfig& config);

/// Formats "avg (min..max)" for a Figure-9-style cell.
std::string summarize_cell(const SampleSet& s, int precision = 1);

}  // namespace burstq
