// CloudController — the closed-loop integration of everything burstq
// implements: burstiness-aware admission (Eq. 17), slotted workload
// evolution, CVR-triggered live migration (the dynamic scheduler), and
// periodic budget-bounded maintenance consolidation.
//
// This is the shape of the component an operator would actually deploy:
// the paper's Algorithm 2 handles initial/batch placement, Section IV-E's
// online rules handle churn, and the runtime loop keeps the performance
// constraint honest while reclaiming PMs during maintenance windows.
//
// The controller owns a *dynamic* fleet: VMs arrive and depart at any
// slot, so it keeps its own per-VM chains rather than a fixed
// WorkloadEnsemble.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "fault/recovery.h"
#include "placement/queuing_ffd.h"
#include "placement/sharded.h"
#include "queuing/mapcal.h"
#include "sim/energy.h"
#include "sim/metrics.h"
#include "sim/migration.h"

namespace burstq {

namespace obs {
class SloTracker;
}

struct ControllerConfig {
  QueuingFfdOptions ffd{};        ///< admission rule (rho, d, clustering)
  MigrationPolicy policy{};       ///< runtime scheduler
  double sigma_seconds{30.0};
  PowerModel power{};
  /// Run a maintenance consolidation every this many slots (0 = never).
  std::size_t maintenance_every{0};
  /// Live-migration budget per maintenance window.
  std::size_t maintenance_budget{20};
  /// Backoff discipline for tenants displaced by a PM crash that fit
  /// nowhere immediately (inject_pm_crash).
  fault::RecoveryPolicy recovery{};
  /// Optional SLO tracker (obs/slo.h); not owned, must outlive the
  /// controller.  Mirrors every tick's per-PM violation verdicts.
  obs::SloTracker* slo{nullptr};

  void validate() const;
};

/// Stable handle for an admitted VM.
struct TenantId {
  std::size_t slot{static_cast<std::size_t>(-1)};
  [[nodiscard]] bool valid() const {
    return slot != static_cast<std::size_t>(-1);
  }
  friend bool operator==(TenantId a, TenantId b) { return a.slot == b.slot; }
};

/// Rolling counters exposed after every tick.
struct ControllerStats {
  std::size_t slots{0};
  std::size_t vms_hosted{0};
  std::size_t pms_used{0};
  std::size_t admissions{0};
  std::size_t rejections{0};
  std::size_t departures{0};
  std::size_t resizes{0};            ///< successful resize() calls
  std::size_t resize_migrations{0};  ///< resizes that had to move the VM
  std::size_t resize_rejections{0};  ///< resizes rolled back (no PM fits)
  std::size_t runtime_migrations{0};   ///< scheduler-triggered
  std::size_t maintenance_migrations{0};
  std::size_t failed_migrations{0};
  std::size_t maintenance_windows{0};
  std::size_t pm_crashes{0};     ///< inject_pm_crash calls that took effect
  std::size_t pm_recoveries{0};
  std::size_t evacuations{0};    ///< crash victims re-placed immediately
  std::size_t evac_queued{0};    ///< crash victims that had to queue
  std::size_t retries{0};        ///< queue placement attempts (backoff)
  std::size_t degraded_maintenance{0};  ///< table recalibrations skipped
                                        ///< because the solver was down
  double mean_cvr{0.0};  ///< cumulative, over PMs that hosted VMs
  double max_cvr{0.0};
  double energy_wh{0.0};
};

class CloudController {
 public:
  CloudController(std::vector<PmSpec> pms, ControllerConfig config,
                  Rng rng);

  /// Admits one VM via first-fit under Eq. (17); the chain starts in its
  /// stationary state.  Returns nullopt (and counts a rejection) when no
  /// PM can take it.
  std::optional<TenantId> admit(const VmSpec& vm);

  /// Removes a VM.  Throws on dead/invalid handles.
  void depart(TenantId id);

  /// Resizes a live tenant to `new_spec`.  Stays on its PM when Eq. (17)
  /// still holds there; otherwise it is migrated like a fresh arrival
  /// (home shard = its current PM's).  When nothing fits, the original
  /// spec is restored in place (always feasible) and false is returned.
  /// Queued tenants just swap their spec (they are re-placed on drain).
  /// Changing the ON/OFF parameters restarts the tenant's chain from its
  /// stationary distribution.
  bool resize(TenantId id, const VmSpec& new_spec);

  /// Advances one slot: workload step, violation bookkeeping, dynamic
  /// scheduling, energy metering, and — when due — the maintenance
  /// consolidation.
  void tick();

  /// Marks a PM failed.  Hosted tenants evacuate first-fit over the
  /// remaining up PMs under Eq. (17); those that fit nowhere join an
  /// admission queue drained with exponential backoff on later ticks
  /// (a queued tenant is parked: its chain does not advance and it loads
  /// no PM until re-placed).  Idempotent on an already-down PM.
  void inject_pm_crash(PmId pm);

  /// Brings a failed PM back up; queued tenants may drain onto it on the
  /// next tick.  Idempotent on an up PM.
  void inject_pm_recover(PmId pm);

  [[nodiscard]] bool pm_up(PmId pm) const { return up_[pm.value] != 0; }
  [[nodiscard]] std::size_t n_pms() const { return pms_.size(); }
  /// True when `id` names a live (admitted, not departed) tenant — the
  /// validity precondition of depart/resize/pm_of/spec_of.
  [[nodiscard]] bool tenant_live(TenantId id) const {
    return id.valid() && id.slot < tenants_.size() && tenants_[id.slot].live;
  }
  /// Tenants awaiting re-placement after a crash.
  [[nodiscard]] std::size_t queued_tenants() const { return queue_.size(); }

  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pms_used() const;
  /// The hosting PM; an *invalid* PmId while the tenant sits in the
  /// post-crash admission queue.
  [[nodiscard]] PmId pm_of(TenantId id) const;
  [[nodiscard]] const VmSpec& spec_of(TenantId id) const;

  /// Verifies the reservation invariant over the current fleet, including
  /// that no down PM hosts tenants and every live tenant is either placed
  /// on an up PM or queued.
  [[nodiscard]] bool reservation_invariant_holds() const;

  /// Serializes the complete controller state (RNG, tenants and chains,
  /// PM liveness, queue, trackers, stats) as a durable snapshot blob.
  /// The mapping table itself is not serialized — the ON-OFF parameters
  /// it was calibrated with are, and import rebuilds it.
  [[nodiscard]] std::string export_state() const;

  /// Restores export_state() bytes into a controller constructed with
  /// the SAME fleet and config.  Throws durable::CorruptState on a
  /// truncated/garbled blob or a construction-argument mismatch.
  void import_state(std::string_view blob);

 private:
  struct Tenant {
    VmSpec spec;
    OnOffChain chain{OnOffParams{}};
    PmId pm{};
    bool live{false};
  };

  struct QueuedTenant {
    std::size_t slot{0};
    std::size_t retries{0};
    std::size_t next_attempt{0};  ///< earliest tick (stats_.slots) to retry
  };

  [[nodiscard]] std::vector<VmSpec> hosted_specs(PmId pm) const;

  /// Routes `vm` through the shard index (sharded.h): home shard first,
  /// then the remaining shards in fixed order, confirming candidates with
  /// the exact Eq. (17) walk and honouring the decision budget.  `skip`
  /// excludes one PM (the scheduler's migration source).  With one shard
  /// and no budget this is exactly the legacy linear scan over up PMs.
  std::optional<PmId> first_fit(const VmSpec& vm, std::size_t home,
                                PmId skip = PmId{});

  /// Next round-robin home shard for arrivals.
  std::size_t next_home();

  /// Recomputes the admissibility key of one PM (all PMs) in the shard
  /// index: -inf while the PM is down, else the conservative slack under
  /// the current table and hosted set.
  void refresh_key(PmId pm);
  void refresh_all_keys();
  void run_scheduler(const std::vector<Resource>& load,
                     std::vector<Resource>& mutable_load);
  void run_maintenance();
  void drain_queue();
  [[nodiscard]] std::size_t backoff_delay(std::size_t retries) const;
  [[nodiscard]] bool fleet_degraded() const;

  std::vector<PmSpec> pms_;
  ControllerConfig config_;
  Rng rng_;
  MapCalTable table_;
  /// The uniform params table_ was last calibrated with (maintenance
  /// recalibrates); serialized so import_state can rebuild the table.
  OnOffParams table_params_{};
  std::vector<Tenant> tenants_;
  std::vector<std::size_t> free_slots_;
  std::vector<std::vector<std::size_t>> on_pm_;  ///< tenant slots per PM
  std::vector<std::uint8_t> up_;                 ///< PM liveness (1 = up)
  ShardedAdmitIndex index_;   ///< per-shard slack trees (down PMs: -inf)
  std::size_t route_seq_{0};  ///< round-robin arrival counter
  std::vector<QueuedTenant> queue_;              ///< FIFO, crash victims
  CvrTracker tracker_;
  EnergyMeter meter_;
  ControllerStats stats_;
};

}  // namespace burstq
