#include "core/scenario.h"

#include "common/error.h"

namespace burstq {

std::vector<SpikePattern> all_patterns() {
  return {SpikePattern::kEqual, SpikePattern::kSmallSpike,
          SpikePattern::kLargeSpike};
}

std::string pattern_name(SpikePattern p) {
  switch (p) {
    case SpikePattern::kEqual:
      return "Rb=Re (normal spikes)";
    case SpikePattern::kSmallSpike:
      return "Rb>Re (small spikes)";
    case SpikePattern::kLargeSpike:
      return "Rb<Re (large spikes)";
  }
  return "?";
}

InstanceRanges ranges_for_pattern(SpikePattern p) {
  InstanceRanges r;  // capacity defaults to [80, 100] for all patterns
  switch (p) {
    case SpikePattern::kEqual:
      r.rb_lo = 2.0;
      r.rb_hi = 20.0;
      r.re_lo = 2.0;
      r.re_hi = 20.0;
      break;
    case SpikePattern::kSmallSpike:
      r.rb_lo = 12.0;
      r.rb_hi = 20.0;
      r.re_lo = 2.0;
      r.re_hi = 10.0;
      break;
    case SpikePattern::kLargeSpike:
      r.rb_lo = 2.0;
      r.rb_hi = 10.0;
      r.re_lo = 12.0;
      r.re_hi = 20.0;
      break;
  }
  return r;
}

OnOffParams paper_onoff_params() { return OnOffParams{0.01, 0.09}; }

namespace {

// Size classes in resource units; 1 unit = 100 users (small = 400 users).
constexpr Resource kSmall = 4.0;
constexpr Resource kMedium = 8.0;
constexpr Resource kLarge = 16.0;

std::size_t users_of(Resource units) {
  return static_cast<std::size_t>(units * 100.0);
}

TableIRow make_row(SpikePattern p, const char* rbc, const char* rec,
                   Resource rb, Resource re) {
  return TableIRow{p,  rbc, rec, rb, re, users_of(rb), users_of(rb + re)};
}

}  // namespace

std::vector<TableIRow> table_i() {
  return {
      make_row(SpikePattern::kEqual, "small", "small", kSmall, kSmall),
      make_row(SpikePattern::kEqual, "medium", "medium", kMedium, kMedium),
      make_row(SpikePattern::kEqual, "large", "large", kLarge, kLarge),
      make_row(SpikePattern::kSmallSpike, "medium", "small", kMedium, kSmall),
      make_row(SpikePattern::kSmallSpike, "large", "medium", kLarge, kMedium),
      make_row(SpikePattern::kLargeSpike, "small", "medium", kSmall, kMedium),
      make_row(SpikePattern::kLargeSpike, "medium", "large", kMedium, kLarge),
  };
}

std::vector<TableIRow> table_i_rows(SpikePattern p) {
  std::vector<TableIRow> out;
  for (auto& row : table_i())
    if (row.pattern == p) out.push_back(row);
  return out;
}

ProblemInstance table_i_instance(SpikePattern p, std::size_t n_vms,
                                 std::size_t n_pms,
                                 const OnOffParams& params, Rng& rng,
                                 const InstanceRanges& ranges) {
  BURSTQ_REQUIRE(n_vms > 0 && n_pms > 0, "instance must be non-empty");
  BURSTQ_REQUIRE(ranges.capacity_lo > 0.0 &&
                     ranges.capacity_lo <= ranges.capacity_hi,
                 "capacity range must satisfy 0 < lo <= hi");
  params.validate();
  const std::vector<TableIRow> rows = table_i_rows(p);
  BURSTQ_ASSERT(!rows.empty(), "pattern has no Table I rows");

  ProblemInstance inst;
  inst.vms.reserve(n_vms);
  for (std::size_t i = 0; i < n_vms; ++i) {
    const TableIRow& row = rows[rng.next_below(rows.size())];
    inst.vms.push_back(VmSpec{params, row.rb, row.re});
  }
  inst.pms.reserve(n_pms);
  for (std::size_t j = 0; j < n_pms; ++j)
    inst.pms.push_back(
        PmSpec{rng.uniform(ranges.capacity_lo, ranges.capacity_hi)});
  return inst;
}

ProblemInstance pattern_instance(SpikePattern p, std::size_t n_vms,
                                 std::size_t n_pms,
                                 const OnOffParams& params, Rng& rng) {
  return random_instance(n_vms, n_pms, params, ranges_for_pattern(p), rng);
}

}  // namespace burstq
