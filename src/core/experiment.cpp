#include "core/experiment.h"

#include <iomanip>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"

namespace burstq {

TrialSummary run_trials(const InstanceFactory& make_instance,
                        const PlacementFactory& make_placement,
                        const TrialConfig& config) {
  BURSTQ_REQUIRE(config.trials > 0, "need at least one trial");
  config.sim.validate();

  struct TrialOut {
    double migrations, failed, pms_initial, pms_end, mean_cvr, max_cvr,
        energy;
  };
  std::vector<TrialOut> outs(config.trials);

  // Derive all trial seeds up front so results are independent of the
  // parallel schedule.
  std::vector<std::uint64_t> seeds(config.trials);
  {
    Rng seeder(config.base_seed);
    for (auto& s : seeds) s = seeder.next_u64();
  }

  parallel_for(
      config.trials,
      [&](std::size_t t) {
        Rng rng(seeds[t]);
        const ProblemInstance inst = make_instance(rng);
        const PlacementResult placed = make_placement(inst);
        BURSTQ_ASSERT(placed.complete(),
                      "trial placement left VMs unplaced; provision more PMs");
        ClusterSimulator sim(inst, placed.placement, config.sim, rng.split());
        const SimReport rep = sim.run();
        outs[t] = TrialOut{static_cast<double>(rep.total_migrations),
                           static_cast<double>(rep.failed_migrations),
                           static_cast<double>(placed.pms_used()),
                           static_cast<double>(rep.pms_used_end),
                           rep.mean_cvr,
                           rep.max_cvr,
                           rep.energy_wh};
      },
      config.threads);

  TrialSummary s;
  for (const auto& o : outs) {
    s.migrations.add(o.migrations);
    s.failed.add(o.failed);
    s.pms_initial.add(o.pms_initial);
    s.pms_end.add(o.pms_end);
    s.mean_cvr.add(o.mean_cvr);
    s.max_cvr.add(o.max_cvr);
    s.energy_wh.add(o.energy);
  }
  return s;
}

std::string summarize_cell(const SampleSet& s, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << s.mean() << " ("
      << s.min() << ".." << s.max() << ")";
  return oss.str();
}

}  // namespace burstq
