// Deterministic, seed-driven generator of fuzz cases for the differential
// oracles in check/oracles.h.
//
// The generator deliberately over-samples the *domain boundaries* of the
// solver stack — switch probabilities at or near 0 and 1, equal
// p_on/p_off (the periodic/slow-mixing families that crashed the kPower
// backend), extreme rho, large k — plus uniform interiors, because that
// is where Proposition 1's preconditions fray and where every historical
// backend bug has lived.
//
// Reproducibility contract: a case is a pure function of its 64-bit case
// seed, and case seeds are a pure function of (master seed, index) via
// derive_case_seed.  A discrepancy report therefore only needs to quote
// the case seed; `burstq_fuzz --replay <seed>` re-runs exactly that case.

#pragma once

#include <cstddef>
#include <cstdint>

#include "markov/onoff.h"

namespace burstq::check {

/// One generated fuzz case.  The chain-level oracles use (k, params, rho);
/// the placement oracle additionally uses the instance dimensions.
struct FuzzCase {
  std::uint64_t seed{0};   ///< the case's own seed (replayable)
  std::size_t index{0};    ///< position within the run (0 for replays)
  std::size_t k{1};        ///< collocated VMs for the chain oracles
  OnOffParams params;      ///< boundary-biased switch probabilities
  double rho{0.01};        ///< CVR budget in [0, 1)
  std::size_t n_vms{1};    ///< placement-oracle instance width
  std::size_t n_pms{1};
  std::size_t max_vms_per_pm{16};  ///< d for MapCal tables

  // Recovery-oracle scenario (drawn *after* every field above, so those
  // stay bit-stable for a given seed across harness versions).
  std::size_t fault_slots{40};         ///< simulated slots
  std::size_t fault_crash_slot{5};     ///< scripted PM crash
  std::size_t fault_recover_slot{20};  ///< scripted recovery of that PM
  std::size_t fault_solver_slot{10};   ///< solver outage start
  std::size_t fault_solver_len{10};    ///< solver outage length
  double fault_p_mig_fail{0.0};        ///< Markov migration-abort prob
  std::uint64_t fault_seed{0};         ///< FaultPlan seed
};

/// SplitMix64-derived per-case seed: well-mixed, collision-free in
/// practice, and stable across platforms and runs.
std::uint64_t derive_case_seed(std::uint64_t master_seed,
                               std::uint64_t index);

/// Generates the case determined by `case_seed` (pure function).
FuzzCase generate_case(std::uint64_t case_seed, std::size_t index = 0);

}  // namespace burstq::check
