#include "check/oracles.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "durable/durable.h"
#include "durable/snapshot.h"
#include "durable/state_codec.h"
#include "fault/plan.h"
#include "markov/aggregate_chain.h"
#include "placement/baselines.h"
#include "placement/first_fit.h"
#include "placement/incremental.h"
#include "placement/placement.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"
#include "sim/cluster_sim.h"

namespace burstq::check {

namespace {

/// Backend-agreement tolerances.  Gaussian elimination is accurate to
/// ~1e-11 across the whole valid domain (measured at the 1e-6 and 1 - 1e-6
/// boundaries); the damped power iteration stops on a successive-delta
/// test, whose worst in-budget true error is delta/gap ~ 1e-13 / 4e-5.
constexpr double kGaussianTol = 1e-9;
constexpr double kPowerTol = 1e-8;

/// Mixing gate for the simulation oracle: chains with relaxation time
/// above this many slots cannot produce a meaningful empirical CVR inside
/// a bounded run, so the oracle reports a skip instead of a noisy verdict.
constexpr double kMaxRelaxationSlots = 20.0;

/// Stream-separation constants XORed into the case seed so each oracle
/// draws from an independent deterministic stream.
constexpr std::uint64_t kCvrStream = 0x5bd1e995u;
constexpr std::uint64_t kPlacementStream = 0xc2b2ae3du;
constexpr std::uint64_t kRecoveryStream = 0x27d4eb2fu;
constexpr std::uint64_t kDurabilityStream = 0x165667b1u;

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string describe(const FuzzCase& c) {
  std::ostringstream oss;
  oss << "k=" << c.k << " p_on=" << c.params.p_on
      << " p_off=" << c.params.p_off << " rho=" << c.rho;
  return oss.str();
}

OracleReport compare_results(const FuzzCase& c, const PlacementResult& a,
                             const PlacementResult& b,
                             std::string_view phase) {
  if (a.unplaced != b.unplaced) {
    std::ostringstream oss;
    oss << describe(c) << " [" << phase << "] unplaced lists differ: "
        << a.unplaced.size() << " vs " << b.unplaced.size();
    return OracleReport::fail(oss.str());
  }
  for (std::size_t v = 0; v < a.placement.n_vms(); ++v) {
    if (a.placement.pm_of(VmId{v}) != b.placement.pm_of(VmId{v})) {
      std::ostringstream oss;
      oss << describe(c) << " [" << phase << "] vm " << v
          << " placed on pm " << a.placement.pm_of(VmId{v}).value
          << " (naive) vs " << b.placement.pm_of(VmId{v}).value
          << " (incremental)";
      return OracleReport::fail(oss.str());
    }
  }
  return OracleReport::pass();
}

}  // namespace

std::string_view oracle_name(OracleId id) {
  switch (id) {
    case OracleId::kStationary: return "stationary";
    case OracleId::kCvr: return "cvr";
    case OracleId::kPlacement: return "placement";
    case OracleId::kCache: return "cache";
    case OracleId::kRecovery: return "recovery";
    case OracleId::kDurability: return "durability";
  }
  return "unknown";
}

OracleReport check_stationary_backends(const FuzzCase& c) {
  const auto closed = aggregate_stationary_distribution(
      c.k, c.params, StationaryMethod::kClosedForm);
  const auto gauss = aggregate_stationary_distribution(
      c.k, c.params, StationaryMethod::kGaussian);
  const auto power = aggregate_stationary_distribution(
      c.k, c.params, StationaryMethod::kPower);

  for (const auto* pi : {&closed, &gauss, &power}) {
    if (pi->size() != c.k + 1)
      return OracleReport::fail(describe(c) + " wrong distribution length");
    double sum = 0.0;
    for (double v : *pi) {
      if (v < -1e-12 || !std::isfinite(v))
        return OracleReport::fail(describe(c) +
                                  " non-probability entry in distribution");
      sum += v;
    }
    if (std::abs(sum - 1.0) > 1e-9)
      return OracleReport::fail(describe(c) + " distribution sum off by " +
                                std::to_string(sum - 1.0));
  }

  if (const double d = max_abs_diff(gauss, closed); d > kGaussianTol) {
    std::ostringstream oss;
    oss << describe(c) << " gaussian vs closed-form max diff " << d;
    return OracleReport::fail(oss.str());
  }
  if (const double d = max_abs_diff(power, closed); d > kPowerTol) {
    std::ostringstream oss;
    oss << describe(c) << " power vs closed-form max diff " << d;
    return OracleReport::fail(oss.str());
  }
  return OracleReport::pass();
}

OracleReport check_cvr_bound_vs_simulation(const FuzzCase& c) {
  // Relaxation rate of the aggregate chain: eigenvalue moduli are
  // |1 - s|^j with s = p_on + p_off, so the slowest mode decays at
  // 1 - |1 - s| = min(s, 2 - s) per slot.  Both ends are slow: s -> 0
  // (chains frozen in place) and s -> 2 (near-periodic even/odd classes;
  // exactly 2 is non-ergodic, where a single run's time average
  // legitimately differs from the stationary law).  Beyond the gate the
  // empirical estimate is autocorrelation, not signal.
  const double s = c.params.p_on + c.params.p_off;
  const double rate = std::min(s, 2.0 - s);
  if (rate * kMaxRelaxationSlots < 1.0)
    return OracleReport::skip("chain mixes too slowly for simulation");
  const double tau = 1.0 / rate;

  const MapCalResult mc =
      map_cal(c.k, c.params, c.rho, StationaryMethod::kGaussian);
  if (mc.cvr_bound > c.rho + kCdfTieEpsilon) {
    std::ostringstream oss;
    oss << describe(c) << " cvr_bound " << mc.cvr_bound
        << " exceeds budget rho";
    return OracleReport::fail(oss.str());
  }

  const auto slots = static_cast<std::size_t>(
      std::clamp(3000.0 * tau, 20000.0, 60000.0));
  Rng rng(c.seed ^ kCvrStream);
  const auto freq = simulate_occupancy(c.k, c.params, slots, rng);
  double empirical = 0.0;
  for (std::size_t m = mc.blocks + 1; m <= c.k; ++m) empirical += freq[m];

  // Statistical tolerance: a binary process with autocorrelation time tau
  // has Var[mean] ~ p(1-p) * 2 tau / slots; six sigmas plus an absolute
  // floor keeps the oracle quiet on noise yet loud on real bound bugs
  // (which are off by orders of magnitude, not thousandths).
  const double p = std::max(mc.cvr_bound * (1.0 - mc.cvr_bound), 1e-6);
  const double tol =
      6.0 * std::sqrt(p * 2.0 * tau / static_cast<double>(slots)) + 2e-3;
  if (std::abs(empirical - mc.cvr_bound) > tol) {
    std::ostringstream oss;
    oss << describe(c) << " empirical CVR " << empirical
        << " vs analytic bound " << mc.cvr_bound << " (tol " << tol
        << ", slots " << slots << ")";
    return OracleReport::fail(oss.str());
  }
  return OracleReport::pass();
}

OracleReport check_placement_engines(const FuzzCase& c) {
  Rng rng(c.seed ^ kPlacementStream);
  const ProblemInstance inst =
      random_instance(c.n_vms, c.n_pms, c.params, InstanceRanges{}, rng);
  const MapCalTable table(c.max_vms_per_pm, c.params, c.rho,
                          StationaryMethod::kClosedForm);

  // Random visit order: the engines must agree for any order, not just
  // the Rb-descending one Algorithm 2 uses.
  std::vector<std::size_t> order(c.n_vms);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  const auto naive_fits = [&](const Placement& pl, VmId vm, PmId pm) {
    return fits_with_reservation(inst, pl, vm, pm, table);
  };
  const PlacementResult naive = first_fit_place(inst, order, naive_fits);
  const PlacementResult incr =
      first_fit_place_reservation(inst, order, table);
  if (auto r = compare_results(c, naive, incr, "full"); !r.ok) return r;
  if (!placement_satisfies_reservation(inst, naive.placement, table))
    return OracleReport::fail(describe(c) +
                              " naive placement violates Eq. 17 post-check");

  // Churn: drop a random ~35% of the VMs (the drivers require the order
  // to cover the whole instance, so survivors become a reindexed
  // sub-instance) and require the engines to agree on it too; then mutate
  // a bound placement the same way and require its incremental aggregates
  // to match the walk-based reference.
  ProblemInstance shrunk;
  shrunk.pms = inst.pms;
  std::vector<std::size_t> suborder;
  for (std::size_t vi : order)
    if (!rng.bernoulli(0.35)) {
      suborder.push_back(shrunk.vms.size());
      shrunk.vms.push_back(inst.vms[vi]);
    }
  if (!shrunk.vms.empty()) {
    const auto shrunk_fits = [&](const Placement& pl, VmId vm, PmId pm) {
      return fits_with_reservation(shrunk, pl, vm, pm, table);
    };
    const PlacementResult naive2 =
        first_fit_place(shrunk, suborder, shrunk_fits);
    const PlacementResult incr2 =
        first_fit_place_reservation(shrunk, suborder, table);
    if (auto r = compare_results(c, naive2, incr2, "churn"); !r.ok) return r;
  }

  Placement churned = incr.placement;
  for (std::size_t v = 0; v < churned.n_vms(); ++v)
    if (churned.assigned(VmId{v}) && rng.bernoulli(0.35))
      churned.unassign(VmId{v});
  if (!aggregates_consistent(inst, churned))
    return OracleReport::fail(
        describe(c) + " churned placement aggregates diverge from walk");
  return OracleReport::pass();
}

OracleReport check_mapcal_cache(const FuzzCase& c) {
  const std::size_t d = c.max_vms_per_pm;
  mapcal_table_cache_clear();

  const MapCalTable cold(d, c.params, c.rho);
  for (std::size_t k = 1; k <= d; ++k) {
    const MapCalResult direct = map_cal(k, c.params, c.rho);
    if (cold.blocks(k) != direct.blocks ||
        !bits_equal(cold.cvr_bound(k), direct.cvr_bound)) {
      std::ostringstream oss;
      oss << describe(c) << " cold table k=" << k << " blocks/cvr ("
          << cold.blocks(k) << ", " << cold.cvr_bound(k)
          << ") != direct map_cal (" << direct.blocks << ", "
          << direct.cvr_bound << ")";
      return OracleReport::fail(oss.str());
    }
  }

  const MapCalTable warm(d, c.params, c.rho);
  for (std::size_t k = 1; k <= d; ++k) {
    if (warm.blocks(k) != cold.blocks(k) ||
        !bits_equal(warm.cvr_bound(k), cold.cvr_bound(k)))
      return OracleReport::fail(describe(c) +
                                " cache hit differs from cold solve");
  }
  if (mapcal_table_cache_size() != 1)
    return OracleReport::fail(describe(c) +
                              " re-build duplicated the cache entry");

  // Value-equal keys must share one slot: -0.0 == 0.0, so a signed zero
  // rho (or any double that only differs in bits that == ignores) must
  // hash to the cached entry, not beside it.
  if (c.rho == 0.0) {
    const MapCalTable negzero(d, c.params, -0.0);
    if (mapcal_table_cache_size() != 1)
      return OracleReport::fail(
          describe(c) + " rho=-0.0 duplicated the rho=0.0 cache entry");
    if (negzero.blocks(d) != cold.blocks(d))
      return OracleReport::fail(describe(c) +
                                " rho=-0.0 lookup returned different data");
  }
  return OracleReport::pass();
}

OracleReport check_recovery_invariants(const FuzzCase& c) {
  // Clamp to a fleet where a crash leaves at least one survivor PM, and
  // keep the per-case cost bounded (the simulator runs twice below).
  const std::size_t n_pms = std::max<std::size_t>(c.n_pms, 2);
  Rng rng(c.seed ^ kRecoveryStream);
  const ProblemInstance inst =
      random_instance(c.n_vms, n_pms, c.params, InstanceRanges{}, rng);
  const PlacementResult seeded = ffd_by_peak(inst);
  if (!seeded.complete())
    return OracleReport::skip("starved fleet: no complete initial placement");
  const std::uint64_t sim_seed = rng.next_u64();

  // Scripted crash-and-recover of one PM, one solver outage, plus an
  // optional Markov migration-abort stream — sorted by slot as the
  // injector requires.
  fault::FaultPlan plan;
  plan.seed = c.fault_seed;
  plan.markov.p_mig_fail = c.fault_p_mig_fail;
  const std::size_t victim_pm = c.fault_seed % n_pms;
  plan.scripted.push_back(
      {c.fault_crash_slot, fault::FaultKind::kPmCrash, victim_pm, 0});
  plan.scripted.push_back(
      {c.fault_recover_slot, fault::FaultKind::kPmRecover, victim_pm, 0});
  plan.scripted.push_back({c.fault_solver_slot,
                           fault::FaultKind::kSolverOutage, fault::kNoPm,
                           c.fault_solver_len});
  std::sort(plan.scripted.begin(), plan.scripted.end(),
            [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
              return a.slot < b.slot;
            });
  plan.validate(n_pms);

  SimConfig cfg;
  cfg.slots = c.fault_slots;
  cfg.policy.rho = c.rho;
  cfg.faults = plan;

  const auto run_once = [&] {
    // The MapCalTable memo cache is process-wide: a first run warming it
    // would change which ladder rung the second run's admissions hit
    // during the solver outage.  Start both runs cold.
    mapcal_table_cache_clear();
    ClusterSimulator sim(inst, seeded.placement, cfg, Rng(sim_seed));
    return std::pair<SimReport, Placement>(sim.run(), sim.placement());
  };
  const auto [rep, final_pl] = run_once();

  std::ostringstream oss;
  oss << describe(c) << " n_vms=" << c.n_vms << " n_pms=" << n_pms
      << " crash@" << c.fault_crash_slot << " recover@"
      << c.fault_recover_slot << " solver@" << c.fault_solver_slot << "+"
      << c.fault_solver_len << " slots=" << c.fault_slots;
  const std::string scenario = oss.str();

  if (rep.faults.lost_vms != 0)
    return OracleReport::fail(scenario + " lost " +
                              std::to_string(rep.faults.lost_vms) + " VMs");
  if (final_pl.vms_assigned() + rep.faults.queue_end != inst.n_vms()) {
    std::ostringstream o2;
    o2 << scenario << " conservation broke: " << final_pl.vms_assigned()
       << " assigned + " << rep.faults.queue_end << " queued != "
       << inst.n_vms() << " VMs";
    return OracleReport::fail(o2.str());
  }
  if (!aggregates_consistent(inst, final_pl))
    return OracleReport::fail(
        scenario + " per-PM aggregates diverge from a fresh walk");
  if (rep.faults.pm_crashes == 0)
    return OracleReport::fail(scenario + " scripted crash never fired");

  // Replay determinism: a second run from the same seed must be
  // bit-identical — report and final placement alike.
  const auto [rep2, final2] = run_once();
  const bool reports_match =
      rep.total_migrations == rep2.total_migrations &&
      rep.failed_migrations == rep2.failed_migrations &&
      rep.pms_used_end == rep2.pms_used_end &&
      rep.pms_used_max == rep2.pms_used_max &&
      bits_equal(rep.mean_cvr, rep2.mean_cvr) &&
      bits_equal(rep.max_cvr, rep2.max_cvr) &&
      bits_equal(rep.energy_wh, rep2.energy_wh) &&
      rep.faults.pm_crashes == rep2.faults.pm_crashes &&
      rep.faults.pm_recoveries == rep2.faults.pm_recoveries &&
      rep.faults.evacuated == rep2.faults.evacuated &&
      rep.faults.enqueued == rep2.faults.enqueued &&
      rep.faults.queue_end == rep2.faults.queue_end &&
      rep.faults.retries == rep2.faults.retries &&
      rep.faults.migration_aborts == rep2.faults.migration_aborts &&
      rep.faults.migration_stalls == rep2.faults.migration_stalls &&
      rep.faults.solver_degraded == rep2.faults.solver_degraded;
  if (!reports_match)
    return OracleReport::fail(scenario +
                              " same-seed replay produced a different report");
  for (std::size_t v = 0; v < inst.n_vms(); ++v)
    if (final_pl.pm_of(VmId{v}) != final2.pm_of(VmId{v}))
      return OracleReport::fail(
          scenario + " same-seed replay placed vm " + std::to_string(v) +
          " differently");
  return OracleReport::pass();
}

namespace {

/// Serializes every SimReport field (scalars, timelines, the migration
/// log, per-PM CVR vectors, fault counters) into a byte string so two
/// reports can be compared bit-exactly with one operator==.
std::string encode_report(const SimReport& r) {
  durable::StateWriter w;
  w.varint(r.total_migrations);
  w.varint(r.failed_migrations);
  w.varint(r.pms_used_end);
  w.varint(r.pms_used_max);
  w.size_vec(r.pms_used_timeline);
  w.size_vec(r.migrations_per_slot);
  w.varint(r.events.size());
  for (const MigrationEvent& e : r.events) {
    w.varint(static_cast<std::size_t>(e.slot));
    w.varint(e.vm.value);
    w.varint(e.from.value + 1);  // invalid (failed migration) wraps to 0
    w.varint(e.to.value + 1);
  }
  w.f64_vec(r.pm_cvr);
  w.f64_vec(r.pm_windowed_cvr_end);
  w.f64(r.mean_cvr);
  w.f64(r.max_cvr);
  w.f64(r.energy_wh);
  w.varint(r.faults.pm_crashes);
  w.varint(r.faults.pm_recoveries);
  w.varint(r.faults.evacuated);
  w.varint(r.faults.enqueued);
  w.varint(r.faults.queue_end);
  w.varint(r.faults.retries);
  w.varint(r.faults.migration_aborts);
  w.varint(r.faults.migration_stalls);
  w.varint(r.faults.solver_degraded);
  w.varint(r.faults.lost_vms);
  return w.take();
}

/// Removes the oracle's per-case state directories on every exit path.
struct ScopedDirs {
  std::vector<std::string> dirs;
  std::string add(std::string d) {
    std::filesystem::remove_all(d);
    dirs.push_back(d);
    return dirs.back();
  }
  ~ScopedDirs() {
    for (const std::string& d : dirs) {
      std::error_code ec;
      std::filesystem::remove_all(d, ec);
    }
  }
};

}  // namespace

OracleReport check_durability_contract(const FuzzCase& c) {
  const std::size_t n_pms = std::max<std::size_t>(c.n_pms, 2);
  Rng rng(c.seed ^ kDurabilityStream);
  const ProblemInstance inst =
      random_instance(c.n_vms, n_pms, c.params, InstanceRanges{}, rng);
  const PlacementResult seeded = ffd_by_peak(inst);
  if (!seeded.complete())
    return OracleReport::skip("starved fleet: no complete initial placement");
  const std::uint64_t sim_seed = rng.next_u64();

  const std::size_t slots = std::max<std::size_t>(c.fault_slots, 8);
  const std::size_t kill_slot = 1 + c.fault_seed % (slots - 1);
  const std::size_t cadence = 1 + (c.fault_seed >> 8) % 12;
  const std::size_t victim_pm = c.fault_seed % n_pms;

  std::ostringstream oss;
  oss << describe(c) << " n_vms=" << c.n_vms << " n_pms=" << n_pms
      << " slots=" << slots << " kill@" << kill_slot << " cadence="
      << cadence << " crash@" << c.fault_crash_slot << " recover@"
      << c.fault_recover_slot;
  const std::string scenario = oss.str();

  // PM churn plus a Markov migration-abort stream keeps the state the
  // snapshot must capture non-trivial; no solver outage here because the
  // ladder path depends on the process-wide table cache, which a restore
  // legitimately re-warms.
  const auto make_plan = [&](bool with_kill) {
    fault::FaultPlan plan;
    plan.seed = c.fault_seed;
    plan.markov.p_mig_fail = c.fault_p_mig_fail;
    plan.scripted.push_back(
        {c.fault_crash_slot, fault::FaultKind::kPmCrash, victim_pm, 0});
    plan.scripted.push_back(
        {c.fault_recover_slot, fault::FaultKind::kPmRecover, victim_pm, 0});
    if (with_kill)
      plan.scripted.push_back(
          {kill_slot, fault::FaultKind::kKill, fault::kNoPm, 0});
    std::sort(plan.scripted.begin(), plan.scripted.end(),
              [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                return a.slot < b.slot;
              });
    plan.validate(n_pms);
    return plan;
  };

  ScopedDirs tmp;
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("burstq_fuzz_durability_" + std::to_string(c.seed)))
          .string();

  const auto make_cfg = [&](bool with_kill, const std::string& dir) {
    SimConfig cfg;
    cfg.slots = slots;
    cfg.policy.rho = c.rho;
    cfg.faults = make_plan(with_kill);
    durable::DurabilityConfig dur;
    dur.dir = dir;
    dur.snapshot_every = cadence;
    cfg.durability = dur;
    return cfg;
  };

  // `mutate` runs between the kill and the restore (torn-tail /
  // corruption injection); returns the report of the completed run.
  const auto run_with_restores =
      [&](const SimConfig& cfg,
          const std::function<void(const std::string&)>& mutate,
          std::size_t& restores) {
        mapcal_table_cache_clear();
        for (;;) {
          ClusterSimulator sim(inst, seeded.placement, cfg, Rng(sim_seed));
          if (restores > 0) (void)sim.restore_from_durable();
          try {
            SimReport rep = sim.run();
            return std::pair<SimReport, Placement>(std::move(rep),
                                                   sim.placement());
          } catch (const durable::SimKilled&) {
            if (restores == 0 && mutate) mutate(cfg.durability->dir);
            ++restores;
          }
        }
      };

  // Baseline: durability on, no kill.
  const SimConfig base_cfg = make_cfg(false, tmp.add(root + ".base"));
  mapcal_table_cache_clear();
  ClusterSimulator base(inst, seeded.placement, base_cfg, Rng(sim_seed));
  const std::string want = encode_report(base.run());
  const Placement want_pl = base.placement();

  // Kill-restart: the restored run must match the baseline byte for byte.
  const SimConfig kill_cfg = make_cfg(true, tmp.add(root + ".kill"));
  std::size_t restores = 0;
  const auto [rep, pl] = run_with_restores(kill_cfg, nullptr, restores);
  if (restores == 0)
    return OracleReport::fail(scenario + " scripted kill never fired");
  if (encode_report(rep) != want)
    return OracleReport::fail(
        scenario + " kill-restart report differs from uninterrupted run");
  for (std::size_t v = 0; v < inst.n_vms(); ++v)
    if (pl.pm_of(VmId{v}) != want_pl.pm_of(VmId{v}))
      return OracleReport::fail(scenario + " kill-restart placed vm " +
                                std::to_string(v) + " differently");

  // Torn tail: chop the journal mid-frame before restoring.  The torn
  // group is discarded, the slot re-executes, and the run still
  // converges to the baseline.
  const std::string torn_dir = tmp.add(root + ".torn");
  const SimConfig torn_cfg = make_cfg(true, torn_dir);
  const auto tear = [&](const std::string& dir) {
    const durable::SnapshotStore store(dir, false);
    const auto snap_slots = store.snapshot_slots();
    if (snap_slots.empty()) return;
    const std::string wal = store.wal_path(snap_slots.back());
    std::error_code ec;
    const auto size = std::filesystem::file_size(wal, ec);
    // Leave the 12-byte header intact: the scanner treats a torn *group*
    // as recoverable tail damage, but this oracle should not manufacture
    // a torn header.
    if (!ec && size > 16) std::filesystem::resize_file(wal, size - 3, ec);
  };
  std::size_t torn_restores = 0;
  const auto [torn_rep, torn_pl] =
      run_with_restores(torn_cfg, tear, torn_restores);
  if (encode_report(torn_rep) != want)
    return OracleReport::fail(
        scenario + " torn-WAL recovery diverged from the baseline run");

  // Bit-flipped snapshot: the restore must refuse loudly, never resume
  // from garbage.
  const std::string flip_dir = tmp.add(root + ".flip");
  const SimConfig flip_cfg = make_cfg(true, flip_dir);
  mapcal_table_cache_clear();
  try {
    ClusterSimulator sim(inst, seeded.placement, flip_cfg, Rng(sim_seed));
    sim.run();
    return OracleReport::fail(scenario + " scripted kill never fired");
  } catch (const durable::SimKilled&) {
  }
  {
    const durable::SnapshotStore store(flip_dir, false);
    const auto snap_slots = store.snapshot_slots();
    if (!snap_slots.empty()) {
      const std::string snap = store.snapshot_path(snap_slots.back());
      std::fstream f(snap,
                     std::ios::in | std::ios::out | std::ios::binary);
      f.seekg(0, std::ios::end);
      const auto end = static_cast<std::size_t>(f.tellg());
      const std::size_t at = 24 + (end - 24) / 2;  // mid-blob, past header
      f.seekg(static_cast<std::streamoff>(at));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x10);
      f.seekp(static_cast<std::streamoff>(at));
      f.write(&byte, 1);
      f.flush();

      ClusterSimulator sim(inst, seeded.placement, flip_cfg, Rng(sim_seed));
      try {
        (void)sim.restore_from_durable();
        return OracleReport::fail(
            scenario + " bit-flipped snapshot restored without an error");
      } catch (const durable::CorruptState&) {
      }
    }
  }
  return OracleReport::pass();
}

OracleReport run_oracle(OracleId id, const FuzzCase& c) {
  switch (id) {
    case OracleId::kStationary: return check_stationary_backends(c);
    case OracleId::kCvr: return check_cvr_bound_vs_simulation(c);
    case OracleId::kPlacement: return check_placement_engines(c);
    case OracleId::kCache: return check_mapcal_cache(c);
    case OracleId::kRecovery: return check_recovery_invariants(c);
    case OracleId::kDurability: return check_durability_contract(c);
  }
  BURSTQ_ASSERT(false, "unknown OracleId");
  return OracleReport::fail("unknown oracle");
}

}  // namespace burstq::check
