#include "check/generator.h"

#include <array>

#include "common/rng.h"

namespace burstq::check {

namespace {

/// Switch-probability palette hugging both ends of the valid (0, 1]
/// domain.  1.0 is the periodic/reducible corner; 1e-6 is the slow-mixing
/// floor the ISSUE's second reproducer lives at.
constexpr std::array<double, 9> kProbPalette = {
    1e-6, 1e-5, 1e-3, 0.1, 0.5, 0.9, 1.0 - 1e-3, 1.0 - 1e-6, 1.0};

/// rho palette: exact 0 (reserve everything), near-0, typical budgets,
/// and near-1 (reserve almost nothing).
constexpr std::array<double, 7> kRhoPalette = {0.0,  1e-6, 1e-3, 0.01,
                                               0.1,  0.5,  0.99};

/// k palette: the degenerate k = 1, small, the paper's d = 16, and a
/// large-k stressor.
constexpr std::array<std::size_t, 5> kKPalette = {1, 2, 3, 16, 64};

double draw_probability(Rng& rng) {
  if (rng.bernoulli(0.6))
    return kProbPalette[rng.next_below(kProbPalette.size())];
  // Uniform interior of (0, 1]: 1 - U[0,1) excludes exact zero.
  return 1.0 - rng.next_double();
}

}  // namespace

std::uint64_t derive_case_seed(std::uint64_t master_seed,
                               std::uint64_t index) {
  // SplitMix64 finalizer over master_seed + index * odd-constant; the
  // same mixer Rng seeding uses, so streams are independent per case.
  std::uint64_t z = master_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

FuzzCase generate_case(std::uint64_t case_seed, std::size_t index) {
  Rng rng(case_seed);
  FuzzCase c;
  c.seed = case_seed;
  c.index = index;

  c.params.p_on = draw_probability(rng);
  // Equal switch probabilities are their own bug family (p_on = p_off = 1
  // is periodic, p_on = p_off = eps is the slowest mixer per unit eps);
  // sample them far more often than chance would.
  c.params.p_off = rng.bernoulli(0.3) ? c.params.p_on
                                      : draw_probability(rng);

  c.rho = rng.bernoulli(0.6) ? kRhoPalette[rng.next_below(kRhoPalette.size())]
                             : rng.next_double();

  c.k = rng.bernoulli(0.5)
            ? kKPalette[rng.next_below(kKPalette.size())]
            : static_cast<std::size_t>(rng.uniform_int(1, 32));

  c.n_vms = static_cast<std::size_t>(rng.uniform_int(1, 120));
  c.n_pms = static_cast<std::size_t>(rng.uniform_int(1, 40));
  constexpr std::array<std::size_t, 3> kDs = {4, 8, 16};
  c.max_vms_per_pm = kDs[rng.next_below(kDs.size())];

  // Recovery scenario.  Drawn last: the draws above must stay bit-stable
  // for a given case seed so old discrepancy reports keep replaying.
  c.fault_slots = 30 + rng.next_below(31);       // 30..60
  c.fault_crash_slot = 1 + rng.next_below(10);   // early crash
  c.fault_recover_slot =
      c.fault_crash_slot + 5 + rng.next_below(20);
  c.fault_solver_slot = rng.next_below(c.fault_slots);
  c.fault_solver_len = 1 + rng.next_below(15);
  c.fault_p_mig_fail =
      rng.bernoulli(0.5) ? 0.0 : 0.05 * rng.next_double();
  c.fault_seed = rng.next_u64();
  return c;
}

}  // namespace burstq::check
