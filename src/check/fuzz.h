// Fuzz harness: drives the boundary-biased generator through the
// differential oracles and collects structured discrepancy reports.
//
// Determinism contract: run_fuzz(options) is a pure function of its
// options — same seed, instance count and oracle selection produce the
// same cases, the same oracle verdicts and the same summary, bit for bit.
// Discrepancies carry the per-case seed; replay_case(seed) re-runs
// exactly one case for debugging.
//
// Every discrepancy is also emitted on the global obs event log (kind
// "fuzz.discrepancy", fields: index, seed, oracle, detail) so a CI run
// with --obs-out leaves a machine-readable artifact, plus a final
// "fuzz.summary" event.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/oracles.h"

namespace burstq::check {

struct FuzzOptions {
  std::uint64_t seed{1};      ///< master seed; case i uses derive_case_seed
  std::size_t instances{100};
  bool stationary{true};      ///< oracle (a): backend agreement
  bool cvr{true};             ///< oracle (b): bound vs simulation
  bool placement{true};       ///< oracle (c): naive vs incremental engines
  bool cache{true};           ///< oracle (d): table cache identity
  bool recovery{true};        ///< oracle (e): fault-injection invariants
  bool durability{true};      ///< oracle (f): kill-restart persistence
  /// Wall-clock budget in seconds; 0 = unlimited.  The sweep stops
  /// cleanly at the first case *boundary* past the budget and reports a
  /// partial summary (stopped_early set, instances = cases actually
  /// run).  Verdicts of completed cases are unaffected — only how many
  /// cases run is time-dependent.
  double max_seconds{0.0};
};

/// One confirmed oracle failure, replayable via its case seed.
struct FuzzDiscrepancy {
  std::size_t index{0};
  std::uint64_t case_seed{0};
  std::string oracle;
  std::string detail;
};

struct FuzzSummary {
  std::size_t instances{0};     ///< cases actually run (may stop early)
  std::size_t oracle_runs{0};   ///< oracle executions that produced a verdict
  std::size_t oracle_skips{0};  ///< gated-out executions (e.g. slow mixing)
  bool stopped_early{false};    ///< the max_seconds budget expired
  std::vector<FuzzDiscrepancy> discrepancies;

  [[nodiscard]] bool ok() const { return discrepancies.empty(); }
};

/// Runs `options.instances` cases through the selected oracles.
FuzzSummary run_fuzz(const FuzzOptions& options);

/// Re-runs the single case identified by `case_seed` (as quoted in a
/// discrepancy report) through the selected oracles.
FuzzSummary replay_case(std::uint64_t case_seed, const FuzzOptions& options);

}  // namespace burstq::check
