#include "check/fuzz.h"

#include <array>
#include <chrono>

#include "obs/obs.h"

namespace burstq::check {

namespace {

constexpr std::array<OracleId, 6> kAllOracles = {
    OracleId::kStationary, OracleId::kCvr,      OracleId::kPlacement,
    OracleId::kCache,      OracleId::kRecovery, OracleId::kDurability};

bool oracle_selected(const FuzzOptions& options, OracleId id) {
  switch (id) {
    case OracleId::kStationary: return options.stationary;
    case OracleId::kCvr: return options.cvr;
    case OracleId::kPlacement: return options.placement;
    case OracleId::kCache: return options.cache;
    case OracleId::kRecovery: return options.recovery;
    case OracleId::kDurability: return options.durability;
  }
  return false;
}

void run_case(const FuzzCase& c, const FuzzOptions& options,
              FuzzSummary& summary) {
  BURSTQ_SPAN("check.fuzz.case");
  for (const OracleId id : kAllOracles) {
    if (!oracle_selected(options, id)) continue;
    const OracleReport report = run_oracle(id, c);
    if (!report.ran) {
      ++summary.oracle_skips;
      BURSTQ_COUNT("check.fuzz.skips", 1);
      continue;
    }
    ++summary.oracle_runs;
    BURSTQ_COUNT("check.fuzz.oracle_runs", 1);
    if (report.ok) continue;
    BURSTQ_COUNT("check.fuzz.discrepancies", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fuzz.discrepancy",
                 {"index", c.index}, {"seed", c.seed},
                 {"oracle", oracle_name(id)},
                 {"detail", std::string_view(report.detail)});
    summary.discrepancies.push_back(
        {c.index, c.seed, std::string(oracle_name(id)), report.detail});
  }
}

void emit_summary([[maybe_unused]] const FuzzSummary& summary,
                  [[maybe_unused]] std::uint64_t master_seed) {
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fuzz.summary",
               {"seed", master_seed}, {"instances", summary.instances},
               {"oracle_runs", summary.oracle_runs},
               {"oracle_skips", summary.oracle_skips},
               {"stopped_early", summary.stopped_early},
               {"discrepancies", summary.discrepancies.size()});
}

}  // namespace

FuzzSummary run_fuzz(const FuzzOptions& options) {
  BURSTQ_SPAN("check.fuzz.run");
  const auto start = std::chrono::steady_clock::now();
  FuzzSummary summary;
  for (std::size_t i = 0; i < options.instances; ++i) {
    // The wall-clock budget is checked only at case boundaries, so every
    // started case still gets its full verdict.
    if (options.max_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options.max_seconds) {
        summary.stopped_early = true;
        BURSTQ_COUNT("check.fuzz.budget_stops", 1);
        break;
      }
    }
    const std::uint64_t case_seed = derive_case_seed(options.seed, i);
    const FuzzCase c = generate_case(case_seed, i);
    ++summary.instances;
    BURSTQ_COUNT("check.fuzz.instances", 1);
    run_case(c, options, summary);
  }
  emit_summary(summary, options.seed);
  return summary;
}

FuzzSummary replay_case(std::uint64_t case_seed,
                        const FuzzOptions& options) {
  FuzzSummary summary;
  summary.instances = 1;
  const FuzzCase c = generate_case(case_seed);
  BURSTQ_COUNT("check.fuzz.instances", 1);
  run_case(c, options, summary);
  emit_summary(summary, case_seed);
  return summary;
}

}  // namespace burstq::check
