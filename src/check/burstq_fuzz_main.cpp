// burstq_fuzz — differential fuzzing of the solver stack.
//
//   burstq_fuzz --seed 1 --instances 1000          # the default sweep
//   burstq_fuzz --oracles stationary,cache         # subset of oracles
//   burstq_fuzz --replay 0x1b873593deadbeef        # one case, by seed
//   burstq_fuzz --obs-out fuzz.jsonl               # machine-readable log
//
// Exit status 0 when every oracle agrees on every case, 1 on any
// discrepancy (each printed with its replayable case seed), 2 on usage
// errors.  Same seed => bit-identical run.

#include <cstdio>
#include <exception>
#include <sstream>
#include <string>

#include "check/fuzz.h"
#include "common/args.h"
#include "obs/obs.h"

namespace {

using burstq::check::FuzzOptions;
using burstq::check::FuzzSummary;

/// Parses "all" or a comma-separated subset of
/// stationary,cvr,placement,cache,recovery,durability into the option
/// booleans.
bool apply_oracle_selection(const std::string& text, FuzzOptions& options) {
  if (text == "all") return true;
  options.stationary = options.cvr = options.placement = options.cache =
      options.recovery = options.durability = false;
  std::istringstream iss(text);
  std::string name;
  while (std::getline(iss, name, ',')) {
    if (name == "stationary") {
      options.stationary = true;
    } else if (name == "cvr") {
      options.cvr = true;
    } else if (name == "placement") {
      options.placement = true;
    } else if (name == "cache") {
      options.cache = true;
    } else if (name == "recovery") {
      options.recovery = true;
    } else if (name == "durability") {
      options.durability = true;
    } else {
      std::fprintf(stderr, "unknown oracle '%s'\n", name.c_str());
      return false;
    }
  }
  return options.stationary || options.cvr || options.placement ||
         options.cache || options.recovery || options.durability;
}

void print_summary(const FuzzSummary& summary) {
  for (const auto& d : summary.discrepancies)
    std::fprintf(stderr,
                 "DISCREPANCY [%s] case %zu (replay with --replay "
                 "0x%llx): %s\n",
                 d.oracle.c_str(), d.index,
                 static_cast<unsigned long long>(d.case_seed),
                 d.detail.c_str());
  std::printf(
      "burstq_fuzz: %zu instance(s)%s, %zu oracle run(s), %zu skip(s), "
      "%zu discrepanc%s\n",
      summary.instances,
      summary.stopped_early ? " (stopped early: wall-clock budget)" : "",
      summary.oracle_runs, summary.oracle_skips,
      summary.discrepancies.size(),
      summary.discrepancies.size() == 1 ? "y" : "ies");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace burstq;

  ArgParser args("burstq_fuzz",
                 "differential fuzz oracle over the burstq solver stack");
  args.add_option("seed", "master seed; case i derives its own seed", "1");
  args.add_option("instances", "number of fuzz cases to run", "1000");
  args.add_option("oracles",
                  "'all' or comma list of stationary,cvr,placement,cache,"
                  "recovery,durability",
                  "all");
  args.add_option("max-seconds",
                  "wall-clock budget; the sweep stops cleanly at the next "
                  "case boundary and prints a partial summary (0 = off)",
                  "0");
  args.add_option("replay",
                  "run the single case with this seed (decimal or 0x hex) "
                  "instead of a sweep");
  args.add_option("obs-out",
                  "record fuzz.discrepancy/fuzz.summary events here "
                  "(.jsonl; .csv selects CSV, .btrc binary columnar)");
  args.add_option("obs-level", "event level: off | decisions | detail",
                  "decisions");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                 args.usage().c_str());
    return 2;
  }

  try {
    FuzzOptions options;
    options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    options.instances =
        static_cast<std::size_t>(args.get_int("instances"));
    options.max_seconds = args.get_double("max-seconds");
    if (options.max_seconds < 0.0) {
      std::fprintf(stderr, "--max-seconds must be >= 0\n");
      return 2;
    }
    if (!apply_oracle_selection(args.get("oracles"), options)) return 2;

    if (args.has("obs-out")) {
      const std::string path = args.get("obs-out");
      obs::events().open(path, obs::event_format_from_path(path),
                         obs::parse_event_level(args.get("obs-level")));
    }

    FuzzSummary summary;
    if (args.has("replay")) {
      const std::uint64_t case_seed =
          std::stoull(args.get("replay"), nullptr, 0);
      summary = check::replay_case(case_seed, options);
    } else {
      summary = check::run_fuzz(options);
    }

    if (args.has("obs-out")) obs::events().close();
    print_summary(summary);
    return summary.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "burstq_fuzz: fatal: %s\n", e.what());
    return 2;
  }
}
