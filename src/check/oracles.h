// Differential oracles: independent implementations of the same quantity
// cross-checked on one fuzz case.  Each oracle is deterministic in the
// case seed, so any discrepancy replays exactly.
//
//   kStationary — the three stationary backends (kGaussian / kPower /
//                 kClosedForm) pinned pairwise within tolerance.
//   kCvr        — map_cal's analytic CVR bound (Eq. 16) vs the empirical
//                 CVR of simulate_occupancy, within a mixing-aware
//                 statistical tolerance; gated out for chains too slow to
//                 mix inside a bounded simulation.
//   kPlacement  — naive linear-scan vs incremental slack-tree first-fit
//                 engines bit-identical, before and after random churn.
//   kCache      — MapCalTable cache hits bit-identical to cold solves,
//                 cold solves bit-identical to direct map_cal calls, and
//                 value-equal keys (-0.0 vs 0.0) never duplicating an
//                 entry.  Mutates (clears) the process-wide table cache.
//   kRecovery   — ClusterSimulator under a scripted crash/recover/solver
//                 fault plan: zero lost VMs, every VM hosted or queued at
//                 the end, per-PM aggregates consistent, and the whole
//                 run bit-identical when repeated from the same seed.
//                 Mutates (clears) the process-wide table cache so cache
//                 warmth from run 1 cannot change run 2's ladder path.
//   kDurability — the crash-durable persistence contract (src/durable):
//                 a run killed mid-flight and restored from snapshot+WAL
//                 produces the byte-identical report and final placement
//                 of the uninterrupted run; a torn WAL tail recovers the
//                 valid prefix and still converges; a bit-flipped
//                 snapshot fails loudly instead of restoring garbage.
//                 Writes per-case state under the system temp directory
//                 (removed on exit) and clears the table cache.

#pragma once

#include <string>
#include <string_view>

#include "check/generator.h"

namespace burstq::check {

enum class OracleId {
  kStationary,
  kCvr,
  kPlacement,
  kCache,
  kRecovery,
  kDurability,
};

/// "stationary" | "cvr" | "placement" | "cache" | "recovery" |
/// "durability".
std::string_view oracle_name(OracleId id);

/// Outcome of one oracle on one case.
struct OracleReport {
  bool ran{true};    ///< false when gated out (not counted as pass or fail)
  bool ok{true};     ///< meaningful only when ran
  std::string detail;  ///< human-readable mismatch description when !ok

  static OracleReport pass() { return {}; }
  static OracleReport skip(std::string why) {
    return {false, true, std::move(why)};
  }
  static OracleReport fail(std::string what) {
    return {true, false, std::move(what)};
  }
};

OracleReport check_stationary_backends(const FuzzCase& c);
OracleReport check_cvr_bound_vs_simulation(const FuzzCase& c);
OracleReport check_placement_engines(const FuzzCase& c);
OracleReport check_mapcal_cache(const FuzzCase& c);
OracleReport check_recovery_invariants(const FuzzCase& c);
OracleReport check_durability_contract(const FuzzCase& c);

/// Dispatch by id.
OracleReport run_oracle(OracleId id, const FuzzCase& c);

}  // namespace burstq::check
