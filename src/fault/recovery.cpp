#include "fault/recovery.h"

#include <algorithm>
#include <optional>

#include "common/error.h"
#include "obs/obs.h"

namespace burstq::fault {

void RecoveryPolicy::validate() const {
  BURSTQ_REQUIRE(max_retries >= 1, "recovery max_retries must be >= 1");
  BURSTQ_REQUIRE(backoff_base_slots >= 1,
                 "recovery backoff base must be >= 1 slot");
  BURSTQ_REQUIRE(backoff_cap_slots >= backoff_base_slots,
                 "recovery backoff cap must be >= the base delay");
}

RecoveryController::RecoveryController(const ProblemInstance& inst,
                                       RecoveryPolicy policy,
                                       std::size_t max_vms_per_pm,
                                       double rho, StationaryMethod method)
    : inst_(&inst),
      policy_(policy),
      ladder_(max_vms_per_pm, rho, method) {
  policy_.validate();
}

std::size_t RecoveryController::backoff_delay(std::size_t retries) const {
  // 1x, 2x, 4x ... the base, saturating at the cap (and guarding the
  // shift against pathological retry counts).
  const std::size_t exponent = std::min(retries, policy_.max_retries);
  std::size_t delay = policy_.backoff_base_slots;
  for (std::size_t i = 0; i < exponent; ++i) {
    delay *= 2;
    if (delay >= policy_.backoff_cap_slots) break;
  }
  return std::min(delay, policy_.backoff_cap_slots);
}

std::optional<PmId> RecoveryController::find_target(
    const Placement& placement, std::size_t vm, std::span<const std::uint8_t> pm_up,
    const OnOffParams& rounded) {
  std::vector<VmSpec> hosted;
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    if (!pm_up[j]) continue;
    const PmId pm{j};
    hosted.clear();
    hosted.reserve(placement.count_on(pm));
    for (std::size_t i : placement.vms_on(pm))
      hosted.push_back(inst_->vms[i]);
    if (ladder_.admits(hosted, inst_->vms[vm], inst_->pms[j].capacity,
                       rounded))
      return pm;
  }
  return std::nullopt;
}

void RecoveryController::enqueue(std::size_t vm, std::size_t slot) {
  QueuedVm q;
  q.vm = vm;
  q.reason = QueueReason::kNoFeasiblePm;
  q.retries = 0;
  q.next_attempt = slot + backoff_delay(0);
  queue_.push_back(q);
  ++enqueued_total_;
  BURSTQ_COUNT("fault.queue.enqueued", 1);
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.queue.enqueue",
               {"t", slot}, {"vm", vm}, {"reason", "no-feasible-pm"});
}

std::size_t RecoveryController::evacuate(Placement& placement, PmId crashed,
                                         std::span<const std::uint8_t> pm_up,
                                         const OnOffParams& rounded,
                                         std::size_t slot) {
  BURSTQ_REQUIRE(!pm_up[crashed.value],
                 "evacuate expects the crashed PM to be marked down");
  // Copy the hosted list: unassign mutates it.
  const std::vector<std::size_t> victims = placement.vms_on(crashed);
  std::size_t rehomed = 0;
  for (std::size_t vm : victims) {
    placement.unassign(VmId{vm});
    if (const auto target = find_target(placement, vm, pm_up, rounded)) {
      placement.assign(VmId{vm}, *target);
      ++rehomed;
      BURSTQ_COUNT("fault.evacuations", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.evacuate",
                   {"t", slot}, {"vm", vm}, {"from", crashed.value},
                   {"to", target->value});
    } else {
      enqueue(vm, slot);
    }
  }
  return rehomed;
}

std::size_t RecoveryController::drain(Placement& placement,
                                      std::span<const std::uint8_t> pm_up,
                                      const OnOffParams& rounded,
                                      std::size_t slot) {
  std::size_t admitted = 0;
  for (auto& q : queue_) {
    if (q.next_attempt > slot) continue;
    // Every attempt past the initial evacuation-time one is a retry —
    // counted separately from first-attempt migrations.
    ++q.retries;
    ++retries_total_;
    BURSTQ_COUNT("migration.retries", 1);
    if (const auto target = find_target(placement, q.vm, pm_up, rounded)) {
      placement.assign(VmId{q.vm}, *target);
      ++admitted;
      BURSTQ_COUNT("fault.queue.drained", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.queue.admit",
                   {"t", slot}, {"vm", q.vm}, {"pm", target->value},
                   {"retries", q.retries});
      q.vm = static_cast<std::size_t>(-1);  // mark admitted; erased below
    } else {
      q.reason = QueueReason::kRetryBackoff;
      q.next_attempt = slot + backoff_delay(q.retries);
    }
  }
  std::erase_if(queue_, [](const QueuedVm& q) {
    return q.vm == static_cast<std::size_t>(-1);
  });
  return admitted;
}

bool RecoveryController::invariant_holds(const Placement& placement,
                                         std::span<const std::uint8_t> pm_up) const {
  for (std::size_t i = 0; i < placement.n_vms(); ++i) {
    const PmId pm = placement.pm_of(VmId{i});
    const bool queued =
        std::any_of(queue_.begin(), queue_.end(),
                    [i](const QueuedVm& q) { return q.vm == i; });
    if (pm.valid()) {
      if (queued || !pm_up[pm.value]) return false;
    } else if (!queued) {
      return false;
    }
  }
  return true;
}

}  // namespace burstq::fault
