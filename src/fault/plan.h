// Fault model for chaos testing the consolidation stack.
//
// A FaultPlan describes *what goes wrong and when* in a simulated
// cluster, from two composable sources:
//
//   * scripted events — an explicit, slot-stamped list (PM crashes and
//     recoveries, migration aborts/stalls, solver outages), parseable
//     from the compact `--fault-plan` CLI grammar below;
//   * a Markov model — per-slot crash/recover/migration-failure
//     probabilities drawn from the plan's own seeded Rng, so fault
//     arrivals are random yet bit-reproducible.
//
// Grammar (semicolon-separated items, whitespace-free):
//
//   crash@SLOT:pm=J        PM J fails at SLOT (hosted VMs must be evacuated)
//   recover@SLOT:pm=J      PM J comes back at SLOT
//   mig-abort@SLOT         every in-flight migration aborts at SLOT
//   mig-stall@SLOT:slots=N in-flight copies take N extra slots
//   solver@SLOT:slots=N    MapCal solves fail for N slots starting at SLOT
//   kill@SLOT              the consolidator process dies at SLOT (executed
//                          as a deterministic in-process abort; the durable
//                          layer restores from snapshot + WAL — see
//                          durable/durable.h)
//
// e.g. --fault-plan "crash@10:pm=2;solver@15:slots=20;recover@40:pm=2"
//
// Malformed items throw InvalidArgument with a message naming the
// offending item and what a correct one looks like — never a silent
// default.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace burstq::fault {

inline constexpr std::size_t kNoPm = static_cast<std::size_t>(-1);
/// Sentinel for "no horizon known" in FaultPlan::validate.
inline constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

enum class FaultKind {
  kPmCrash,
  kPmRecover,
  kMigrationAbort,
  kMigrationStall,
  kSolverOutage,
  kKill,
};

/// "crash" | "recover" | "mig-abort" | "mig-stall" | "solver" | "kill".
std::string_view fault_kind_name(FaultKind kind);

/// One scripted fault.
struct FaultEvent {
  std::size_t slot{0};
  FaultKind kind{FaultKind::kPmCrash};
  std::size_t pm{kNoPm};     ///< crash/recover target
  std::size_t duration{0};   ///< stall extra slots / solver outage length
};

/// Per-slot fault probabilities (all default 0 = fault-free).
struct MarkovFaultModel {
  double p_crash{0.0};     ///< per up-PM per-slot crash probability
  double p_recover{0.0};   ///< per down-PM per-slot recovery probability
  double p_mig_fail{0.0};  ///< per in-flight migration per-slot abort prob
  double p_kill{0.0};      ///< per-slot process-kill probability

  [[nodiscard]] bool any() const {
    return p_crash > 0.0 || p_mig_fail > 0.0 || p_kill > 0.0;
  }
  void validate() const;
};

struct FaultPlan {
  std::vector<FaultEvent> scripted;  ///< kept sorted by slot (stable)
  MarkovFaultModel markov;
  std::uint64_t seed{0};  ///< drives the Markov draws, nothing else

  [[nodiscard]] bool any() const {
    return !scripted.empty() || markov.any();
  }

  /// True when the plan can kill the process (scripted kill@ or Markov
  /// p_kill > 0).  Such a plan requires durability to be configured: a
  /// kill without a restore path would just lose the run.
  [[nodiscard]] bool has_kills() const {
    if (markov.p_kill > 0.0) return true;
    for (const FaultEvent& e : scripted)
      if (e.kind == FaultKind::kKill) return true;
    return false;
  }

  /// Checks probabilities, event shapes, exact-duplicate scripted events
  /// (a doubled item would fire twice, silently), and — when known — that
  /// every scripted pm index is in range and every scripted slot lies
  /// inside the simulation horizon (an out-of-horizon event would never
  /// fire, silently).  Pass kNoPm / kNoSlot to skip the respective check
  /// (e.g. right after parsing, before fleet size and run length are
  /// known).
  void validate(std::size_t n_pms = kNoPm,
                std::size_t horizon = kNoSlot) const;
};

/// Parses the `--fault-plan` grammar documented above.  The returned
/// plan's scripted events are sorted by slot (stable).  Throws
/// InvalidArgument on malformed input, naming the bad item.
FaultPlan parse_fault_plan(std::string_view spec);

}  // namespace burstq::fault
