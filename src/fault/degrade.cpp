#include "fault/degrade.h"

#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "placement/placement.h"
#include "queuing/quantile_reservation.h"

namespace burstq::fault {

std::string_view reserve_level_name(ReserveLevel level) {
  switch (level) {
    case ReserveLevel::kTable: return "table";
    case ReserveLevel::kGaussianTable: return "gaussian";
    case ReserveLevel::kQuantile: return "quantile";
    case ReserveLevel::kPeak: return "peak";
  }
  return "unknown";
}

ReservationLadder::ReservationLadder(std::size_t max_vms_per_pm, double rho,
                                     StationaryMethod preferred,
                                     double quantile_grid_step)
    : d_(max_vms_per_pm),
      rho_(rho),
      preferred_(preferred),
      grid_step_(quantile_grid_step) {
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "ladder requires max_vms_per_pm >= 1");
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "ladder requires rho in [0, 1)");
  BURSTQ_REQUIRE(quantile_grid_step > 0.0,
                 "quantile grid step must be positive");
}

bool ReservationLadder::admits_with_table(std::span<const VmSpec> hosted,
                                          const VmSpec& candidate,
                                          Resource capacity,
                                          const OnOffParams& rounded,
                                          StationaryMethod method) const {
  const MapCalTable table(d_, rounded, rho_, method);
  return fits_with_reservation_specs(hosted, candidate, capacity, table);
}

bool ReservationLadder::admits(std::span<const VmSpec> hosted,
                               const VmSpec& candidate, Resource capacity,
                               const OnOffParams& rounded) {
  // The per-PM cap d applies on every rung.
  if (hosted.size() + 1 > d_) return false;

  try {
    const bool ok =
        admits_with_table(hosted, candidate, capacity, rounded, preferred_);
    last_level_ = ReserveLevel::kTable;
    return ok;
  } catch (const SolverUnavailable&) {
  }

  if (preferred_ != StationaryMethod::kGaussian) {
    try {
      const bool ok = admits_with_table(hosted, candidate, capacity, rounded,
                                        StationaryMethod::kGaussian);
      last_level_ = ReserveLevel::kGaussianTable;
      ++degraded_decisions_;
      BURSTQ_COUNT("fault.solver.degraded", 1);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.solver.degrade",
                   {"level", reserve_level_name(last_level_)});
      return ok;
    } catch (const SolverUnavailable&) {
    }
  }

  try {
    // Rung 3: exact quantile of the aggregate extra demand; solver-free
    // and per-VM-parameter aware (no uniform rounding needed).
    std::vector<double> re;
    std::vector<double> q;
    re.reserve(hosted.size() + 1);
    q.reserve(hosted.size() + 1);
    Resource rb_sum = candidate.rb;
    re.push_back(candidate.re);
    q.push_back(candidate.onoff.stationary_on_probability());
    for (const VmSpec& v : hosted) {
      rb_sum += v.rb;
      re.push_back(v.re);
      q.push_back(v.onoff.stationary_on_probability());
    }
    QuantileReservationOptions opt;
    opt.rho = rho_;
    opt.grid_step = grid_step_;
    const double reserved = exact_quantile_reservation(re, q, opt);
    last_level_ = ReserveLevel::kQuantile;
    ++degraded_decisions_;
    BURSTQ_COUNT("fault.solver.degraded", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.solver.degrade",
                 {"level", reserve_level_name(last_level_)});
    return rb_sum + reserved <= capacity * (1.0 + kCapacityEpsilon);
  } catch (const std::exception&) {
  }

  // Rung 4: provision for every peak at once.  Never wrong, never fails.
  Resource peak = candidate.rp();
  for (const VmSpec& v : hosted) peak += v.rp();
  last_level_ = ReserveLevel::kPeak;
  ++degraded_decisions_;
  BURSTQ_COUNT("fault.solver.degraded", 1);
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.solver.degrade",
               {"level", reserve_level_name(last_level_)});
  return peak <= capacity * (1.0 + kCapacityEpsilon);
}

}  // namespace burstq::fault
