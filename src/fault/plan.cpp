#include "fault/plan.h"

#include <algorithm>
#include <charconv>

#include "common/error.h"

namespace burstq::fault {

namespace {

[[noreturn]] void bad_item(std::string_view item, std::string_view why) {
  std::string message = "malformed --fault-plan item '";
  message += item;
  message += "': ";
  message += why;
  message +=
      " (expected e.g. crash@10:pm=2, recover@40:pm=2, mig-abort@12, "
      "mig-stall@12:slots=3, solver@15:slots=20, kill@30)";
  throw InvalidArgument(message);
}

std::size_t parse_size(std::string_view item, std::string_view text,
                       std::string_view what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    std::string why = "'";
    why += text;
    why += "' is not a valid ";
    why += what;
    bad_item(item, why);
  }
  return value;
}

/// Parses the optional ":key=value" suffix; exactly one key is accepted
/// per kind, so a single pair covers the whole grammar.
std::size_t parse_kv(std::string_view item, std::string_view suffix,
                     std::string_view key) {
  const std::size_t eq = suffix.find('=');
  if (eq == std::string_view::npos) {
    std::string why = "expected ";
    why += key;
    why += "=<number> after ':'";
    bad_item(item, why);
  }
  if (suffix.substr(0, eq) != key) {
    std::string why = "unknown key '";
    why += suffix.substr(0, eq);
    why += "' (this kind takes ";
    why += key;
    why += "=)";
    bad_item(item, why);
  }
  return parse_size(item, suffix.substr(eq + 1), key);
}

FaultEvent parse_item(std::string_view item) {
  const std::size_t at = item.find('@');
  if (at == std::string_view::npos)
    bad_item(item, "missing '@<slot>'");
  const std::string_view kind_text = item.substr(0, at);
  std::string_view rest = item.substr(at + 1);
  std::string_view suffix;
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    suffix = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }

  FaultEvent event;
  event.slot = parse_size(item, rest, "slot");
  if (kind_text == "crash" || kind_text == "recover") {
    event.kind = kind_text == "crash" ? FaultKind::kPmCrash
                                      : FaultKind::kPmRecover;
    if (suffix.empty()) bad_item(item, "missing ':pm=<index>'");
    event.pm = parse_kv(item, suffix, "pm");
  } else if (kind_text == "mig-abort") {
    event.kind = FaultKind::kMigrationAbort;
    if (!suffix.empty()) bad_item(item, "mig-abort takes no ':key=value'");
  } else if (kind_text == "kill") {
    event.kind = FaultKind::kKill;
    if (!suffix.empty()) bad_item(item, "kill takes no ':key=value'");
  } else if (kind_text == "mig-stall" || kind_text == "solver") {
    event.kind = kind_text == "mig-stall" ? FaultKind::kMigrationStall
                                          : FaultKind::kSolverOutage;
    if (suffix.empty()) bad_item(item, "missing ':slots=<count>'");
    event.duration = parse_kv(item, suffix, "slots");
    if (event.duration == 0)
      bad_item(item, "slots must be >= 1 (0 would be a silent no-op)");
  } else {
    std::string why = "unknown fault kind '";
    why += kind_text;
    why += "'";
    bad_item(item, why);
  }
  return event;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPmCrash: return "crash";
    case FaultKind::kPmRecover: return "recover";
    case FaultKind::kMigrationAbort: return "mig-abort";
    case FaultKind::kMigrationStall: return "mig-stall";
    case FaultKind::kSolverOutage: return "solver";
    case FaultKind::kKill: return "kill";
  }
  return "unknown";
}

void MarkovFaultModel::validate() const {
  BURSTQ_REQUIRE(p_crash >= 0.0 && p_crash <= 1.0,
                 "fault p_crash must be a probability in [0, 1]");
  BURSTQ_REQUIRE(p_recover >= 0.0 && p_recover <= 1.0,
                 "fault p_recover must be a probability in [0, 1]");
  BURSTQ_REQUIRE(p_mig_fail >= 0.0 && p_mig_fail <= 1.0,
                 "fault p_mig_fail must be a probability in [0, 1]");
  BURSTQ_REQUIRE(p_kill >= 0.0 && p_kill <= 1.0,
                 "fault p_kill must be a probability in [0, 1]");
  BURSTQ_REQUIRE(p_crash == 0.0 || p_recover > 0.0,
                 "fault p_crash > 0 with p_recover == 0 would strand the "
                 "whole fleet; give crashed PMs a recovery probability");
}

namespace {

std::string event_text(const FaultEvent& e) {
  std::string out(fault_kind_name(e.kind));
  out += '@';
  out += std::to_string(e.slot);
  if (e.pm != kNoPm) out += ":pm=" + std::to_string(e.pm);
  if (e.duration != 0) out += ":slots=" + std::to_string(e.duration);
  return out;
}

}  // namespace

void FaultPlan::validate(std::size_t n_pms, std::size_t horizon) const {
  markov.validate();
  // Events are sorted by slot, so duplicates cluster into same-slot runs;
  // compare all pairs within a run (runs are tiny in practice).
  for (std::size_t k = 0; k < scripted.size(); ++k) {
    const FaultEvent& a = scripted[k];
    for (std::size_t l = k + 1;
         l < scripted.size() && scripted[l].slot == a.slot; ++l) {
      const FaultEvent& b = scripted[l];
      if (a.kind == b.kind && a.pm == b.pm && a.duration == b.duration) {
        throw InvalidArgument("duplicate scripted fault '" + event_text(a) +
                              "': the same event would fire twice; drop "
                              "one occurrence");
      }
    }
  }
  for (const FaultEvent& e : scripted) {
    if (horizon != kNoSlot && e.slot >= horizon) {
      throw InvalidArgument(
          "scripted fault '" + event_text(e) + "' is outside the horizon (" +
          std::to_string(horizon) +
          " slots): it would silently never fire; move it below slot " +
          std::to_string(horizon) + " or lengthen the run");
    }
    const bool targets_pm =
        e.kind == FaultKind::kPmCrash || e.kind == FaultKind::kPmRecover;
    if (targets_pm) {
      BURSTQ_REQUIRE(e.pm != kNoPm,
                     "scripted crash/recover events need a pm index");
      if (n_pms != kNoPm && e.pm >= n_pms) {
        std::string message = "scripted fault targets pm ";
        message += std::to_string(e.pm);
        message += " but the fleet has only ";
        message += std::to_string(n_pms);
        message += " PMs";
        throw InvalidArgument(message);
      }
    }
    const bool needs_duration = e.kind == FaultKind::kMigrationStall ||
                                e.kind == FaultKind::kSolverOutage;
    if (needs_duration)
      BURSTQ_REQUIRE(e.duration >= 1,
                     "mig-stall/solver events need slots >= 1");
  }
  BURSTQ_REQUIRE(
      std::is_sorted(scripted.begin(), scripted.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.slot < b.slot;
                     }),
      "scripted fault events must be sorted by slot");
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(start, end - start);
    if (!item.empty()) plan.scripted.push_back(parse_item(item));
    if (end == spec.size()) break;
    start = end + 1;
  }
  if (plan.scripted.empty())
    throw InvalidArgument(
        "--fault-plan '" + std::string(spec) +
        "' contains no fault items (example: crash@10:pm=2;recover@40:pm=2)");
  std::stable_sort(plan.scripted.begin(), plan.scripted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.slot < b.slot;
                   });
  plan.validate();
  return plan;
}

}  // namespace burstq::fault
