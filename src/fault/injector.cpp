#include "fault/injector.h"

#include <algorithm>

#include "common/error.h"
#include "obs/obs.h"

namespace burstq::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n_pms)
    : plan_(std::move(plan)), rng_(plan_.seed), up_(n_pms, 1) {
  BURSTQ_REQUIRE(n_pms >= 1, "fault injector needs at least one PM");
  plan_.validate(n_pms);
}

SlotFaults FaultInjector::advance(std::size_t slot) {
  BURSTQ_REQUIRE(slot == last_slot_ + 1,
                 "FaultInjector::advance must visit slots in order");
  last_slot_ = slot;

  SlotFaults out;

  // Scripted events due this slot.
  while (next_scripted_ < plan_.scripted.size() &&
         plan_.scripted[next_scripted_].slot == slot) {
    const FaultEvent& e = plan_.scripted[next_scripted_++];
    switch (e.kind) {
      case FaultKind::kPmCrash:
        if (up_[e.pm]) out.crashes.push_back(e.pm);
        break;
      case FaultKind::kPmRecover:
        if (!up_[e.pm]) out.recoveries.push_back(e.pm);
        break;
      case FaultKind::kMigrationAbort:
        out.abort_migrations = true;
        break;
      case FaultKind::kMigrationStall:
        out.stall_slots += e.duration;
        break;
      case FaultKind::kSolverOutage:
        solver_down_until_ = std::max(solver_down_until_, slot + e.duration);
        BURSTQ_COUNT("fault.solver.outages", 1);
        BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.solver.outage",
                     {"t", slot}, {"slots", e.duration});
        break;
      case FaultKind::kKill:
        out.kill = true;
        break;
    }
  }

  // Markov draws.  Fixed PM-index order keeps the stream deterministic.
  // Scripted crashes land before Markov ones, so the clamp below (which
  // pops from the back) only ever sheds Markov-drawn crashes: scripted
  // plans may deliberately take the whole fleet down, the random model
  // must not — a zero-capacity cluster makes every invariant vacuous.
  const std::size_t scripted_crashes = out.crashes.size();
  if (plan_.markov.p_crash > 0.0)
    for (std::size_t j = 0; j < up_.size(); ++j)
      if (up_[j] && rng_.bernoulli(plan_.markov.p_crash) &&
          std::find(out.crashes.begin(), out.crashes.end(), j) ==
              out.crashes.end())
        out.crashes.push_back(j);
  if (plan_.markov.p_recover > 0.0)
    for (std::size_t j = 0; j < up_.size(); ++j)
      if (!up_[j] && rng_.bernoulli(plan_.markov.p_recover) &&
          std::find(out.recoveries.begin(), out.recoveries.end(), j) ==
              out.recoveries.end())
        out.recoveries.push_back(j);
  while (out.crashes.size() > scripted_crashes &&
         out.crashes.size() >= up_count())
    out.crashes.pop_back();
  if (plan_.markov.p_kill > 0.0 && rng_.bernoulli(plan_.markov.p_kill))
    out.kill = true;
  // A kill that already fired (journaled and restored from) must not
  // fire again during replay; its RNG draw above still happened, so the
  // fault stream past the kill is unchanged.  No event is emitted for a
  // kill: whatever the dying slot wrote is truncated on restore, and a
  // kill-free baseline run must stay byte-identical.
  if (slot < kill_suppress_before_) out.kill = false;
  if (out.kill) BURSTQ_COUNT("fault.kills", 1);

  for (std::size_t j : out.crashes) {
    up_[j] = 0;
    BURSTQ_COUNT("fault.pm.crashes", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.pm.crash", {"t", slot},
                 {"pm", j});
  }
  for (std::size_t j : out.recoveries) {
    up_[j] = 1;
    BURSTQ_COUNT("fault.pm.recoveries", 1);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "fault.pm.recover",
                 {"t", slot}, {"pm", j});
  }

  out.solver_fault = slot < solver_down_until_;
  return out;
}

bool FaultInjector::draw_migration_abort() {
  if (plan_.markov.p_mig_fail <= 0.0) return false;
  return rng_.bernoulli(plan_.markov.p_mig_fail);
}

std::size_t FaultInjector::up_count() const {
  return static_cast<std::size_t>(
      std::count_if(up_.begin(), up_.end(),
                    [](std::uint8_t u) { return u != 0; }));
}

bool FaultInjector::solver_fault_active() const {
  return last_slot_ != static_cast<std::size_t>(-1) &&
         last_slot_ < solver_down_until_;
}

}  // namespace burstq::fault
