// Failure-aware recovery on top of the incremental placement engine.
//
// When a PM crashes, its VMs must land somewhere sound: the controller
// evacuates them through the same Eq. (17) reservation discipline that
// admitted them (via the degradation ladder, so a concurrent solver
// outage widens the reservation instead of blocking the evacuation).
// VMs that fit nowhere are not dropped — they enter an admission-control
// queue with a recorded reason and are retried with exponential backoff,
// draining as soon as capacity returns (a PM recovers or load departs).
//
// Invariant the controller maintains (and exposes for the recovery fuzz
// oracle): at every slot boundary, each VM is either assigned to an *up*
// PM or present in the queue — never lost, never on a dead host.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/degrade.h"
#include "placement/placement.h"
#include "placement/spec.h"

namespace burstq::fault {

struct RecoveryPolicy {
  /// Retries before the backoff delay stops growing (the VM is never
  /// dropped; later retries just stay at the capped delay).
  std::size_t max_retries{8};
  std::size_t backoff_base_slots{1};  ///< delay after the first failure
  std::size_t backoff_cap_slots{64};

  void validate() const;
};

/// Why a VM sits in the admission queue.
enum class QueueReason { kNoFeasiblePm, kRetryBackoff };

struct QueuedVm {
  std::size_t vm{0};
  QueueReason reason{QueueReason::kNoFeasiblePm};
  std::size_t retries{0};       ///< placement attempts beyond the first
  std::size_t next_attempt{0};  ///< earliest slot for the next attempt
};

/// Serializable RecoveryController contents for durable snapshots.
struct RecoveryControllerState {
  std::vector<QueuedVm> queue;
  std::size_t retries_total{0};
  std::size_t enqueued_total{0};
  ReserveLevel ladder_last_level{ReserveLevel::kTable};
  std::size_t ladder_degraded_decisions{0};
};

class RecoveryController {
 public:
  /// Operates on `inst` (outliving the controller) with Eq. (17) checks
  /// at the given (d, rho, preferred backend).
  RecoveryController(const ProblemInstance& inst, RecoveryPolicy policy,
                     std::size_t max_vms_per_pm, double rho,
                     StationaryMethod method);

  /// Evacuates every VM hosted on `crashed` (which must already be marked
  /// down in `pm_up`): each is re-placed first-fit over up PMs under the
  /// ladder, or queued.  Returns the number re-placed immediately.
  std::size_t evacuate(Placement& placement, PmId crashed,
                       std::span<const std::uint8_t> pm_up,
                       const OnOffParams& rounded, std::size_t slot);

  /// Retries queued VMs whose backoff has expired.  Each attempt counts
  /// one `migration.retries`; successes leave the queue.  Returns the
  /// number admitted this call.
  std::size_t drain(Placement& placement, std::span<const std::uint8_t> pm_up,
                    const OnOffParams& rounded, std::size_t slot);

  [[nodiscard]] const std::vector<QueuedVm>& queue() const { return queue_; }
  [[nodiscard]] std::size_t retries_total() const { return retries_total_; }
  [[nodiscard]] std::size_t enqueued_total() const { return enqueued_total_; }
  [[nodiscard]] ReservationLadder& ladder() { return ladder_; }

  /// The recovery invariant: every VM is assigned to an up PM, or queued.
  /// (Debug builds assert this per slot; the fuzz oracle checks it too.)
  [[nodiscard]] bool invariant_holds(const Placement& placement,
                                     std::span<const std::uint8_t> pm_up) const;

  [[nodiscard]] RecoveryControllerState export_state() const {
    RecoveryControllerState st;
    st.queue = queue_;
    st.retries_total = retries_total_;
    st.enqueued_total = enqueued_total_;
    st.ladder_last_level = ladder_.last_level();
    st.ladder_degraded_decisions = ladder_.degraded_decisions();
    return st;
  }

  void import_state(const RecoveryControllerState& st) {
    queue_ = st.queue;
    retries_total_ = st.retries_total;
    enqueued_total_ = st.enqueued_total;
    ladder_.restore_counters(st.ladder_last_level,
                             st.ladder_degraded_decisions);
  }

 private:
  /// First-fit over up PMs under the ladder; kNoPm-style nullopt when
  /// nothing admits the VM.
  [[nodiscard]] std::optional<PmId> find_target(const Placement& placement,
                                                std::size_t vm,
                                                std::span<const std::uint8_t> pm_up,
                                                const OnOffParams& rounded);

  void enqueue(std::size_t vm, std::size_t slot);
  [[nodiscard]] std::size_t backoff_delay(std::size_t retries) const;

  const ProblemInstance* inst_;
  RecoveryPolicy policy_;
  ReservationLadder ladder_;
  std::vector<QueuedVm> queue_;  ///< FIFO order
  std::size_t retries_total_{0};
  std::size_t enqueued_total_{0};
};

}  // namespace burstq::fault
