// FaultInjector — turns a FaultPlan into concrete per-slot fault actions.
//
// Deterministic by construction: scripted events fire at their slot, and
// Markov draws come from the injector's own Rng (seeded from the plan), so
// the *workload* random stream of a simulation is untouched by fault
// injection — the same scenario seed produces the same demands whether or
// not faults are enabled, and the same fault seed produces the same fault
// schedule, bit for bit.
//
// The injector also owns PM liveness (up/down) and the solver-outage
// window, and emits the `fault.pm.*` / `fault.solver.*` obs events.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fault/plan.h"

namespace burstq::fault {

/// Everything that goes wrong in one slot; consumed by the simulator.
struct SlotFaults {
  std::vector<std::size_t> crashes;     ///< PMs that fail this slot
  std::vector<std::size_t> recoveries;  ///< PMs that come back this slot
  bool abort_migrations{false};  ///< scripted: abort every in-flight copy
  std::size_t stall_slots{0};    ///< scripted: extend in-flight copies
  bool solver_fault{false};      ///< MapCal solves fail during this slot
  bool kill{false};              ///< the consolidator process dies here
};

/// Serializable FaultInjector contents for durable snapshots.
struct FaultInjectorState {
  std::array<std::uint64_t, 4> rng{};
  std::vector<std::uint8_t> up;
  std::size_t next_scripted{0};
  std::size_t last_slot{static_cast<std::size_t>(-1)};
  std::size_t solver_down_until{0};
};

class FaultInjector {
 public:
  /// `n_pms` bounds the scripted pm indices (validated) and sizes the
  /// liveness vector; all PMs start up.
  FaultInjector(FaultPlan plan, std::size_t n_pms);

  /// Computes the faults for `slot` and updates PM liveness.  Slots must
  /// be visited in increasing order starting at 0.
  SlotFaults advance(std::size_t slot);

  /// Per in-flight migration per slot: does this copy abort?  Draws from
  /// the injector's Rng (Markov p_mig_fail); call once per copy per slot.
  [[nodiscard]] bool draw_migration_abort();

  [[nodiscard]] bool pm_up(std::size_t pm) const { return up_[pm] != 0; }
  /// Byte-per-PM (1 = up) so callers can view it as std::span<const
  /// std::uint8_t> — std::vector<bool> is bit-packed and cannot back a span.
  [[nodiscard]] const std::vector<std::uint8_t>& up_mask() const {
    return up_;
  }
  [[nodiscard]] std::size_t up_count() const;
  [[nodiscard]] bool solver_fault_active() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  [[nodiscard]] FaultInjectorState export_state() const {
    FaultInjectorState st;
    st.rng = rng_.state();
    st.up = up_;
    st.next_scripted = next_scripted_;
    st.last_slot = last_slot_;
    st.solver_down_until = solver_down_until_;
    return st;
  }

  void import_state(const FaultInjectorState& st) {
    BURSTQ_REQUIRE(st.up.size() == up_.size(),
                   "fault injector state PM count mismatch");
    rng_.set_state(st.rng);
    up_ = st.up;
    next_scripted_ = st.next_scripted;
    last_slot_ = st.last_slot;
    solver_down_until_ = st.solver_down_until;
  }

  /// Suppresses kill faults at every slot < `slot`.  Set after a durable
  /// restore to one past the kill slot: the kill that already fired (and
  /// was journaled through) must not fire again during replay, while
  /// later kill-points stay live so repeated kill/restore cycles work.
  void suppress_kills_before(std::size_t slot) {
    kill_suppress_before_ = slot;
  }

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<std::uint8_t> up_;
  std::size_t next_scripted_{0};
  std::size_t last_slot_{static_cast<std::size_t>(-1)};
  std::size_t solver_down_until_{0};  ///< outage active while slot < this
  std::size_t kill_suppress_before_{0};  ///< see suppress_kills_before
};

}  // namespace burstq::fault
