// Graceful degradation of the reservation check under solver faults.
//
// Eq. (17) admission needs a MapCal mapping table.  When the solver is
// down (chaos-injected via mapcal_set_solver_fault, or any transient
// SolverUnavailable), placement must not abort — a recovering cluster
// that cannot place evacuated VMs because a *solver* hiccuped would turn
// one fault into two.  Instead the check walks a ladder, each rung
// cheaper and sounder-but-looser than the last:
//
//   1. kTable         — MapCalTable with the preferred backend; memoized
//                       tables resolve even mid-outage (a cache hit needs
//                       no solve).
//   2. kGaussianTable — retry with the Gaussian backend (the paper's own
//                       Algorithm 1; survives outages scoped to other
//                       backends, or hits its own cached table).
//   3. kQuantile      — exact stationary quantile reservation
//                       (queuing/quantile_reservation.h): solver-free
//                       dynamic programming on per-VM ON-probabilities;
//                       still guarantees stationary P[overload] <= rho.
//   4. kPeak          — reserve sum of peaks: zero violations, maximal
//                       width.  Cannot fail.
//
// Every admission decided below rung 1 counts `fault.solver.degraded`
// and emits a `fault.solver.degrade` event naming the rung, so an outage
// is visible in any obs log even though no call site ever saw an error.

#pragma once

#include <cstddef>
#include <span>

#include "markov/onoff.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq::fault {

enum class ReserveLevel { kTable, kGaussianTable, kQuantile, kPeak };

/// "table" | "gaussian" | "quantile" | "peak".
std::string_view reserve_level_name(ReserveLevel level);

class ReservationLadder {
 public:
  /// `preferred` is the backend tried on rung 1; `quantile_grid_step` is
  /// the rung-3 discretization (see QuantileReservationOptions).
  ReservationLadder(std::size_t max_vms_per_pm, double rho,
                    StationaryMethod preferred = StationaryMethod::kGaussian,
                    double quantile_grid_step = 0.25);

  /// Eq. (17)-style admission: can `candidate` join `hosted` on a PM of
  /// `capacity`, under the first ladder rung that is currently able to
  /// answer?  `rounded` is the uniform (p_on, p_off) the table rungs use;
  /// the quantile rung uses each VM's own parameters.  Never throws for
  /// valid specs — that is the point.
  bool admits(std::span<const VmSpec> hosted, const VmSpec& candidate,
              Resource capacity, const OnOffParams& rounded);

  /// Rung that decided the most recent admits() call.
  [[nodiscard]] ReserveLevel last_level() const { return last_level_; }

  /// Admissions decided below rung 1 since construction.
  [[nodiscard]] std::size_t degraded_decisions() const {
    return degraded_decisions_;
  }

  [[nodiscard]] std::size_t max_vms_per_pm() const { return d_; }
  [[nodiscard]] double rho() const { return rho_; }

  /// Restores counters from a durable snapshot (the ladder is otherwise
  /// stateless: rung choice is re-derived per admits() call).
  void restore_counters(ReserveLevel last_level,
                        std::size_t degraded_decisions) {
    last_level_ = last_level;
    degraded_decisions_ = degraded_decisions;
  }

 private:
  /// Rungs 1-2; throws SolverUnavailable when the build faults.
  [[nodiscard]] bool admits_with_table(std::span<const VmSpec> hosted,
                                       const VmSpec& candidate,
                                       Resource capacity,
                                       const OnOffParams& rounded,
                                       StationaryMethod method) const;

  std::size_t d_;
  double rho_;
  StationaryMethod preferred_;
  double grid_step_;
  ReserveLevel last_level_{ReserveLevel::kTable};
  std::size_t degraded_decisions_{0};
};

}  // namespace burstq::fault
