// Migration-budget-bounded consolidation.
//
// A full replan (placement/replan.h) may demand more live migrations than
// a maintenance window allows.  This module consolidates incrementally
// under an explicit move budget: repeatedly pick the used PM that is
// cheapest to evacuate (fewest VMs), try to re-place each of its VMs on
// the other PMs under Eq. (17), and commit the evacuation only if the
// whole PM empties within the remaining budget.  Every intermediate state
// is feasible by construction (each move is individually checked), so
// the procedure can stop at any time — unlike applying a prefix of a
// replan() plan, which may transit through infeasible states.

#pragma once

#include <vector>

#include "placement/placement.h"
#include "placement/queuing_ffd.h"
#include "placement/replan.h"

namespace burstq {

struct BudgetConsolidationResult {
  std::vector<PlannedMove> moves;  ///< executed moves, in order
  std::size_t pms_before{0};
  std::size_t pms_after{0};
  std::size_t budget_left{0};

  [[nodiscard]] std::size_t pms_freed() const {
    return pms_before - pms_after;
  }
};

/// Consolidates `placement` in place, spending at most `max_moves`
/// migrations.  Feasibility of every move is checked against `table`
/// (Eq. 17); the source PM of an evacuation is excluded as a target for
/// its own VMs.  Requires a complete placement matching `inst`.
BudgetConsolidationResult consolidate_with_budget(
    const ProblemInstance& inst, Placement& placement,
    const MapCalTable& table, std::size_t max_moves);

}  // namespace burstq
