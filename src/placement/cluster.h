// Re-similarity clustering (Algorithm 2, lines 7-9).
//
// The paper clusters VMs "so that VMs with similar Re are in the same
// cluster" with "a simple O(n) clustering method", sorts clusters by Re
// descending and VMs inside a cluster by Rb descending.  Collocating
// similar-Re VMs shrinks the uniform block size max{Re} each PM reserves.
//
// We implement the O(n) method as equal-width bucketing of the Re range.

#pragma once

#include <cstddef>
#include <vector>

#include "placement/spec.h"

namespace burstq {

/// Assigns each VM a cluster id in [0, bucket_count) by equal-width
/// bucketing of Re over [min Re, max Re].  Degenerate ranges (all Re equal)
/// collapse to a single cluster.  Requires bucket_count >= 1.  O(n).
std::vector<std::size_t> cluster_by_re(const std::vector<VmSpec>& vms,
                                       std::size_t bucket_count);

/// The complete Algorithm-2 visit order: cluster ids from cluster_by_re,
/// clusters ordered by descending Re (equal-width buckets make this the
/// descending bucket index), VMs within a cluster by descending Rb
/// (ties broken by VM index for determinism).  Returns VM indices.
std::vector<std::size_t> queuing_ffd_order(const std::vector<VmSpec>& vms,
                                           std::size_t bucket_count);

/// Baseline orders: VM indices sorted by a single key, descending, index
/// tie-break.  Used by the FFD-by-Rp / FFD-by-Rb baselines.
std::vector<std::size_t> order_by_peak_desc(const std::vector<VmSpec>& vms);
std::vector<std::size_t> order_by_normal_desc(const std::vector<VmSpec>& vms);

}  // namespace burstq
