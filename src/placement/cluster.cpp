#include "placement/cluster.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace burstq {

std::vector<std::size_t> cluster_by_re(const std::vector<VmSpec>& vms,
                                       std::size_t bucket_count) {
  BURSTQ_REQUIRE(bucket_count >= 1, "need at least one cluster bucket");
  BURSTQ_REQUIRE(!vms.empty(), "cannot cluster zero VMs");

  double lo = vms.front().re;
  double hi = lo;
  for (const auto& v : vms) {
    lo = std::min(lo, v.re);
    hi = std::max(hi, v.re);
  }

  std::vector<std::size_t> cluster(vms.size(), 0);
  if (hi <= lo) return cluster;  // all spikes equal: one cluster

  const double width = (hi - lo) / static_cast<double>(bucket_count);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    auto b = static_cast<std::size_t>((vms[i].re - lo) / width);
    cluster[i] = std::min(b, bucket_count - 1);  // hi lands in the top bucket
  }
  return cluster;
}

std::vector<std::size_t> queuing_ffd_order(const std::vector<VmSpec>& vms,
                                           std::size_t bucket_count) {
  const std::vector<std::size_t> cluster = cluster_by_re(vms, bucket_count);

  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (cluster[a] != cluster[b])
                return cluster[a] > cluster[b];  // high-Re buckets first
              if (vms[a].rb != vms[b].rb) return vms[a].rb > vms[b].rb;
              return a < b;
            });
  return order;
}

namespace {

template <typename Key>
std::vector<std::size_t> order_desc(const std::vector<VmSpec>& vms,
                                    Key key) {
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ka = key(vms[a]);
    const double kb = key(vms[b]);
    if (ka != kb) return ka > kb;
    return a < b;
  });
  return order;
}

}  // namespace

std::vector<std::size_t> order_by_peak_desc(const std::vector<VmSpec>& vms) {
  return order_desc(vms, [](const VmSpec& v) { return v.rp(); });
}

std::vector<std::size_t> order_by_normal_desc(const std::vector<VmSpec>& vms) {
  return order_desc(vms, [](const VmSpec& v) { return v.rb; });
}

}  // namespace burstq
