#include "placement/queuing_ffd.h"

#include <algorithm>

#include "common/error.h"
#include "obs/obs.h"
#include "placement/cluster.h"
#include "placement/incremental.h"

namespace burstq {

OnOffParams round_uniform_params(const std::vector<VmSpec>& vms,
                                 RoundingPolicy policy) {
  BURSTQ_REQUIRE(!vms.empty(), "cannot round parameters of zero VMs");
  OnOffParams out;
  switch (policy) {
    case RoundingPolicy::kMean: {
      double sum_on = 0.0;
      double sum_off = 0.0;
      for (const auto& v : vms) {
        sum_on += v.onoff.p_on;
        sum_off += v.onoff.p_off;
      }
      out.p_on = sum_on / static_cast<double>(vms.size());
      out.p_off = sum_off / static_cast<double>(vms.size());
      break;
    }
    case RoundingPolicy::kConservative: {
      out.p_on = 0.0;
      out.p_off = 1.0;
      for (const auto& v : vms) {
        out.p_on = std::max(out.p_on, v.onoff.p_on);
        out.p_off = std::min(out.p_off, v.onoff.p_off);
      }
      break;
    }
  }
  out.validate();
  return out;
}

void QueuingFfdOptions::validate() const {
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  BURSTQ_REQUIRE(cluster_buckets >= 1, "need at least one cluster bucket");
  sharded.validate();
}

namespace {

// Flight-records each admission as a `place` event carrying the Eq. (17)
// slack at admit time.  FFD never moves a VM after admission, so walking
// the visit order against the final placement reconstructs the exact
// per-admit PM state the feasibility check saw.
[[maybe_unused]] void emit_placement_events(const ProblemInstance& inst,
                                            std::span<const std::size_t> order,
                                            const PlacementResult& result,
                                            const MapCalTable& table) {
  if (!obs::events().enabled(obs::EventLevel::kDecisions)) return;
  Placement replayed(inst.n_vms(), inst.n_pms());
  for (std::size_t vi : order) {
    const VmId vm{vi};
    const PmId pm = result.placement.pm_of(vm);
    if (!pm.valid()) {
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "place.unplaced",
                   {"vm", vi});
      continue;
    }
    replayed.assign(vm, pm);
    [[maybe_unused]] const std::size_t k = replayed.count_on(pm);
    [[maybe_unused]] const Resource slack =
        inst.pms[pm.value].capacity -
        reserved_footprint(inst, replayed, pm, table);
    BURSTQ_EVENT(obs::EventLevel::kDecisions, "place", {"vm", vi},
                 {"pm", pm.value}, {"k", k}, {"slack", slack});
  }
}

PlacementResult run_placement(const ProblemInstance& inst,
                              const MapCalTable& table,
                              const QueuingFfdOptions& options) {
  BURSTQ_SPAN("placement.queuing_ffd");
  const std::vector<std::size_t> order =
      queuing_ffd_order(inst.vms, options.cluster_buckets);

  const auto fits = [&](const Placement& placement, VmId vm, PmId pm) {
    return fits_with_reservation(inst, placement, vm, pm, table);
  };

  if (options.use_best_fit) {
    const auto slack = [&](const Placement& placement, VmId vm, PmId pm) {
      // Slack after hypothetical insertion; smaller = tighter = "best".
      // O(1): the driver's placement is instance-bound (see placement.h).
      const VmSpec& v = inst.vms[vm.value];
      const std::size_t k_new = placement.count_on(pm) + 1;
      const Resource block = std::max(v.re, max_re_on(inst, placement, pm));
      const Resource footprint =
          block * static_cast<double>(table.blocks(k_new)) + v.rb +
          total_rb_on(inst, placement, pm);
      return inst.pms[pm.value].capacity - footprint;
    };
    PlacementResult result = best_fit_place(inst, order, fits, slack);
    if constexpr (obs::kEnabled)
      emit_placement_events(inst, order, result, table);
    return result;
  }
  PlacementResult result = [&] {
    switch (options.engine) {
      case PlacementEngine::kIncremental:
        return first_fit_place_reservation(inst, order, table);
      case PlacementEngine::kSharded:
        return sharded_place_reservation(inst, order, table, options.sharded);
      case PlacementEngine::kNaive:
        break;
    }
    return first_fit_place(inst, order, fits);
  }();
  if constexpr (obs::kEnabled)
    emit_placement_events(inst, order, result, table);
  return result;
}

}  // namespace

QueuingFfdOutcome queuing_ffd(const ProblemInstance& inst,
                              const QueuingFfdOptions& options) {
  inst.validate();
  options.validate();

  const OnOffParams params =
      round_uniform_params(inst.vms, options.rounding);
  MapCalTable table(options.max_vms_per_pm, params, options.rho,
                    options.method);
  PlacementResult result = run_placement(inst, table, options);
  return QueuingFfdOutcome{std::move(result), std::move(table), params};
}

PlacementResult queuing_ffd_with_table(const ProblemInstance& inst,
                                       const MapCalTable& table,
                                       const QueuingFfdOptions& options) {
  inst.validate();
  options.validate();
  return run_placement(inst, table, options);
}

}  // namespace burstq
