// Problem-instance types: the paper's VM four-tuple V_i = (p_on, p_off,
// Rb, Re) (Eq. 1) and PM capacity H_j = (C_j) (Eq. 2).

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "markov/onoff.h"

namespace burstq {

/// One VM's workload specification.
struct VmSpec {
  OnOffParams onoff;  ///< burstiness: spike frequency / duration
  Resource rb{0.0};   ///< R_b: normal (OFF-state) demand
  Resource re{0.0};   ///< R_e: spike size, extra demand while ON

  /// R_p = R_b + R_e: peak demand.
  [[nodiscard]] Resource rp() const { return rb + re; }

  /// Demand W_i(t) as a function of the chain state.
  [[nodiscard]] Resource demand(VmState s) const {
    return s == VmState::kOn ? rp() : rb;
  }

  /// Long-run mean demand: Rb + q * Re.
  [[nodiscard]] Resource mean_demand() const {
    return rb + onoff.stationary_on_probability() * re;
  }

  /// Validates non-negative sizes and legal switch probabilities.
  void validate() const;
};

/// One PM's specification.
struct PmSpec {
  Resource capacity{0.0};  ///< C_j

  void validate() const;
};

/// A complete consolidation problem: n VMs, m candidate PMs.
struct ProblemInstance {
  std::vector<VmSpec> vms;
  std::vector<PmSpec> pms;

  [[nodiscard]] std::size_t n_vms() const { return vms.size(); }
  [[nodiscard]] std::size_t n_pms() const { return pms.size(); }

  /// Validates every spec and non-emptiness.
  void validate() const;

  /// Largest spike size over all VMs (block size upper bound).
  [[nodiscard]] Resource max_re() const;
};

/// Uniform ranges for random instance generation, mirroring the Figure 5
/// experiment setup (Rb, Re and C drawn uniformly from pattern-specific
/// ranges).
struct InstanceRanges {
  double rb_lo{2.0}, rb_hi{20.0};
  double re_lo{2.0}, re_hi{20.0};
  double capacity_lo{80.0}, capacity_hi{100.0};
};

/// Draws a random instance with n VMs, m PMs, shared OnOffParams.
ProblemInstance random_instance(std::size_t n_vms, std::size_t n_pms,
                                const OnOffParams& params,
                                const InstanceRanges& ranges, Rng& rng);

}  // namespace burstq
