#include "placement/quantile_ffd.h"

#include <vector>

#include "common/error.h"
#include "placement/cluster.h"
#include "placement/placement.h"

namespace burstq {

void QuantileFfdOptions::validate() const {
  reservation.validate();
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  BURSTQ_REQUIRE(cluster_buckets >= 1, "need at least one cluster bucket");
}

double quantile_footprint(std::span<const VmSpec> hosted,
                          const QuantileReservationOptions& options) {
  std::vector<double> re;
  std::vector<double> q;
  re.reserve(hosted.size());
  q.reserve(hosted.size());
  double rb_sum = 0.0;
  for (const auto& v : hosted) {
    re.push_back(v.re);
    q.push_back(v.onoff.stationary_on_probability());
    rb_sum += v.rb;
  }
  return exact_quantile_reservation(re, q, options) + rb_sum;
}

bool fits_with_quantile_reservation(const ProblemInstance& inst,
                                    const Placement& placement, VmId vm,
                                    PmId pm,
                                    const QuantileFfdOptions& options) {
  const std::size_t k_new = placement.count_on(pm) + 1;
  if (k_new > options.max_vms_per_pm) return false;
  std::vector<VmSpec> hosted;
  hosted.reserve(k_new);
  for (std::size_t i : placement.vms_on(pm)) hosted.push_back(inst.vms[i]);
  hosted.push_back(inst.vms[vm.value]);
  return quantile_footprint(hosted, options.reservation) <=
         inst.pms[pm.value].capacity * (1.0 + kCapacityEpsilon);
}

PlacementResult queuing_ffd_quantile(const ProblemInstance& inst,
                                     const QuantileFfdOptions& options) {
  inst.validate();
  options.validate();
  const auto order = queuing_ffd_order(inst.vms, options.cluster_buckets);
  const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
    return fits_with_quantile_reservation(inst, p, vm, pm, options);
  };
  return first_fit_place(inst, order, fits);
}

bool placement_satisfies_quantile_reservation(
    const ProblemInstance& inst, const Placement& placement,
    const QuantileFfdOptions& options) {
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    const PmId pm{j};
    const auto& members = placement.vms_on(pm);
    if (members.empty()) continue;
    if (members.size() > options.max_vms_per_pm) return false;
    std::vector<VmSpec> hosted;
    hosted.reserve(members.size());
    for (std::size_t i : members) hosted.push_back(inst.vms[i]);
    if (quantile_footprint(hosted, options.reservation) >
        inst.pms[j].capacity * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

}  // namespace burstq
