// Multi-dimensional consolidation (paper Section IV-E).
//
// "If each dimension of resources is correlated we can map them to one
// dimension and apply the original algorithms; otherwise our queuing
// algorithm should be applied to each dimension ... independently.  In
// this case the original two-step consolidation scheme is not applicable,
// so we need to use a simpler heuristic such as First Fit and performance
// constraints should be satisfied on all dimensions."
//
// mapping(k) depends only on (k, p_on, p_off, rho), so one MapCalTable
// serves every dimension; the reservation check is applied per dimension.

#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "placement/first_fit.h"
#include "placement/queuing_ffd.h"
#include "placement/spec.h"

namespace burstq {

/// Maximum supported resource dimensions (CPU, memory, disk I/O, network).
inline constexpr std::size_t kMaxDims = 4;

/// A VM demanding resources along `dims` dimensions; while ON, dimension d
/// demands rb[d] + re[d].
struct MultiVmSpec {
  OnOffParams onoff;
  std::size_t dims{1};
  std::array<Resource, kMaxDims> rb{};
  std::array<Resource, kMaxDims> re{};

  void validate() const;
};

struct MultiPmSpec {
  std::size_t dims{1};
  std::array<Resource, kMaxDims> capacity{};

  void validate() const;
};

struct MultiProblemInstance {
  std::vector<MultiVmSpec> vms;
  std::vector<MultiPmSpec> pms;

  /// Validates specs and that every VM/PM agrees on the dimension count.
  void validate() const;
  [[nodiscard]] std::size_t dims() const;
};

/// Per-dimension Eq. (17): candidate may join iff for every dimension d,
/// max(Re[d]) * mapping(k+1) + sum(Rb[d]) <= C[d].
bool multidim_fits(const std::vector<const MultiVmSpec*>& hosted,
                   const MultiVmSpec& candidate, const MultiPmSpec& pm,
                   const MapCalTable& table);

struct MultiPlacementResult {
  std::vector<std::size_t> pm_of;  ///< PM index per VM; npos = unplaced
  std::size_t pms_used{0};
  std::vector<std::size_t> unplaced;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// First-fit multi-dimensional consolidation with per-dimension queuing
/// reservation.  VMs are visited in descending order of their largest Rb
/// component (the FFD analogue without the 1-D clustering step).
MultiPlacementResult multidim_queuing_first_fit(
    const MultiProblemInstance& inst, const QueuingFfdOptions& options = {});

/// The "correlated dimensions" path: projects each VM/PM onto one
/// dimension via non-negative weights (sum > 0) so the full Algorithm 2
/// applies.  weights.size() must equal inst.dims().
ProblemInstance project_correlated(const MultiProblemInstance& inst,
                                   const std::vector<double>& weights);

}  // namespace burstq
