// The VM-to-PM mapping X (paper Eq. "X = [x_ij]") plus constraint checks.
//
// Stored as a dense assignment vector (one PmId per VM) with per-PM VM
// lists maintained incrementally.  Each VM also remembers its position in
// its PM's list, so unassign() is a swap-remove in O(1) — the replan /
// migration hot path never searches a list.
//
// A Placement may additionally be *bound* to a ProblemInstance (the
// one-argument constructor).  A bound placement maintains per-PM aggregate
// caches — VM count, sum of Rb, max Re — on every assign/unassign, which
// makes the Eq. (17) feasibility check and the best-fit slack O(1) instead
// of O(VMs on the PM).  The walk-based helpers (*_walk) are kept as the
// debug-checked reference implementation; aggregates_consistent() compares
// the two.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq {

/// Serializable contents of a Placement for durable snapshots.  Per-PM
/// list ORDER and the raw aggregate doubles are preserved exactly:
/// unassign's swap-remove reorders lists and rb_sum_ carries float-
/// association noise, so re-deriving either from pm_of alone would
/// diverge from the uninterrupted run.
struct PlacementState {
  std::vector<PmId> pm_of;
  std::vector<std::vector<std::size_t>> vms_on;
  bool bound{false};  ///< aggregates below are populated
  std::vector<Resource> rb_sum;
  std::vector<Resource> re_max;
};

class Placement {
 public:
  /// Empty mapping over n VMs and m PMs; every VM starts unassigned.
  /// Aggregates are not tracked (no spec data available).
  Placement(std::size_t n_vms, std::size_t n_pms);

  /// Empty mapping bound to `inst`: per-PM (k, rb_sum, re_max) aggregates
  /// are maintained incrementally.  `inst` must outlive this placement and
  /// every copy of it that is still mutated.
  explicit Placement(const ProblemInstance& inst);

  /// Assigns `vm` to `pm`.  The VM must currently be unassigned.  O(1).
  void assign(VmId vm, PmId pm);

  /// Removes `vm` from its PM via swap-remove.  O(1) except when the VM
  /// held the PM's max Re on a bound placement (then O(VMs on that PM) to
  /// rescan).  Note the swap reorders vms_on(pm).
  void unassign(VmId vm);

  /// PM hosting `vm`; invalid Id when unassigned.
  [[nodiscard]] PmId pm_of(VmId vm) const;

  [[nodiscard]] bool assigned(VmId vm) const { return pm_of(vm).valid(); }

  /// Indices of VMs currently on `pm`.  Assignment order until the first
  /// unassign on that PM; swap-removal may reorder afterwards.
  [[nodiscard]] const std::vector<std::size_t>& vms_on(PmId pm) const;

  [[nodiscard]] std::size_t count_on(PmId pm) const {
    return vms_on(pm).size();
  }

  /// Number of PMs hosting at least one VM — the paper's objective (Eq. 6).
  [[nodiscard]] std::size_t pms_used() const { return pms_used_; }

  /// Number of VMs currently assigned.
  [[nodiscard]] std::size_t vms_assigned() const { return vms_assigned_; }

  [[nodiscard]] std::size_t n_vms() const { return pm_of_.size(); }
  [[nodiscard]] std::size_t n_pms() const { return vms_on_.size(); }

  /// True when this placement maintains per-PM aggregates for `inst`
  /// (i.e. it was bound to that same instance object).
  [[nodiscard]] bool tracks_aggregates(const ProblemInstance& inst) const {
    return inst_ == &inst;
  }

  /// Cached sum of Rb on `pm`.  Requires a bound placement.  Equals the
  /// walk-based sum bit-for-bit as long as no VM was unassigned from the
  /// PM; after churn it may differ by floating-point association noise.
  [[nodiscard]] Resource rb_sum_on(PmId pm) const;

  /// Cached max Re on `pm` (0 when empty).  Requires a bound placement.
  /// Always exactly equal to the walk-based maximum.
  [[nodiscard]] Resource re_max_on(PmId pm) const;

  /// Durable-snapshot export/import.  restore_state() replaces the whole
  /// mapping; derived indices (pos_in_pm_, pms_used_, vms_assigned_) are
  /// rebuilt from the lists.  The placement keeps its current binding —
  /// aggregates in the state are only applied to a bound placement.
  [[nodiscard]] PlacementState export_state() const;
  void restore_state(const PlacementState& st);

 private:
  void init(std::size_t n_vms, std::size_t n_pms);

  const ProblemInstance* inst_{nullptr};
  std::vector<PmId> pm_of_;
  std::vector<std::size_t> pos_in_pm_;  ///< index of each VM in its PM list
  std::vector<std::vector<std::size_t>> vms_on_;
  std::vector<Resource> rb_sum_;  ///< per-PM aggregate (bound only)
  std::vector<Resource> re_max_;  ///< per-PM aggregate (bound only)
  std::size_t pms_used_{0};
  std::size_t vms_assigned_{0};
};

/// Aggregate Rb of the VMs on `pm`.  O(1) on a placement bound to `inst`,
/// otherwise a walk over the PM's VM list.
Resource total_rb_on(const ProblemInstance& inst, const Placement& placement,
                     PmId pm);

/// Largest Re of the VMs on `pm` (0 when empty) — the uniform block size
/// the paper reserves ("conservatively set to the maximum Re of the hosted
/// VMs").  O(1) on a placement bound to `inst`.
Resource max_re_on(const ProblemInstance& inst, const Placement& placement,
                   PmId pm);

/// Walk-based reference implementations of the two aggregates above.
/// Always recompute from the VM list; used by tests and debug checks to
/// validate the incremental caches.
Resource total_rb_on_walk(const ProblemInstance& inst,
                          const Placement& placement, PmId pm);
Resource max_re_on_walk(const ProblemInstance& inst,
                        const Placement& placement, PmId pm);

/// True when every cached per-PM aggregate of a bound placement matches
/// the walk-based recomputation: re_max exactly, rb_sum within `rel_tol`
/// relative error (unassign churn reorders float additions).  Placements
/// not bound to `inst` are vacuously consistent.
bool aggregates_consistent(const ProblemInstance& inst,
                           const Placement& placement,
                           double rel_tol = 1e-9);

/// Left-hand side of Eq. (17) for the PM as currently loaded: reserved
/// queue size plus aggregate Rb.
Resource reserved_footprint(const ProblemInstance& inst,
                            const Placement& placement, PmId pm,
                            const MapCalTable& table);

/// Eq. (17): can `vm` be added to `pm` under the reservation rule?
/// False when the PM already hosts table.max_vms_per_pm() VMs (the paper's
/// per-PM cap d).  O(1) on a placement bound to `inst`.
bool fits_with_reservation(const ProblemInstance& inst,
                           const Placement& placement, VmId vm, PmId pm,
                           const MapCalTable& table);

/// Eq. (17) on an explicit host list: can `candidate` join a PM of the
/// given capacity currently hosting `hosted`?  Used by the online
/// consolidator, which manages its own VM containers.
bool fits_with_reservation_specs(std::span<const VmSpec> hosted,
                                 const VmSpec& candidate, Resource capacity,
                                 const MapCalTable& table);

/// Reserved footprint (Eq. 17 LHS) of an explicit host list.
Resource reserved_footprint_specs(std::span<const VmSpec> hosted,
                                  const MapCalTable& table);

/// Post-hoc validation that every used PM satisfies Eq. (17); used by
/// tests and by online rebuilds.
bool placement_satisfies_reservation(const ProblemInstance& inst,
                                     const Placement& placement,
                                     const MapCalTable& table);

/// Eq. (3) at t = 0 (all VMs OFF): aggregate Rb on each PM within capacity.
bool placement_satisfies_initial_capacity(const ProblemInstance& inst,
                                          const Placement& placement);

/// Relative tolerance used in capacity comparisons so that reservation
/// arithmetic on doubles never rejects an exactly-full PM.
inline constexpr double kCapacityEpsilon = 1e-9;

}  // namespace burstq
