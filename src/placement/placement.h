// The VM-to-PM mapping X (paper Eq. "X = [x_ij]") plus constraint checks.
//
// Stored as a dense assignment vector (one PmId per VM) with per-PM VM
// lists maintained incrementally, so feasibility checks during first-fit
// and online churn are O(VMs on that PM).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq {

class Placement {
 public:
  /// Empty mapping over n VMs and m PMs; every VM starts unassigned.
  Placement(std::size_t n_vms, std::size_t n_pms);

  /// Assigns `vm` to `pm`.  The VM must currently be unassigned.
  void assign(VmId vm, PmId pm);

  /// Removes `vm` from its PM.  The VM must currently be assigned.
  void unassign(VmId vm);

  /// PM hosting `vm`; invalid Id when unassigned.
  [[nodiscard]] PmId pm_of(VmId vm) const;

  [[nodiscard]] bool assigned(VmId vm) const { return pm_of(vm).valid(); }

  /// Indices of VMs currently on `pm` (in assignment order).
  [[nodiscard]] const std::vector<std::size_t>& vms_on(PmId pm) const;

  [[nodiscard]] std::size_t count_on(PmId pm) const {
    return vms_on(pm).size();
  }

  /// Number of PMs hosting at least one VM — the paper's objective (Eq. 6).
  [[nodiscard]] std::size_t pms_used() const { return pms_used_; }

  /// Number of VMs currently assigned.
  [[nodiscard]] std::size_t vms_assigned() const { return vms_assigned_; }

  [[nodiscard]] std::size_t n_vms() const { return pm_of_.size(); }
  [[nodiscard]] std::size_t n_pms() const { return vms_on_.size(); }

 private:
  std::vector<PmId> pm_of_;
  std::vector<std::vector<std::size_t>> vms_on_;
  std::size_t pms_used_{0};
  std::size_t vms_assigned_{0};
};

/// Aggregate Rb of the VMs on `pm`.
Resource total_rb_on(const ProblemInstance& inst, const Placement& placement,
                     PmId pm);

/// Largest Re of the VMs on `pm` (0 when empty) — the uniform block size
/// the paper reserves ("conservatively set to the maximum Re of the hosted
/// VMs").
Resource max_re_on(const ProblemInstance& inst, const Placement& placement,
                   PmId pm);

/// Left-hand side of Eq. (17) for the PM as currently loaded: reserved
/// queue size plus aggregate Rb.
Resource reserved_footprint(const ProblemInstance& inst,
                            const Placement& placement, PmId pm,
                            const MapCalTable& table);

/// Eq. (17): can `vm` be added to `pm` under the reservation rule?
/// False when the PM already hosts table.max_vms_per_pm() VMs (the paper's
/// per-PM cap d).
bool fits_with_reservation(const ProblemInstance& inst,
                           const Placement& placement, VmId vm, PmId pm,
                           const MapCalTable& table);

/// Eq. (17) on an explicit host list: can `candidate` join a PM of the
/// given capacity currently hosting `hosted`?  Used by the online
/// consolidator, which manages its own VM containers.
bool fits_with_reservation_specs(std::span<const VmSpec> hosted,
                                 const VmSpec& candidate, Resource capacity,
                                 const MapCalTable& table);

/// Reserved footprint (Eq. 17 LHS) of an explicit host list.
Resource reserved_footprint_specs(std::span<const VmSpec> hosted,
                                  const MapCalTable& table);

/// Post-hoc validation that every used PM satisfies Eq. (17); used by
/// tests and by online rebuilds.
bool placement_satisfies_reservation(const ProblemInstance& inst,
                                     const Placement& placement,
                                     const MapCalTable& table);

/// Eq. (3) at t = 0 (all VMs OFF): aggregate Rb on each PM within capacity.
bool placement_satisfies_initial_capacity(const ProblemInstance& inst,
                                          const Placement& placement);

/// Relative tolerance used in capacity comparisons so that reservation
/// arithmetic on doubles never rejects an exactly-full PM.
inline constexpr double kCapacityEpsilon = 1e-9;

}  // namespace burstq
