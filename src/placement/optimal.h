// Exact minimum-PM consolidation for small instances, by branch and
// bound.
//
// The consolidation problem (Eq. 6) is NP-hard (bin packing is the
// special case Re = 0), so Algorithm 2 is a heuristic.  For instances of
// a dozen-odd VMs the exact optimum is computable, which lets
// bench/ablation_optimality measure QueuingFFD's optimality gap — a
// question the paper leaves open.
//
// Restriction: all PMs must have equal capacity (the B&B exploits PM
// symmetry: opening "a new PM" is a single canonical branch).  This
// matches how the gap experiment draws instances.

#pragma once

#include <cstddef>
#include <optional>

#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq {

struct OptimalOptions {
  std::size_t max_vms{18};       ///< refuse instances larger than this
  std::size_t max_vms_per_pm{16};
  std::size_t node_limit{20'000'000};  ///< search-effort safety valve

  void validate() const;
};

/// Minimum number of PMs that can host all VMs under the reservation rule
/// Eq. (17) with block counts from `table`.  Returns nullopt when the
/// node limit is exhausted before the search completes, or when even one
/// VM per PM does not fit.  Throws InvalidArgument for instances with
/// more than max_vms VMs or non-uniform capacities.
std::optional<std::size_t> optimal_pm_count(const ProblemInstance& inst,
                                            const MapCalTable& table,
                                            const OptimalOptions& options = {});

}  // namespace burstq
