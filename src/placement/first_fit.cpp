#include "placement/first_fit.h"

#include <limits>

#include "common/error.h"
#include "obs/obs.h"

namespace burstq {

PlacementResult first_fit_place(const ProblemInstance& inst,
                                std::span<const std::size_t> order,
                                const FitPredicate& fits) {
  BURSTQ_SPAN("placement.first_fit");
  inst.validate();
  BURSTQ_REQUIRE(order.size() == inst.n_vms(),
                 "visit order must cover every VM exactly once");
  PlacementResult result{Placement(inst.n_vms(), inst.n_pms()), {}};

  std::size_t fit_checks = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    bool placed = false;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      ++fit_checks;
      if (fits(result.placement, vm, pm)) {
        result.placement.assign(vm, pm);
        placed = true;
        break;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  BURSTQ_COUNT("placement.fit_checks", fit_checks);
  BURSTQ_COUNT("placement.placed",
               result.placement.vms_assigned());
  BURSTQ_COUNT("placement.unplaced", result.unplaced.size());
  return result;
}

PlacementResult best_fit_place(const ProblemInstance& inst,
                               std::span<const std::size_t> order,
                               const FitPredicate& fits,
                               const SlackFunction& slack) {
  BURSTQ_SPAN("placement.best_fit");
  inst.validate();
  BURSTQ_REQUIRE(order.size() == inst.n_vms(),
                 "visit order must cover every VM exactly once");
  PlacementResult result{Placement(inst.n_vms(), inst.n_pms()), {}};

  std::size_t fit_checks = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    PmId best{};
    double best_slack = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      ++fit_checks;
      if (!fits(result.placement, vm, pm)) continue;
      const double s = slack(result.placement, vm, pm);
      if (s < best_slack) {
        best_slack = s;
        best = pm;
      }
    }
    if (best.valid())
      result.placement.assign(vm, best);
    else
      result.unplaced.push_back(vm);
  }
  BURSTQ_COUNT("placement.fit_checks", fit_checks);
  BURSTQ_COUNT("placement.placed",
               result.placement.vms_assigned());
  BURSTQ_COUNT("placement.unplaced", result.unplaced.size());
  return result;
}

}  // namespace burstq
