#include "placement/first_fit.h"

#include "common/error.h"
#include "obs/obs.h"

namespace burstq::detail {

void validate_driver_inputs(const ProblemInstance& inst,
                            std::span<const std::size_t> order) {
  inst.validate();
  BURSTQ_REQUIRE(order.size() == inst.n_vms(),
                 "visit order must cover every VM exactly once");
}

void record_driver_counts(const PlacementResult& result,
                          std::size_t fit_checks) {
  BURSTQ_COUNT("placement.fit_checks", fit_checks);
  BURSTQ_COUNT("placement.placed", result.placement.vms_assigned());
  BURSTQ_COUNT("placement.unplaced", result.unplaced.size());
}

}  // namespace burstq::detail
