#include "placement/optimal.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "placement/placement.h"

namespace burstq {

void OptimalOptions::validate() const {
  BURSTQ_REQUIRE(max_vms >= 1 && max_vms <= 24,
                 "optimal search is limited to at most 24 VMs");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  BURSTQ_REQUIRE(node_limit > 0, "node limit must be positive");
}

namespace {

struct Bin {
  Resource rb_sum{0.0};
  Resource max_re{0.0};
  std::size_t count{0};
};

class Search {
 public:
  Search(const ProblemInstance& inst, const MapCalTable& table,
         const OptimalOptions& options, Resource capacity)
      : inst_(&inst),
        table_(&table),
        options_(options),
        capacity_(capacity) {
    // Visit big VMs first: tight branches fail fast.
    order_.resize(inst.n_vms());
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      const double ka = inst.vms[a].rb + inst.vms[a].re;
      const double kb = inst.vms[b].rb + inst.vms[b].re;
      if (ka != kb) return ka > kb;
      return a < b;
    });
    best_ = inst.n_vms() + 1;  // sentinel: worse than one VM per PM
    // Simple volume lower bound: aggregate Rb alone must fit.
    double rb_total = 0.0;
    for (const auto& v : inst.vms) rb_total += v.rb;
    lower_bound_ = static_cast<std::size_t>(
        std::ceil(rb_total / capacity - 1e-9));
    lower_bound_ = std::max<std::size_t>(lower_bound_, 1);
  }

  std::optional<std::size_t> run() {
    std::vector<Bin> bins;
    dfs(0, bins);
    if (nodes_ >= options_.node_limit) return std::nullopt;
    if (best_ > inst_->n_vms()) return std::nullopt;  // nothing feasible
    return best_;
  }

 private:
  bool fits(const Bin& bin, const VmSpec& v) const {
    const std::size_t k_new = bin.count + 1;
    if (k_new > options_.max_vms_per_pm) return false;
    const Resource block = std::max(bin.max_re, v.re);
    const Resource footprint =
        block * static_cast<double>(table_->blocks(k_new)) + bin.rb_sum +
        v.rb;
    return footprint <= capacity_ * (1.0 + kCapacityEpsilon);
  }

  void dfs(std::size_t depth, std::vector<Bin>& bins) {
    if (nodes_ >= options_.node_limit) return;
    ++nodes_;
    if (bins.size() >= best_) return;  // cannot improve
    if (depth == order_.size()) {
      best_ = bins.size();
      return;
    }
    if (best_ == lower_bound_) return;  // already optimal

    const VmSpec& v = inst_->vms[order_[depth]];

    // Branch 1..b: place into each existing bin that fits.  Symmetry
    // break: identical bins (same count/rb/max_re) produce identical
    // subtrees; skip duplicates.
    for (std::size_t b = 0; b < bins.size(); ++b) {
      bool duplicate = false;
      for (std::size_t b2 = 0; b2 < b; ++b2) {
        if (bins[b2].count == bins[b].count &&
            bins[b2].rb_sum == bins[b].rb_sum &&
            bins[b2].max_re == bins[b].max_re) {
          duplicate = true;
          break;
        }
      }
      if (duplicate || !fits(bins[b], v)) continue;
      const Bin saved = bins[b];
      bins[b].rb_sum += v.rb;
      bins[b].max_re = std::max(bins[b].max_re, v.re);
      ++bins[b].count;
      dfs(depth + 1, bins);
      bins[b] = saved;
    }

    // Branch b+1: open one canonical new bin (PMs are interchangeable).
    if (bins.size() + 1 < best_) {
      Bin fresh;
      if (fits(fresh, v)) {
        bins.push_back(Bin{v.rb, v.re, 1});
        dfs(depth + 1, bins);
        bins.pop_back();
      }
    }
  }

  const ProblemInstance* inst_;
  const MapCalTable* table_;
  OptimalOptions options_;
  Resource capacity_;
  std::vector<std::size_t> order_;
  std::size_t best_;
  std::size_t lower_bound_;
  std::size_t nodes_{0};
};

}  // namespace

std::optional<std::size_t> optimal_pm_count(const ProblemInstance& inst,
                                            const MapCalTable& table,
                                            const OptimalOptions& options) {
  inst.validate();
  options.validate();
  BURSTQ_REQUIRE(inst.n_vms() <= options.max_vms,
                 "instance too large for exact search");
  const Resource capacity = inst.pms.front().capacity;
  for (const auto& pm : inst.pms)
    BURSTQ_REQUIRE(pm.capacity == capacity,
                   "optimal search requires uniform PM capacity");

  Search search(inst, table, options, capacity);
  return search.run();
}

}  // namespace burstq
