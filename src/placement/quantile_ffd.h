// Consolidation under the exact quantile reservation — the burstq
// extension that replaces the paper's uniform max-Re blocks with the
// true (1 - rho)-quantile of the host set's extra-demand distribution
// (see queuing/quantile_reservation.h).
//
// Feasibility:  R*(T u {v}) + sum(Rb) <= C
//
// Properties relative to Algorithm 2:
//   * sound for arbitrary mixes of Re AND (p_on, p_off) — no rounding,
//     no uniform-block slack, no reliance on Re clustering
//   * tighter or equal packing (R* <= mapping(k) * max(Re) always)
//   * costlier feasibility check: O(k * sum(Re)/grid) per candidate

#pragma once

#include <span>

#include "placement/first_fit.h"
#include "placement/spec.h"
#include "queuing/quantile_reservation.h"

namespace burstq {

struct QuantileFfdOptions {
  QuantileReservationOptions reservation{};
  std::size_t max_vms_per_pm{16};
  std::size_t cluster_buckets{8};  ///< kept for order parity with Alg. 2

  void validate() const;
};

/// R* + sum(Rb) for an explicit host set.
double quantile_footprint(std::span<const VmSpec> hosted,
                          const QuantileReservationOptions& options);

/// Feasibility of adding `vm` to `pm` under the quantile reservation.
bool fits_with_quantile_reservation(const ProblemInstance& inst,
                                    const Placement& placement, VmId vm,
                                    PmId pm,
                                    const QuantileFfdOptions& options);

/// QueuingFFD with the exact quantile reservation (same visit order as
/// Algorithm 2 so the comparison isolates the reservation rule).
PlacementResult queuing_ffd_quantile(const ProblemInstance& inst,
                                     const QuantileFfdOptions& options = {});

/// Post-hoc validation.
bool placement_satisfies_quantile_reservation(
    const ProblemInstance& inst, const Placement& placement,
    const QuantileFfdOptions& options);

}  // namespace burstq
