// Max-segment tree over per-PM admissible-slack keys.
//
// The incremental first-fit engine (incremental.h) keeps one key per PM —
// a conservative upper bound on the largest Rb the PM could still admit —
// and needs "lowest-indexed PM at or after `from` whose key is at least
// t".  A max tree answers that in O(log m) by descending into the
// leftmost subtree whose maximum clears the threshold, and a key update
// after an assignment is an O(log m) root-path refresh.  The structure is
// deliberately generic (doubles + indices, no placement types) so other
// drivers with a "first index whose key >= threshold" shape can reuse it.

#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace burstq {

class PmSlackTree {
 public:
  static constexpr std::size_t npos =
      std::numeric_limits<std::size_t>::max();

  /// Builds the tree over `keys` (one per PM).  Requires at least one key.
  explicit PmSlackTree(std::vector<double> keys);

  /// Replaces the key of PM `i` and refreshes the root path.  O(log m).
  void update(std::size_t i, double key);

  /// Current key of PM `i`.
  [[nodiscard]] double key(std::size_t i) const;

  /// Lowest index j >= from with key(j) >= threshold, or npos.  O(log m).
  [[nodiscard]] std::size_t find_first_ge(double threshold,
                                          std::size_t from = 0) const;

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_{0};
  std::size_t base_{1};      ///< first leaf slot (power of two >= n_)
  std::vector<double> tree_;  ///< 1-indexed heap layout; internal = max
};

}  // namespace burstq
