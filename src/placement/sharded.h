// Sharded parallel placement engine for the Eq. (17) reservation rule.
//
// The incremental engine (incremental.h) is a single sequential pass over
// one global PmSlackTree — fast per decision, but single-threaded.  This
// engine partitions the PM fleet into S contiguous shards, each with its
// own slack tree and per-PM (k, rb_sum, re_max) aggregates, and places
// VMs in parallel:
//
//   phase 1  VM at rank r in the Algorithm-2 visit order belongs to home
//            shard r mod S.  Each shard runs the exact incremental
//            first-fit over *its own* PMs for its VMs, in rank order.
//            Shards touch disjoint state, so the S shard tasks execute
//            concurrently on the common/parallel.h pool; tasks are
//            claimed dynamically off a shared counter, so idle workers
//            steal whatever shard is next (placement.shard.steals).
//   phase 2  VMs the home shard rejected ("spills") are reconciled
//            sequentially in global rank order against shards in fixed
//            order 0..S-1.  Because the reservation predicate is monotone
//            in PM load, one pass is complete: a VM no shard accepts now
//            will never fit later.
//   phase 3  The final Placement is materialized by replaying recorded
//            assignments in global rank order, so per-PM float aggregates
//            accumulate in a deterministic order.
//
// Determinism contract: the result is a pure function of (instance, visit
// order, shard count).  The thread count NEVER changes the result — it
// only changes which worker executes which shard task.  With S = 1 the
// engine degenerates to one sequential pass over one global tree and is
// bit-identical to first_fit_place_reservation (same keys, same
// arithmetic, same visit order, same unplaced order).  For S > 1 the
// semantics differ from global first-fit by design (each VM first-fits
// within its home shard, then spills across shards in fixed order); the
// trade is documented in docs/PERFORMANCE.md.
//
// Shard count is deliberately NOT derived from the thread count — that
// would make results depend on the machine.  `shards = 0` auto-sizes from
// the PM count alone (resolve_shard_count).

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "placement/first_fit.h"
#include "placement/pm_slack_tree.h"
#include "queuing/mapcal.h"

namespace burstq {

struct ShardedOptions {
  /// Number of PM shards.  1 (default) = bit-identical to the incremental
  /// engine; 0 = auto-size from the PM count (never from threads).
  std::size_t shards{1};
  /// Worker threads for the parallel phase (0 = default_thread_count()).
  /// Never affects results.
  std::size_t threads{0};
  /// Max exact Eq. (17) confirmations per placement decision; 0 =
  /// unlimited.  A decision that exhausts its budget gives up (spill in
  /// phase 1, unplaced in phase 2) — deterministic, since the budget
  /// counts checks, not time.
  std::size_t decision_budget{0};

  void validate() const;
};

/// Per-run statistics, also exported as placement.shard.* obs metrics.
struct ShardedStats {
  std::size_t shards{0};            ///< resolved shard count
  std::size_t threads{0};           ///< resolved worker count
  std::size_t local_placed{0};      ///< VMs placed by their home shard
  std::size_t spills{0};            ///< VMs rejected by their home shard
  std::size_t reconcile_placed{0};  ///< spills placed by reconciliation
  std::size_t reconcile_passes{0};  ///< 0 or 1 (one pass is complete)
  std::size_t steals{0};            ///< shard tasks run by a foreign worker
  std::size_t budget_exhausted{0};  ///< decisions aborted by the budget
  std::size_t tree_descents{0};     ///< slack-tree queries, all phases
  std::size_t exact_checks{0};      ///< exact Eq. (17) confirmations
};

/// Deterministic shard count for `n_pms` PMs.  `requested` > 0 is clamped
/// to [1, n_pms]; 0 auto-sizes from the PM count alone (one shard per
/// ~256 PMs, capped at 64) so results never depend on the machine.
std::size_t resolve_shard_count(std::size_t n_pms, std::size_t requested);

/// A forest of per-shard PmSlackTrees over conservative admissibility
/// keys, with fixed-order cross-shard routing.  The offline engine uses
/// it for its parallel phase (each shard task touches only its own tree,
/// so concurrent set_key on distinct shards is race-free); the online
/// consolidator and the controller use route() for bounded-latency
/// arrivals.  Keys are maintained by the owner via set_key — the index
/// stores no aggregates itself.
class ShardedAdmitIndex {
 public:
  static constexpr std::size_t npos = PmSlackTree::npos;

  ShardedAdmitIndex() = default;

  /// Builds the forest over `n_pms` PMs in `shards` contiguous shards
  /// (resolved via resolve_shard_count).  All keys start at `initial_key`.
  ShardedAdmitIndex(std::size_t n_pms, std::size_t shards,
                    double initial_key = 0.0);

  void reset(std::size_t n_pms, std::size_t shards,
             double initial_key = 0.0);

  [[nodiscard]] std::size_t n_pms() const { return n_pms_; }
  [[nodiscard]] std::size_t shard_count() const { return offsets_.size(); }
  [[nodiscard]] bool empty() const { return n_pms_ == 0; }

  /// Shard owning global PM `pm`.
  [[nodiscard]] std::size_t shard_of(std::size_t pm) const;

  /// [first, last) global PM range of `shard`.
  [[nodiscard]] std::size_t shard_begin(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_end(std::size_t shard) const;

  /// Replaces the key of global PM `pm`.  Touches only that PM's shard
  /// tree — concurrent calls for PMs in distinct shards do not race.
  void set_key(std::size_t pm, double key);

  [[nodiscard]] double key(std::size_t pm) const;

  /// Lowest global PM index j >= from inside `shard` with key >= need,
  /// or npos.  `from` is a global PM index (clamped into the shard).
  [[nodiscard]] std::size_t find_in_shard(std::size_t shard, double need,
                                          std::size_t from = 0) const;

  struct RouteOutcome {
    std::size_t pm{npos};          ///< chosen PM, or npos
    bool budget_exhausted{false};  ///< gave up because of the budget
    std::size_t tree_descents{0};
    std::size_t exact_checks{0};
  };

  /// First-fit routing with cross-shard spill: scans `home` first, then
  /// shards 0..S-1 in fixed order (skipping home), confirming each
  /// key-admissible candidate with `exact(pm)`.  Stops after `budget`
  /// exact checks when budget > 0.  Deterministic given (keys, home).
  /// With S = 1 this is exactly the incremental engine's tree-filtered
  /// linear first-fit over all PMs.
  [[nodiscard]] RouteOutcome route(
      double need, std::size_t home,
      const std::function<bool(std::size_t)>& exact,
      std::size_t budget = 0) const;

 private:
  std::size_t n_pms_{0};
  std::vector<std::size_t> offsets_;  ///< first global PM of each shard
  std::vector<PmSlackTree> trees_;    ///< one per shard, local indices
};

/// Sharded parallel first-fit under Eq. (17).  See the file comment for
/// the phase structure and the determinism contract.  With
/// options.shards == 1 and decision_budget == 0 the result is
/// bit-identical to first_fit_place_reservation(inst, order, table).
PlacementResult sharded_place_reservation(const ProblemInstance& inst,
                                          std::span<const std::size_t> order,
                                          const MapCalTable& table,
                                          const ShardedOptions& options = {},
                                          ShardedStats* stats = nullptr);

}  // namespace burstq
