#include "placement/budget.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace burstq {

namespace {

/// Attempts to empty `source`; returns the move list (empty = impossible
/// within budget).  Rolls back partial progress on failure so the
/// placement is untouched unless the evacuation fully succeeds.
std::vector<PlannedMove> try_evacuate(const ProblemInstance& inst,
                                      Placement& placement,
                                      const MapCalTable& table, PmId source,
                                      std::size_t budget) {
  const std::vector<std::size_t> vms = placement.vms_on(source);  // copy
  if (vms.empty() || vms.size() > budget) return {};

  std::vector<PlannedMove> moves;
  for (std::size_t i : vms) {
    const VmId vm{i};
    placement.unassign(vm);
    bool placed = false;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId target{j};
      if (target == source) continue;
      // Never *open* a PM: the point is shrinking the footprint.
      if (placement.count_on(target) == 0) continue;
      if (fits_with_reservation(inst, placement, vm, target, table)) {
        placement.assign(vm, target);
        moves.push_back(PlannedMove{vm, source, target});
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Roll back: restore this VM and undo prior moves.
      placement.assign(vm, source);
      for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
        placement.unassign(it->vm);
        placement.assign(it->vm, it->from);
      }
      return {};
    }
  }
  return moves;
}

}  // namespace

BudgetConsolidationResult consolidate_with_budget(
    const ProblemInstance& inst, Placement& placement,
    const MapCalTable& table, std::size_t max_moves) {
  inst.validate();
  BURSTQ_REQUIRE(placement.vms_assigned() == inst.n_vms(),
                 "placement must assign every VM");
  BURSTQ_REQUIRE(placement.n_pms() == inst.n_pms(),
                 "placement shape must match the instance");

  BudgetConsolidationResult result;
  result.pms_before = placement.pms_used();
  result.budget_left = max_moves;

  for (;;) {
    // Candidate source PMs, cheapest to evacuate first.
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const std::size_t count = placement.count_on(PmId{j});
      if (count > 0 && count <= result.budget_left)
        candidates.push_back(j);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) {
                return placement.count_on(PmId{a}) <
                       placement.count_on(PmId{b});
              });

    bool progressed = false;
    for (std::size_t j : candidates) {
      auto moves = try_evacuate(inst, placement, table, PmId{j},
                                result.budget_left);
      if (moves.empty()) continue;
      result.budget_left -= moves.size();
      for (auto& m : moves) result.moves.push_back(m);
      progressed = true;
      break;  // re-rank: the cluster just changed
    }
    if (!progressed) break;
  }

  result.pms_after = placement.pms_used();
  return result;
}

}  // namespace burstq
