// Stochastic bin packing (SBP) baseline — the related-work family the
// paper contrasts itself against ([6] Wang-Meng-Zhang, [10] Chen et al.,
// [18] Breitgand-Epstein): model each VM's demand as an independent
// normal random variable and pack by "effective size".
//
// Under the ON-OFF model, VM i's stationary demand has
//   mean     mu_i    = Rb + q * Re
//   variance sigma_i = q (1 - q) Re^2
// A PM is feasible for a set S when
//   sum(mu) + z_{1-eps} * sqrt(sum(sigma^2)) <= C
// i.e. P[aggregate demand > C] <~ eps by the normal approximation.
//
// SBP captures *amplitude* variability but not *time* correlation: it has
// no notion of spike duration, which is exactly the dimension the paper's
// Markov model adds.  bench/fig5 carries SBP as a fourth strategy so the
// difference is visible.

#pragma once

#include "placement/first_fit.h"
#include "placement/spec.h"

namespace burstq {

/// Mean of VM demand under the stationary ON-OFF law.
double sbp_mean_demand(const VmSpec& v);

/// Variance of VM demand under the stationary ON-OFF law.
double sbp_demand_variance(const VmSpec& v);

/// Normal-approximation stochastic bin packing: FFD by mean demand with
/// the effective-size feasibility rule at overflow probability `epsilon`.
/// Requires epsilon in (0, 1).
PlacementResult sbp_normal(const ProblemInstance& inst,
                           double epsilon = 0.01,
                           std::size_t max_vms_per_pm = 16);

}  // namespace burstq
