// The paper's comparison strategies (Section V):
//
//   RP    — FFD by Rp: provision every VM for its peak.  Zero capacity
//           violations ever, but the most PMs.
//   RB    — FFD by Rb: provision for normal load only.  Fewest PMs,
//           "disastrous" CVR and constant cycle migration.
//   RB-EX — FFD by Rb but keep a delta-fraction of every PM unallocated
//           ("reserve at least delta-percentile resources on each PM"),
//           the burstiness-agnostic middle ground; paper uses delta = 0.3.
//
// All baselines honor the same per-PM VM cap d as QueuingFFD so the
// comparison isolates the packing rule.

#pragma once

#include <cstddef>
#include <vector>

#include "placement/first_fit.h"
#include "placement/spec.h"

namespace burstq {

/// FFD by peak demand Rp (paper "RP").  Feasible iff sum of Rp <= C.
PlacementResult ffd_by_peak(const ProblemInstance& inst,
                            std::size_t max_vms_per_pm = 16);

/// FFD by normal demand Rb (paper "RB").  Feasible iff sum of Rb <= C.
PlacementResult ffd_by_normal(const ProblemInstance& inst,
                              std::size_t max_vms_per_pm = 16);

/// FFD by Rb with a delta-fraction headroom reservation (paper "RB-EX").
/// Feasible iff sum of Rb <= (1 - delta) * C.  Requires delta in [0, 1).
PlacementResult ffd_reserved(const ProblemInstance& inst, double delta = 0.3,
                             std::size_t max_vms_per_pm = 16);

/// Identifier for strategy dispatch in the experiment runner, the
/// Consolidator facade and the benches.  The first four are the paper's
/// strategies; the rest are burstq's baselines/extensions.
enum class Strategy {
  kQueue,     ///< Algorithm 2 (QueuingFFD)
  kPeak,      ///< FFD by Rp ("RP")
  kNormal,    ///< FFD by Rb ("RB")
  kReserved,  ///< FFD by Rb with delta headroom ("RB-EX")
  kSbp,       ///< stochastic bin packing, normal approximation
  kHetero,    ///< exact Poisson-binomial reservation (no rounding)
  kQuantile,  ///< exact extra-demand quantile reservation
};

/// Display name (QUEUE / RP / RB / RB-EX / SBP / HETERO / QUANTILE).
const char* strategy_name(Strategy s);

/// All strategies, paper's first.
std::vector<Strategy> all_strategies();

}  // namespace burstq
