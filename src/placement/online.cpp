#include "placement/online.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "obs/obs.h"
#include "placement/cluster.h"
#include "placement/incremental.h"
#include "placement/placement.h"

namespace burstq {

OnlineConsolidator::OnlineConsolidator(std::vector<PmSpec> pms,
                                       QueuingFfdOptions options,
                                       OnOffParams initial_params)
    : pms_(std::move(pms)),
      options_(options),
      params_(initial_params),
      table_(options.max_vms_per_pm, initial_params, options.rho,
             options.method),
      on_pm_(pms_.size()),
      rb_sum_(pms_.size(), 0.0),
      re_max_(pms_.size(), 0.0) {
  BURSTQ_REQUIRE(!pms_.empty(), "online consolidator needs at least one PM");
  options_.validate();
  for (const auto& p : pms_) p.validate();
  index_.reset(pms_.size(), options_.sharded.shards);
  refresh_all_keys();
}

std::size_t OnlineConsolidator::next_home() {
  const std::size_t home = route_seq_ % index_.shard_count();
  ++route_seq_;
  return home;
}

void OnlineConsolidator::refresh_key(PmId pm) {
  index_.set_key(pm.value,
                 conservative_admit_key(pms_[pm.value].capacity,
                                        on_pm_[pm.value].size(),
                                        rb_sum_[pm.value], re_max_[pm.value],
                                        table_));
}

void OnlineConsolidator::refresh_all_keys() {
  for (std::size_t j = 0; j < pms_.size(); ++j) refresh_key(PmId{j});
}

std::vector<VmSpec> OnlineConsolidator::hosted_specs(PmId pm) const {
  std::vector<VmSpec> out;
  out.reserve(on_pm_[pm.value].size());
  for (std::size_t s : on_pm_[pm.value]) out.push_back(slots_[s].spec);
  return out;
}

bool OnlineConsolidator::pm_admits(const VmSpec& vm, PmId pm) const {
  // Same arithmetic as fits_with_reservation_specs, fed from the cached
  // per-PM aggregates instead of a walk over the hosted specs.
  const std::size_t k_new = on_pm_[pm.value].size() + 1;
  if (k_new > table_.max_vms_per_pm()) return false;
  const Resource block = std::max(vm.re, re_max_[pm.value]);
  const Resource footprint =
      block * static_cast<double>(table_.blocks(k_new)) + vm.rb +
      rb_sum_[pm.value];
  return footprint <= pms_[pm.value].capacity * (1.0 + kCapacityEpsilon);
}

void OnlineConsolidator::recompute_pm_aggregates(PmId pm) {
  Resource rb = 0.0;
  Resource re = 0.0;
  for (std::size_t s : on_pm_[pm.value]) {
    rb += slots_[s].spec.rb;
    re = std::max(re, slots_[s].spec.re);
  }
  rb_sum_[pm.value] = rb;
  re_max_[pm.value] = re;
}

std::optional<PmId> OnlineConsolidator::find_first_fit(const VmSpec& vm,
                                                       std::size_t home) {
  const auto outcome = index_.route(
      vm.rb, home,
      [&](std::size_t j) { return pm_admits(vm, PmId{j}); },
      options_.sharded.decision_budget);
  if (outcome.budget_exhausted)
    BURSTQ_COUNT("placement.shard.budget_exhausted", 1);
  if (outcome.pm == ShardedAdmitIndex::npos) return std::nullopt;
  return PmId{outcome.pm};
}

VmHandle OnlineConsolidator::install(const VmSpec& vm, PmId pm) {
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  slots_[slot] = Slot{vm, pm, true, on_pm_[pm.value].size()};
  on_pm_[pm.value].push_back(slot);
  rb_sum_[pm.value] += vm.rb;
  re_max_[pm.value] = std::max(re_max_[pm.value], vm.re);
  refresh_key(pm);
  ++live_count_;
  return VmHandle{slot};
}

std::optional<VmHandle> OnlineConsolidator::add_vm(const VmSpec& vm) {
  vm.validate();
  const auto pm = find_first_fit(vm, next_home());
  if (!pm) return std::nullopt;
  return install(vm, *pm);
}

std::vector<std::optional<VmHandle>> OnlineConsolidator::add_batch(
    const std::vector<VmSpec>& batch) {
  std::vector<std::optional<VmHandle>> handles(batch.size());
  if (batch.empty()) return handles;
  for (const auto& v : batch) v.validate();

  // "When a batch of new VMs arrives, we use the same scheme as
  // Algorithm 2": cluster-by-Re visit order over the batch.
  const std::vector<std::size_t> order =
      queuing_ffd_order(batch, options_.cluster_buckets);
  for (std::size_t idx : order) {
    const auto pm = find_first_fit(batch[idx], next_home());
    if (pm) handles[idx] = install(batch[idx], *pm);
  }
  return handles;
}

void OnlineConsolidator::remove_vm(VmHandle h) {
  BURSTQ_REQUIRE(h.valid() && h.slot < slots_.size() && slots_[h.slot].live,
                 "remove_vm on an invalid or dead handle");
  Slot& slot = slots_[h.slot];
  auto& list = on_pm_[slot.pm.value];
  const std::size_t pos = slot.pos;
  BURSTQ_ASSERT(pos < list.size() && list[pos] == h.slot,
                "online PM lists out of sync");
  // Swap-remove; O(1) like Placement::unassign.
  const std::size_t moved = list.back();
  list[pos] = moved;
  slots_[moved].pos = pos;
  list.pop_back();
  if (list.empty()) {
    rb_sum_[slot.pm.value] = 0.0;
    re_max_[slot.pm.value] = 0.0;
  } else {
    rb_sum_[slot.pm.value] -= slot.spec.rb;
    if (slot.spec.re >= re_max_[slot.pm.value])
      recompute_pm_aggregates(slot.pm);
  }
  refresh_key(slot.pm);
  slot.live = false;
  free_slots_.push_back(h.slot);
  --live_count_;
  // The queue size on the PM is implicitly "recalculated": reservation is
  // a pure function of the remaining hosted set, which just shrank, so the
  // invariant can only get slacker.
}

bool OnlineConsolidator::resize_vm(VmHandle h, const VmSpec& new_spec) {
  BURSTQ_REQUIRE(h.valid() && h.slot < slots_.size() && slots_[h.slot].live,
                 "resize_vm on an invalid or dead handle");
  new_spec.validate();
  Slot& slot = slots_[h.slot];
  const PmId pm = slot.pm;

  // Fast path: current PM still satisfies Eq. (17) with the resized spec
  // (its co-residents unchanged) — resize in place, no migration.
  std::vector<VmSpec> others;
  others.reserve(on_pm_[pm.value].size() - 1);
  for (std::size_t s : on_pm_[pm.value])
    if (s != h.slot) others.push_back(slots_[s].spec);
  if (fits_with_reservation_specs(others, new_spec, pms_[pm.value].capacity,
                                  table_)) {
    slot.spec = new_spec;
    recompute_pm_aggregates(pm);
    refresh_key(pm);
    BURSTQ_COUNT("online.resize.inplace", 1);
    return true;
  }

  // Detach, then route the resized spec like an arrival whose home shard
  // is the current PM's (locality-preserving and deterministic).
  auto& list = on_pm_[pm.value];
  const std::size_t pos = slot.pos;
  const std::size_t moved = list.back();
  list[pos] = moved;
  slots_[moved].pos = pos;
  list.pop_back();
  recompute_pm_aggregates(pm);
  refresh_key(pm);

  const auto target = find_first_fit(new_spec, index_.shard_of(pm.value));
  const VmSpec& chosen_spec = target ? new_spec : slot.spec;
  const PmId chosen_pm = target ? *target : pm;
  // On failure the original spec goes back to the original PM — always
  // feasible, since that exact hosted set satisfied Eq. (17) before.
  slot.spec = chosen_spec;
  slot.pm = chosen_pm;
  slot.pos = on_pm_[chosen_pm.value].size();
  on_pm_[chosen_pm.value].push_back(h.slot);
  rb_sum_[chosen_pm.value] += chosen_spec.rb;
  re_max_[chosen_pm.value] =
      std::max(re_max_[chosen_pm.value], chosen_spec.re);
  refresh_key(chosen_pm);
  // Two call sites on purpose: BURSTQ_COUNT caches the counter per line.
  if (target)
    BURSTQ_COUNT("online.resize.moved", 1);
  else
    BURSTQ_COUNT("online.resize.rejected", 1);
  return target.has_value();
}

std::size_t OnlineConsolidator::recalibrate(double tolerance) {
  if (live_count_ == 0) return 0;

  std::vector<VmSpec> live;
  live.reserve(live_count_);
  for (const auto& s : slots_)
    if (s.live) live.push_back(s.spec);

  const OnOffParams fresh = round_uniform_params(live, options_.rounding);
  if (std::abs(fresh.p_on - params_.p_on) <= tolerance &&
      std::abs(fresh.p_off - params_.p_off) <= tolerance)
    return 0;

  params_ = fresh;
  table_ = MapCalTable(options_.max_vms_per_pm, params_, options_.rho,
                       options_.method);
  // Every key depends on the mapping table; rebuild the whole index.
  refresh_all_keys();

  // Repair pass: a burstier population can make existing PMs violate
  // Eq. (17) under the new table.  Evict newest-first (cheapest to move in
  // an incremental system) and re-place via first-fit.
  std::size_t migrations = 0;
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const PmId pm{j};
    while (!on_pm_[j].empty()) {
      const std::size_t k = on_pm_[j].size();
      const Resource reserved =
          re_max_[j] * static_cast<double>(table_.blocks(
                           std::min(k, table_.max_vms_per_pm()))) +
          rb_sum_[j];
      if (k <= table_.max_vms_per_pm() &&
          reserved <= pms_[j].capacity * (1.0 + kCapacityEpsilon))
        break;
      const std::size_t victim = on_pm_[j].back();
      on_pm_[j].pop_back();
      slots_[victim].live = false;
      --live_count_;
      const VmSpec spec = slots_[victim].spec;
      free_slots_.push_back(victim);
      recompute_pm_aggregates(pm);
      refresh_key(pm);
      // Re-admit elsewhere; count as one migration either way (if nowhere
      // fits the VM is dropped, which callers can detect via vms_hosted()).
      ++migrations;
      add_vm(spec);
    }
  }
  return migrations;
}

std::size_t OnlineConsolidator::pms_used() const {
  std::size_t used = 0;
  for (const auto& list : on_pm_)
    if (!list.empty()) ++used;
  return used;
}

PmId OnlineConsolidator::pm_of(VmHandle h) const {
  BURSTQ_REQUIRE(h.valid() && h.slot < slots_.size() && slots_[h.slot].live,
                 "pm_of on an invalid or dead handle");
  return slots_[h.slot].pm;
}

const VmSpec& OnlineConsolidator::spec_of(VmHandle h) const {
  BURSTQ_REQUIRE(h.valid() && h.slot < slots_.size() && slots_[h.slot].live,
                 "spec_of on an invalid or dead handle");
  return slots_[h.slot].spec;
}

std::size_t OnlineConsolidator::count_on(PmId pm) const {
  BURSTQ_REQUIRE(pm.value < on_pm_.size(), "PM index out of range");
  return on_pm_[pm.value].size();
}

bool OnlineConsolidator::reservation_invariant_holds() const {
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const auto hosted = hosted_specs(PmId{j});
    if (hosted.empty()) continue;
    if (hosted.size() > table_.max_vms_per_pm()) return false;
    if (reserved_footprint_specs(hosted, table_) >
        pms_[j].capacity * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

}  // namespace burstq
