// Generic first-fit / best-fit placement drivers.
//
// Every strategy in the paper (QUEUE, RP, RB, RB-EX) is "order the VMs,
// then put each on the first/best PM where a feasibility predicate holds".
// Factoring the driver out keeps each strategy to an order + a predicate
// and guarantees they differ in nothing else — important for a fair
// comparison.

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "placement/placement.h"
#include "placement/spec.h"

namespace burstq {

/// Outcome of a placement strategy.
struct PlacementResult {
  Placement placement;
  std::vector<VmId> unplaced;  ///< VMs no PM could accept (in visit order)

  [[nodiscard]] std::size_t pms_used() const { return placement.pms_used(); }
  [[nodiscard]] bool complete() const { return unplaced.empty(); }
};

/// Feasibility predicate: may `vm` join `pm` given the current partial
/// placement?  Must be monotone in PM load (adding VMs never makes an
/// infeasible move feasible) for first-fit semantics to be meaningful.
using FitPredicate =
    std::function<bool(const Placement&, VmId vm, PmId pm)>;

/// Places VMs in `order` onto the lowest-indexed PM satisfying `fits`.
/// VMs that fit nowhere are collected in `unplaced` (not thrown: callers
/// like the online consolidator treat that as "power on another PM").
PlacementResult first_fit_place(const ProblemInstance& inst,
                                std::span<const std::size_t> order,
                                const FitPredicate& fits);

/// Best-fit variant (ablation): among feasible PMs pick the one whose
/// remaining slack under `slack` is smallest after insertion.
using SlackFunction =
    std::function<double(const Placement&, VmId vm, PmId pm)>;

PlacementResult best_fit_place(const ProblemInstance& inst,
                               std::span<const std::size_t> order,
                               const FitPredicate& fits,
                               const SlackFunction& slack);

}  // namespace burstq
