// Generic first-fit / best-fit placement drivers.
//
// Every strategy in the paper (QUEUE, RP, RB, RB-EX) is "order the VMs,
// then put each on the first/best PM where a feasibility predicate holds".
// Factoring the driver out keeps each strategy to an order + a predicate
// and guarantees they differ in nothing else — important for a fair
// comparison.
//
// The drivers are templates over the predicate/slack callables so the
// feasibility check inlines into the scan loop; call sites pass lambdas
// directly.  The std::function-based FitPredicate / SlackFunction aliases
// remain for code that needs to store a type-erased predicate — passing
// one through the driver simply instantiates the template for
// std::function (one indirect call per check, the pre-template behavior).
//
// The placements the drivers build are bound to the instance, so
// predicates built on total_rb_on / max_re_on / fits_with_reservation run
// in O(1) per check (see placement.h).  For the reservation predicate
// specifically, first_fit_place_reservation in incremental.h replaces the
// linear PM scan with an O(log m) slack-tree descent.

#pragma once

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "obs/obs.h"
#include "placement/placement.h"
#include "placement/spec.h"

namespace burstq {

/// Outcome of a placement strategy.
struct PlacementResult {
  Placement placement;
  std::vector<VmId> unplaced;  ///< VMs no PM could accept (in visit order)

  [[nodiscard]] std::size_t pms_used() const { return placement.pms_used(); }
  [[nodiscard]] bool complete() const { return unplaced.empty(); }
};

/// Feasibility predicate: may `vm` join `pm` given the current partial
/// placement?  Must be monotone in PM load (adding VMs never makes an
/// infeasible move feasible) for first-fit semantics to be meaningful.
/// Type-erased storage form; the drivers accept any callable with this
/// signature.
using FitPredicate =
    std::function<bool(const Placement&, VmId vm, PmId pm)>;

/// Best-fit slack: remaining room on `pm` after hypothetically adding
/// `vm`; smaller = tighter = "best".  Type-erased storage form.
using SlackFunction =
    std::function<double(const Placement&, VmId vm, PmId pm)>;

namespace detail {

/// Shared prologue/epilogue of the scan drivers (non-template so the obs
/// counter registrations are not duplicated per instantiation).
void validate_driver_inputs(const ProblemInstance& inst,
                            std::span<const std::size_t> order);
void record_driver_counts(const PlacementResult& result,
                          std::size_t fit_checks);

}  // namespace detail

/// Places VMs in `order` onto the lowest-indexed PM satisfying `fits`.
/// VMs that fit nowhere are collected in `unplaced` (not thrown: callers
/// like the online consolidator treat that as "power on another PM").
template <typename Fits>
PlacementResult first_fit_place(const ProblemInstance& inst,
                                std::span<const std::size_t> order,
                                const Fits& fits) {
  BURSTQ_SPAN("placement.first_fit");
  detail::validate_driver_inputs(inst, order);
  PlacementResult result{Placement(inst), {}};

  std::size_t fit_checks = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    bool placed = false;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      ++fit_checks;
      if (fits(result.placement, vm, pm)) {
        result.placement.assign(vm, pm);
        placed = true;
        break;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  detail::record_driver_counts(result, fit_checks);
  return result;
}

/// Best-fit variant (ablation): among feasible PMs pick the one whose
/// remaining slack under `slack` is smallest after insertion.
template <typename Fits, typename Slack>
PlacementResult best_fit_place(const ProblemInstance& inst,
                               std::span<const std::size_t> order,
                               const Fits& fits, const Slack& slack) {
  BURSTQ_SPAN("placement.best_fit");
  detail::validate_driver_inputs(inst, order);
  PlacementResult result{Placement(inst), {}};

  std::size_t fit_checks = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    PmId best{};
    double best_slack = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      ++fit_checks;
      if (!fits(result.placement, vm, pm)) continue;
      const double s = slack(result.placement, vm, pm);
      if (s < best_slack) {
        best_slack = s;
        best = pm;
      }
    }
    if (best.valid())
      result.placement.assign(vm, best);
    else
      result.unplaced.push_back(vm);
  }
  detail::record_driver_counts(result, fit_checks);
  return result;
}

}  // namespace burstq
