#include "placement/incremental.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "placement/pm_slack_tree.h"

namespace burstq {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Conservative admissibility key of PM j given its cached aggregates.
/// -inf once the per-PM VM cap is reached.
double admissible_key(const ProblemInstance& inst, const Placement& placement,
                      PmId pm, const MapCalTable& table) {
  const std::size_t k_new = placement.count_on(pm) + 1;
  if (k_new > table.max_vms_per_pm()) return kNegInf;
  const double cap = inst.pms[pm.value].capacity;
  const double reserved =
      placement.re_max_on(pm) * static_cast<double>(table.blocks(k_new)) +
      placement.rb_sum_on(pm);
  const double slack = cap * (1.0 + kCapacityEpsilon) - reserved;
  return slack + kSlackFilterMargin * (std::abs(cap) + std::abs(reserved) + 1.0);
}

}  // namespace

PlacementResult first_fit_place_reservation(const ProblemInstance& inst,
                                            std::span<const std::size_t> order,
                                            const MapCalTable& table,
                                            IncrementalStats* stats) {
  BURSTQ_SPAN("placement.first_fit");
  detail::validate_driver_inputs(inst, order);
  PlacementResult result{Placement(inst), {}};
  Placement& placement = result.placement;

  std::vector<double> keys(inst.n_pms());
  for (std::size_t j = 0; j < keys.size(); ++j)
    keys[j] = admissible_key(inst, placement, PmId{j}, table);
  PmSlackTree tree(std::move(keys));

  std::size_t descents = 0;
  std::size_t checks = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    const double need = inst.vms[vi].rb;
    bool placed = false;
    std::size_t from = 0;
    for (;;) {
      ++descents;
      const std::size_t j = tree.find_first_ge(need, from);
      if (j == PmSlackTree::npos) break;
      const PmId pm{j};
      ++checks;
      if (fits_with_reservation(inst, placement, vm, pm, table)) {
        placement.assign(vm, pm);
        tree.update(j, admissible_key(inst, placement, pm, table));
        placed = true;
        break;
      }
      from = j + 1;  // conservative filter false positive: keep scanning
    }
    if (!placed) result.unplaced.push_back(vm);
  }

  detail::record_driver_counts(result, checks);
  BURSTQ_COUNT("placement.tree_descents", descents);
  if (stats != nullptr) {
    stats->tree_descents += descents;
    stats->exact_checks += checks;
  }
  return result;
}

}  // namespace burstq
