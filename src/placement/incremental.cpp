#include "placement/incremental.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "placement/pm_slack_tree.h"

namespace burstq {

double conservative_admit_key(double capacity, std::size_t vm_count,
                              double rb_sum, double re_max,
                              const MapCalTable& table) {
  const std::size_t k_new = vm_count + 1;
  if (k_new > table.max_vms_per_pm())
    return -std::numeric_limits<double>::infinity();
  const double reserved =
      re_max * static_cast<double>(table.blocks(k_new)) + rb_sum;
  const double slack = capacity * (1.0 + kCapacityEpsilon) - reserved;
  return slack +
         kSlackFilterMargin * (std::abs(capacity) + std::abs(reserved) + 1.0);
}

double conservative_admit_key(const ProblemInstance& inst,
                              const Placement& placement, PmId pm,
                              const MapCalTable& table) {
  return conservative_admit_key(inst.pms[pm.value].capacity,
                                placement.count_on(pm),
                                placement.rb_sum_on(pm),
                                placement.re_max_on(pm), table);
}

PlacementResult first_fit_place_reservation(const ProblemInstance& inst,
                                            std::span<const std::size_t> order,
                                            const MapCalTable& table,
                                            IncrementalStats* stats) {
  BURSTQ_SPAN("placement.first_fit");
  detail::validate_driver_inputs(inst, order);
  PlacementResult result{Placement(inst), {}};
  Placement& placement = result.placement;

  std::vector<double> keys(inst.n_pms());
  for (std::size_t j = 0; j < keys.size(); ++j)
    keys[j] = conservative_admit_key(inst, placement, PmId{j}, table);
  PmSlackTree tree(std::move(keys));

  std::size_t descents = 0;
  std::size_t checks = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    const double need = inst.vms[vi].rb;
    bool placed = false;
    std::size_t from = 0;
    for (;;) {
      ++descents;
      const std::size_t j = tree.find_first_ge(need, from);
      if (j == PmSlackTree::npos) break;
      const PmId pm{j};
      ++checks;
      if (fits_with_reservation(inst, placement, vm, pm, table)) {
        placement.assign(vm, pm);
        tree.update(j, conservative_admit_key(inst, placement, pm, table));
        placed = true;
        break;
      }
      from = j + 1;  // conservative filter false positive: keep scanning
    }
    if (!placed) result.unplaced.push_back(vm);
  }

  detail::record_driver_counts(result, checks);
  BURSTQ_COUNT("placement.tree_descents", descents);
  if (stats != nullptr) {
    stats->tree_descents += descents;
    stats->exact_checks += checks;
  }
  return result;
}

}  // namespace burstq
