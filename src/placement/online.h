// Online consolidation (paper Section IV-E).
//
// "When a new VM arrives, we place it on the first PM that satisfies the
// constraint in Equation (17), and recalculate the size of the queue; when
// a VM quits, we simply recalculate the size of the queue on the PM; when
// a batch of new VMs arrives, we use the same scheme as Algorithm 2 to
// place them.  Additionally, if p_on and p_off varies among VMs, we need
// to round them to uniform values ... which requires periodical
// recalculation of the rounded p_on and p_off."
//
// OnlineConsolidator owns the live cluster state and implements exactly
// those rules, plus the periodic recalibration: when the rounded
// parameters drift, the mapping table is rebuilt and PMs whose reservation
// no longer fits are repaired by migrating their most-recently-added VMs.
//
// Placement decisions go through a ShardedAdmitIndex (sharded.h): the PM
// fleet is split into options.sharded.shards contiguous shards, arrivals
// are routed round-robin to a home shard and spill across the remaining
// shards in fixed order, and options.sharded.decision_budget bounds the
// exact Eq. (17) confirmations per decision (bounded-latency admission).
// With the defaults — one shard, no budget — every decision is exactly
// the legacy linear first-fit scan: the conservative key filter never
// hides a feasible PM, so the first exact-confirmed PM is the same.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "placement/queuing_ffd.h"
#include "placement/sharded.h"
#include "placement/spec.h"

namespace burstq {

/// Stable handle for a VM admitted to an OnlineConsolidator.
struct VmHandle {
  std::size_t slot{static_cast<std::size_t>(-1)};
  [[nodiscard]] bool valid() const {
    return slot != static_cast<std::size_t>(-1);
  }
  friend bool operator==(VmHandle a, VmHandle b) { return a.slot == b.slot; }
};

class OnlineConsolidator {
 public:
  /// A fleet of PMs, initially empty, managed under `options`.
  /// `initial_params` seeds the mapping table until the first VMs arrive
  /// (afterwards recalibrate() tracks the hosted population).
  OnlineConsolidator(std::vector<PmSpec> pms, QueuingFfdOptions options,
                     OnOffParams initial_params = {});

  /// Admits one VM (first-fit under Eq. 17 against the *current* mapping
  /// table).  Returns nullopt when no PM can take it.
  std::optional<VmHandle> add_vm(const VmSpec& vm);

  /// Admits a batch using the Algorithm-2 ordering (cluster by Re, sort).
  /// Element i of the result is the handle for batch[i], nullopt if that
  /// VM could not be placed.
  std::vector<std::optional<VmHandle>> add_batch(
      const std::vector<VmSpec>& batch);

  /// Removes a VM.  The freed queue size on its PM shrinks automatically
  /// (reservation is a function of the remaining VMs).
  void remove_vm(VmHandle h);

  /// Resizes a live VM to `new_spec`.  Fast path: if the current PM still
  /// satisfies Eq. (17) with the resized spec, the VM stays put.
  /// Otherwise it is detached and routed like a fresh arrival (home =
  /// its current PM's shard); if no PM admits the new spec the original
  /// spec is restored on the original PM (always feasible — the PM was
  /// valid before) and false is returned.  The handle stays valid in
  /// every case.
  bool resize_vm(VmHandle h, const VmSpec& new_spec);

  /// Recomputes the rounded (p_on, p_off) from the VMs currently hosted;
  /// if they moved by more than `tolerance` (absolute, either component),
  /// rebuilds the mapping table and repairs any PM whose reservation now
  /// exceeds capacity by re-placing its newest VMs elsewhere.  Returns the
  /// number of repair migrations performed.
  std::size_t recalibrate(double tolerance = 1e-3);

  [[nodiscard]] std::size_t pms_used() const;
  [[nodiscard]] std::size_t vms_hosted() const { return live_count_; }
  [[nodiscard]] PmId pm_of(VmHandle h) const;
  [[nodiscard]] const VmSpec& spec_of(VmHandle h) const;
  [[nodiscard]] std::size_t count_on(PmId pm) const;
  [[nodiscard]] const MapCalTable& table() const { return table_; }
  [[nodiscard]] const OnOffParams& rounded_params() const { return params_; }

  /// True when every PM satisfies Eq. (17) under the current table —
  /// the invariant the class maintains after every mutation.
  [[nodiscard]] bool reservation_invariant_holds() const;

 private:
  struct Slot {
    VmSpec spec;
    PmId pm;
    bool live{false};
    std::size_t pos{0};  ///< index of this slot in on_pm_[pm]
  };

  /// Gathers the hosted specs on one PM (helper for the independent
  /// walk-based invariant validation).
  [[nodiscard]] std::vector<VmSpec> hosted_specs(PmId pm) const;

  /// Eq. (17) admission check against the cached per-PM aggregates; O(1).
  [[nodiscard]] bool pm_admits(const VmSpec& vm, PmId pm) const;

  /// Rebuilds rb_sum_/re_max_ for one PM from its slot list (used after
  /// removals that may retire the max-Re member).
  void recompute_pm_aggregates(PmId pm);

  /// Routes `vm` through the shard index: home shard first, then the
  /// remaining shards in fixed order, confirming candidates with
  /// pm_admits and honouring the decision budget.  With one shard this
  /// is exactly the legacy linear first-fit.
  std::optional<PmId> find_first_fit(const VmSpec& vm, std::size_t home);

  /// Next round-robin home shard (advances a deterministic counter).
  std::size_t next_home();

  /// Recomputes the conservative admissibility key of one PM (all PMs)
  /// in the shard index from the cached aggregates.
  void refresh_key(PmId pm);
  void refresh_all_keys();

  VmHandle install(const VmSpec& vm, PmId pm);

  std::vector<PmSpec> pms_;
  QueuingFfdOptions options_;
  OnOffParams params_;
  MapCalTable table_;
  std::vector<Slot> slots_;
  std::vector<std::size_t> free_slots_;
  std::vector<std::vector<std::size_t>> on_pm_;  ///< slot ids per PM
  std::vector<Resource> rb_sum_;  ///< per-PM cached sum of hosted Rb
  std::vector<Resource> re_max_;  ///< per-PM cached max hosted Re
  ShardedAdmitIndex index_;       ///< per-shard slack trees over the keys
  std::size_t route_seq_{0};      ///< round-robin arrival counter
  std::size_t live_count_{0};
};

}  // namespace burstq
