// Periodic re-consolidation: compute a fresh Algorithm-2 placement for
// the current fleet and express the difference from the running placement
// as an explicit migration plan.
//
// After hours of online churn (arrivals filling first-fit holes,
// departures stranding VMs on half-empty PMs) the live mapping drifts
// away from what Algorithm 2 would produce from scratch.  Operators
// periodically re-plan and execute the delta during a maintenance window;
// the number of moves is the cost of that window.

#pragma once

#include <vector>

#include "placement/placement.h"
#include "placement/queuing_ffd.h"

namespace burstq {

/// One live migration in a plan.
struct PlannedMove {
  VmId vm{};
  PmId from{};
  PmId to{};
};

struct MigrationPlan {
  std::vector<PlannedMove> moves;  ///< VMs whose PM differs
  std::size_t pms_before{0};
  std::size_t pms_after{0};

  [[nodiscard]] std::size_t move_count() const { return moves.size(); }
  /// PMs the plan empties out (candidates for power-off).
  [[nodiscard]] std::size_t pms_freed() const {
    return pms_before > pms_after ? pms_before - pms_after : 0;
  }
};

/// Diffs two placements over the same instance shape.  Both must assign
/// every VM (partial placements are rejected — a plan must be executable).
MigrationPlan plan_migrations(const Placement& current,
                              const Placement& target);

/// Executes a plan in place.  Validates each move against the current
/// assignment (from must match) and throws InvalidArgument otherwise,
/// leaving earlier moves applied — callers treat plans as all-or-review.
void apply_plan(Placement& placement, const MigrationPlan& plan);

struct ReplanResult {
  PlacementResult fresh;  ///< the from-scratch Algorithm 2 placement
  MigrationPlan plan;     ///< delta from the running placement
};

/// Runs Algorithm 2 from scratch on `inst` and diffs against `current`.
/// Throws InvalidArgument when the fresh placement cannot host every VM
/// (re-planning must never lose capacity that the current placement has).
ReplanResult replan(const ProblemInstance& inst, const Placement& current,
                    const QueuingFfdOptions& options = {});

}  // namespace burstq
