// Heterogeneity-exact consolidation — burstq's extension of Algorithm 2.
//
// Instead of rounding per-VM (p_on, p_off) to one uniform pair, the
// feasibility check recomputes the *exact* block count for the candidate
// host set from the Poisson-binomial law of its ON-count (queuing/hetero).
// Eq. (17) becomes
//
//   max(Re over T u {v}) * K_exact(T u {v}) + sum(Rb) <= C
//
// Each check costs O(k^2) (the Poisson-binomial DP), versus O(1) table
// lookups for the rounded scheme — the price of exactness that
// bench/ablation_hetero quantifies.

#pragma once

#include "placement/first_fit.h"
#include "placement/queuing_ffd.h"
#include "placement/spec.h"

namespace burstq {

struct HeteroFfdOptions {
  double rho{0.01};
  std::size_t max_vms_per_pm{16};
  std::size_t cluster_buckets{8};

  void validate() const;
};

/// Eq. (17) with the exact heterogeneous block count.
bool fits_with_exact_reservation(const ProblemInstance& inst,
                                 const Placement& placement, VmId vm,
                                 PmId pm, const HeteroFfdOptions& options);

/// QueuingFFD with exact per-PM reservation (same cluster/sort order as
/// Algorithm 2, no parameter rounding).
PlacementResult queuing_ffd_hetero(const ProblemInstance& inst,
                                   const HeteroFfdOptions& options = {});

/// Post-hoc validation mirroring placement_satisfies_reservation.
bool placement_satisfies_exact_reservation(const ProblemInstance& inst,
                                           const Placement& placement,
                                           const HeteroFfdOptions& options);

}  // namespace burstq
