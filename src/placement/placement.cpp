#include "placement/placement.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace burstq {

void Placement::init(std::size_t n_vms, std::size_t n_pms) {
  BURSTQ_REQUIRE(n_vms > 0, "placement needs at least one VM slot");
  BURSTQ_REQUIRE(n_pms > 0, "placement needs at least one PM slot");
  pm_of_.resize(n_vms);
  pos_in_pm_.resize(n_vms, 0);
  vms_on_.resize(n_pms);
  if (inst_ != nullptr) {
    rb_sum_.assign(n_pms, 0.0);
    re_max_.assign(n_pms, 0.0);
  }
}

Placement::Placement(std::size_t n_vms, std::size_t n_pms) {
  init(n_vms, n_pms);
}

Placement::Placement(const ProblemInstance& inst) : inst_(&inst) {
  init(inst.n_vms(), inst.n_pms());
}

void Placement::assign(VmId vm, PmId pm) {
  BURSTQ_REQUIRE(vm.value < pm_of_.size(), "VM index out of range");
  BURSTQ_REQUIRE(pm.value < vms_on_.size(), "PM index out of range");
  BURSTQ_REQUIRE(!pm_of_[vm.value].valid(), "VM is already assigned");
  pm_of_[vm.value] = pm;
  auto& list = vms_on_[pm.value];
  if (list.empty()) ++pms_used_;
  pos_in_pm_[vm.value] = list.size();
  list.push_back(vm.value);
  ++vms_assigned_;
  if (inst_ != nullptr) {
    const VmSpec& spec = inst_->vms[vm.value];
    rb_sum_[pm.value] += spec.rb;
    re_max_[pm.value] = std::max(re_max_[pm.value], spec.re);
  }
}

void Placement::unassign(VmId vm) {
  BURSTQ_REQUIRE(vm.value < pm_of_.size(), "VM index out of range");
  const PmId pm = pm_of_[vm.value];
  BURSTQ_REQUIRE(pm.valid(), "VM is not assigned");
  auto& list = vms_on_[pm.value];
  const std::size_t pos = pos_in_pm_[vm.value];
  BURSTQ_ASSERT(pos < list.size() && list[pos] == vm.value,
                "assignment lists out of sync");
  // Swap-remove: move the last member into the hole.
  const std::size_t moved = list.back();
  list[pos] = moved;
  pos_in_pm_[moved] = pos;
  list.pop_back();
  if (list.empty()) --pms_used_;
  pm_of_[vm.value] = PmId{};
  --vms_assigned_;
  if (inst_ != nullptr) {
    const VmSpec& spec = inst_->vms[vm.value];
    if (list.empty()) {
      // Reset exactly so an emptied PM accumulates no float residue.
      rb_sum_[pm.value] = 0.0;
      re_max_[pm.value] = 0.0;
    } else {
      rb_sum_[pm.value] -= spec.rb;
      if (spec.re >= re_max_[pm.value]) {
        Resource m = 0.0;
        for (std::size_t i : list) m = std::max(m, inst_->vms[i].re);
        re_max_[pm.value] = m;
      }
    }
  }
}

PmId Placement::pm_of(VmId vm) const {
  BURSTQ_REQUIRE(vm.value < pm_of_.size(), "VM index out of range");
  return pm_of_[vm.value];
}

const std::vector<std::size_t>& Placement::vms_on(PmId pm) const {
  BURSTQ_REQUIRE(pm.value < vms_on_.size(), "PM index out of range");
  return vms_on_[pm.value];
}

Resource Placement::rb_sum_on(PmId pm) const {
  BURSTQ_REQUIRE(inst_ != nullptr,
                 "rb_sum_on requires an instance-bound placement");
  BURSTQ_REQUIRE(pm.value < vms_on_.size(), "PM index out of range");
  return rb_sum_[pm.value];
}

Resource Placement::re_max_on(PmId pm) const {
  BURSTQ_REQUIRE(inst_ != nullptr,
                 "re_max_on requires an instance-bound placement");
  BURSTQ_REQUIRE(pm.value < vms_on_.size(), "PM index out of range");
  return re_max_[pm.value];
}

PlacementState Placement::export_state() const {
  PlacementState st;
  st.pm_of = pm_of_;
  st.vms_on = vms_on_;
  st.bound = inst_ != nullptr;
  st.rb_sum = rb_sum_;
  st.re_max = re_max_;
  return st;
}

void Placement::restore_state(const PlacementState& st) {
  BURSTQ_REQUIRE(st.pm_of.size() == pm_of_.size(),
                 "placement state VM count mismatch");
  BURSTQ_REQUIRE(st.vms_on.size() == vms_on_.size(),
                 "placement state PM count mismatch");
  pm_of_ = st.pm_of;
  vms_on_ = st.vms_on;
  pms_used_ = 0;
  vms_assigned_ = 0;
  for (std::size_t pm = 0; pm < vms_on_.size(); ++pm) {
    if (!vms_on_[pm].empty()) ++pms_used_;
    for (std::size_t pos = 0; pos < vms_on_[pm].size(); ++pos) {
      const std::size_t vm = vms_on_[pm][pos];
      BURSTQ_REQUIRE(vm < pm_of_.size() && pm_of_[vm].value == pm,
                     "placement state lists disagree with pm_of");
      pos_in_pm_[vm] = pos;
      ++vms_assigned_;
    }
  }
  if (inst_ != nullptr) {
    BURSTQ_REQUIRE(st.bound,
                   "bound placement restored from unbound state");
    rb_sum_ = st.rb_sum;
    re_max_ = st.re_max;
  }
}

Resource total_rb_on_walk(const ProblemInstance& inst,
                          const Placement& placement, PmId pm) {
  Resource sum = 0.0;
  for (std::size_t i : placement.vms_on(pm)) sum += inst.vms[i].rb;
  return sum;
}

Resource max_re_on_walk(const ProblemInstance& inst,
                        const Placement& placement, PmId pm) {
  Resource m = 0.0;
  for (std::size_t i : placement.vms_on(pm))
    m = std::max(m, inst.vms[i].re);
  return m;
}

Resource total_rb_on(const ProblemInstance& inst, const Placement& placement,
                     PmId pm) {
  if (placement.tracks_aggregates(inst)) return placement.rb_sum_on(pm);
  return total_rb_on_walk(inst, placement, pm);
}

Resource max_re_on(const ProblemInstance& inst, const Placement& placement,
                   PmId pm) {
  if (placement.tracks_aggregates(inst)) return placement.re_max_on(pm);
  return max_re_on_walk(inst, placement, pm);
}

bool aggregates_consistent(const ProblemInstance& inst,
                           const Placement& placement, double rel_tol) {
  if (!placement.tracks_aggregates(inst)) return true;
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    const PmId pm{j};
    if (placement.re_max_on(pm) != max_re_on_walk(inst, placement, pm))
      return false;
    const Resource cached = placement.rb_sum_on(pm);
    const Resource walked = total_rb_on_walk(inst, placement, pm);
    const Resource scale = std::max({std::abs(cached), std::abs(walked), 1.0});
    if (std::abs(cached - walked) > rel_tol * scale) return false;
  }
  return true;
}

Resource reserved_footprint(const ProblemInstance& inst,
                            const Placement& placement, PmId pm,
                            const MapCalTable& table) {
  const std::size_t k = placement.count_on(pm);
  if (k == 0) return 0.0;
  return max_re_on(inst, placement, pm) *
             static_cast<double>(table.blocks(k)) +
         total_rb_on(inst, placement, pm);
}

bool fits_with_reservation(const ProblemInstance& inst,
                           const Placement& placement, VmId vm, PmId pm,
                           const MapCalTable& table) {
  const std::size_t k_new = placement.count_on(pm) + 1;
  if (k_new > table.max_vms_per_pm()) return false;

  const VmSpec& v = inst.vms[vm.value];
  // Eq. (17): max(Re_i, max Re already placed) * mapping(|T|+1)
  //           + Rb_i + sum Rb already placed  <=  C_j
  const Resource block = std::max(v.re, max_re_on(inst, placement, pm));
  const Resource footprint = block * static_cast<double>(table.blocks(k_new)) +
                             v.rb + total_rb_on(inst, placement, pm);
  const Resource cap = inst.pms[pm.value].capacity;
  return footprint <= cap * (1.0 + kCapacityEpsilon);
}

Resource reserved_footprint_specs(std::span<const VmSpec> hosted,
                                  const MapCalTable& table) {
  if (hosted.empty()) return 0.0;
  Resource block = 0.0;
  Resource rb_sum = 0.0;
  for (const auto& v : hosted) {
    block = std::max(block, v.re);
    rb_sum += v.rb;
  }
  return block * static_cast<double>(table.blocks(hosted.size())) + rb_sum;
}

bool fits_with_reservation_specs(std::span<const VmSpec> hosted,
                                 const VmSpec& candidate, Resource capacity,
                                 const MapCalTable& table) {
  const std::size_t k_new = hosted.size() + 1;
  if (k_new > table.max_vms_per_pm()) return false;
  Resource block = candidate.re;
  Resource rb_sum = candidate.rb;
  for (const auto& v : hosted) {
    block = std::max(block, v.re);
    rb_sum += v.rb;
  }
  const Resource footprint =
      block * static_cast<double>(table.blocks(k_new)) + rb_sum;
  return footprint <= capacity * (1.0 + kCapacityEpsilon);
}

bool placement_satisfies_reservation(const ProblemInstance& inst,
                                     const Placement& placement,
                                     const MapCalTable& table) {
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    const PmId pm{j};
    const std::size_t k = placement.count_on(pm);
    if (k == 0) continue;
    if (k > table.max_vms_per_pm()) return false;
    const Resource cap = inst.pms[j].capacity;
    if (reserved_footprint(inst, placement, pm, table) >
        cap * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

bool placement_satisfies_initial_capacity(const ProblemInstance& inst,
                                          const Placement& placement) {
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    const PmId pm{j};
    if (placement.count_on(pm) == 0) continue;
    const Resource cap = inst.pms[j].capacity;
    if (total_rb_on(inst, placement, pm) > cap * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

}  // namespace burstq
