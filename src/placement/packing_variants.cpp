#include "placement/packing_variants.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "placement/cluster.h"
#include "placement/placement.h"

namespace burstq {

PlacementResult queuing_pack(const ProblemInstance& inst,
                             const MapCalTable& table,
                             const std::string& heuristic,
                             std::size_t cluster_buckets) {
  inst.validate();
  const auto order = queuing_ffd_order(inst.vms, cluster_buckets);
  const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
    return fits_with_reservation(inst, p, vm, pm, table);
  };
  const auto slack = [&](const Placement& p, VmId vm, PmId pm) {
    const VmSpec& v = inst.vms[vm.value];
    const std::size_t k_new = p.count_on(pm) + 1;
    const Resource block = std::max(v.re, max_re_on(inst, p, pm));
    const Resource footprint =
        block * static_cast<double>(table.blocks(k_new)) + v.rb +
        total_rb_on(inst, p, pm);
    return inst.pms[pm.value].capacity - footprint;
  };

  if (heuristic == "first") return first_fit_place(inst, order, fits);
  if (heuristic == "best") return best_fit_place(inst, order, fits, slack);
  if (heuristic == "worst")
    return worst_fit_place(inst, order, fits, slack);
  if (heuristic == "next") return next_fit_place(inst, order, fits);
  BURSTQ_REQUIRE(false, "unknown packing heuristic: " + heuristic);
  return first_fit_place(inst, order, fits);
}

}  // namespace burstq
