#include "placement/packing_variants.h"

#include <limits>
#include <string>

#include "common/error.h"
#include "placement/cluster.h"
#include "placement/placement.h"

namespace burstq {

PlacementResult next_fit_place(const ProblemInstance& inst,
                               std::span<const std::size_t> order,
                               const FitPredicate& fits) {
  inst.validate();
  BURSTQ_REQUIRE(order.size() == inst.n_vms(),
                 "visit order must cover every VM exactly once");
  PlacementResult result{Placement(inst.n_vms(), inst.n_pms()), {}};

  std::size_t open = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    bool placed = false;
    while (open < inst.n_pms()) {
      if (fits(result.placement, vm, PmId{open})) {
        result.placement.assign(vm, PmId{open});
        placed = true;
        break;
      }
      ++open;  // close this PM forever
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  return result;
}

PlacementResult worst_fit_place(const ProblemInstance& inst,
                                std::span<const std::size_t> order,
                                const FitPredicate& fits,
                                const SlackFunction& slack) {
  inst.validate();
  BURSTQ_REQUIRE(order.size() == inst.n_vms(),
                 "visit order must cover every VM exactly once");
  PlacementResult result{Placement(inst.n_vms(), inst.n_pms()), {}};

  for (std::size_t vi : order) {
    const VmId vm{vi};
    PmId best{};
    double best_slack = -std::numeric_limits<double>::infinity();
    bool best_used = false;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (!fits(result.placement, vm, pm)) continue;
      const bool used = result.placement.count_on(pm) > 0;
      const double s = slack(result.placement, vm, pm);
      // Prefer used PMs; among them (or among empty ones) take max slack.
      if ((used && !best_used) ||
          (used == best_used && s > best_slack)) {
        best = pm;
        best_slack = s;
        best_used = used;
      }
    }
    if (best.valid())
      result.placement.assign(vm, best);
    else
      result.unplaced.push_back(vm);
  }
  return result;
}

PlacementResult queuing_pack(const ProblemInstance& inst,
                             const MapCalTable& table,
                             const std::string& heuristic,
                             std::size_t cluster_buckets) {
  inst.validate();
  const auto order = queuing_ffd_order(inst.vms, cluster_buckets);
  const FitPredicate fits = [&](const Placement& p, VmId vm, PmId pm) {
    return fits_with_reservation(inst, p, vm, pm, table);
  };
  const SlackFunction slack = [&](const Placement& p, VmId vm, PmId pm) {
    const VmSpec& v = inst.vms[vm.value];
    const std::size_t k_new = p.count_on(pm) + 1;
    const Resource block = std::max(v.re, max_re_on(inst, p, pm));
    const Resource footprint =
        block * static_cast<double>(table.blocks(k_new)) + v.rb +
        total_rb_on(inst, p, pm);
    return inst.pms[pm.value].capacity - footprint;
  };

  if (heuristic == "first") return first_fit_place(inst, order, fits);
  if (heuristic == "best") return best_fit_place(inst, order, fits, slack);
  if (heuristic == "worst")
    return worst_fit_place(inst, order, fits, slack);
  if (heuristic == "next") return next_fit_place(inst, order, fits);
  BURSTQ_REQUIRE(false, "unknown packing heuristic: " + heuristic);
  return first_fit_place(inst, order, fits);
}

}  // namespace burstq
