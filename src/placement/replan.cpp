#include "placement/replan.h"

#include "common/error.h"
#include "obs/obs.h"

namespace burstq {

MigrationPlan plan_migrations(const Placement& current,
                              const Placement& target) {
  BURSTQ_SPAN("placement.plan_migrations");
  BURSTQ_REQUIRE(current.n_vms() == target.n_vms() &&
                     current.n_pms() == target.n_pms(),
                 "placements cover different fleets");
  BURSTQ_REQUIRE(current.vms_assigned() == current.n_vms(),
                 "current placement has unassigned VMs");
  BURSTQ_REQUIRE(target.vms_assigned() == target.n_vms(),
                 "target placement has unassigned VMs");

  MigrationPlan plan;
  plan.pms_before = current.pms_used();
  plan.pms_after = target.pms_used();
  for (std::size_t i = 0; i < current.n_vms(); ++i) {
    const VmId vm{i};
    const PmId from = current.pm_of(vm);
    const PmId to = target.pm_of(vm);
    if (from != to) plan.moves.push_back(PlannedMove{vm, from, to});
  }
  BURSTQ_COUNT("replan.moves", plan.moves.size());
  BURSTQ_EVENT(obs::EventLevel::kDecisions, "replan",
               {"moves", plan.moves.size()},
               {"pms_before", plan.pms_before},
               {"pms_after", plan.pms_after});
  return plan;
}

void apply_plan(Placement& placement, const MigrationPlan& plan) {
  // O(1) per move: Placement::unassign swap-removes via the stored
  // position instead of searching the source PM's list.
  BURSTQ_SPAN("placement.apply_plan");
  for (const auto& move : plan.moves) {
    BURSTQ_REQUIRE(placement.pm_of(move.vm) == move.from,
                   "plan is stale: VM is no longer on the expected PM");
    placement.unassign(move.vm);
    placement.assign(move.vm, move.to);
  }
  BURSTQ_COUNT("replan.applied_moves", plan.moves.size());
}

ReplanResult replan(const ProblemInstance& inst, const Placement& current,
                    const QueuingFfdOptions& options) {
  BURSTQ_SPAN("placement.replan");
  BURSTQ_COUNT("replan.calls", 1);
  inst.validate();
  BURSTQ_REQUIRE(current.n_vms() == inst.n_vms() &&
                     current.n_pms() == inst.n_pms(),
                 "current placement does not match the instance");

  ReplanResult result{queuing_ffd(inst, options).result, {}};
  BURSTQ_REQUIRE(result.fresh.complete(),
                 "re-planning could not place every VM; aborting rather "
                 "than shrinking the fleet");
  result.plan = plan_migrations(current, result.fresh.placement);
  return result;
}

}  // namespace burstq
