#include "placement/pm_slack_tree.h"

#include <algorithm>

#include "common/error.h"

namespace burstq {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

PmSlackTree::PmSlackTree(std::vector<double> keys) : n_(keys.size()) {
  BURSTQ_REQUIRE(n_ >= 1, "slack tree needs at least one key");
  while (base_ < n_) base_ <<= 1;
  // Padding leaves hold -inf so they never satisfy a threshold query.
  tree_.assign(2 * base_, kNegInf);
  std::copy(keys.begin(), keys.end(),
            tree_.begin() + static_cast<std::ptrdiff_t>(base_));
  for (std::size_t node = base_ - 1; node >= 1; --node)
    tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
}

void PmSlackTree::update(std::size_t i, double key) {
  BURSTQ_REQUIRE(i < n_, "slack tree index out of range");
  std::size_t node = base_ + i;
  tree_[node] = key;
  for (node >>= 1; node >= 1; node >>= 1)
    tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
}

double PmSlackTree::key(std::size_t i) const {
  BURSTQ_REQUIRE(i < n_, "slack tree index out of range");
  return tree_[base_ + i];
}

std::size_t PmSlackTree::find_first_ge(double threshold,
                                       std::size_t from) const {
  if (from >= n_) return npos;
  std::size_t node = base_ + from;
  if (tree_[node] < threshold) {
    // Walk up until a subtree strictly to the right may contain a hit,
    // then fall through to the descent below.
    for (;;) {
      while (node & 1u) {
        node >>= 1;
        if (node <= 1) return npos;  // `from` was on the rightmost spine
      }
      ++node;  // right sibling of a left child: next disjoint subtree
      if (tree_[node] >= threshold) break;
    }
    // Descend to the leftmost qualifying leaf of that subtree.
    while (node < base_) {
      node <<= 1;
      if (tree_[node] < threshold) ++node;
    }
  }
  const std::size_t idx = node - base_;
  return idx < n_ ? idx : npos;
}

}  // namespace burstq
