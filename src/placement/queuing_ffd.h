// Algorithm 2 (QueuingFFD): the paper's complete burstiness-aware
// consolidation scheme.
//
//   lines 1-6   precompute mapping(k) = MapCal(k) for k in [1, d]
//   lines 7-9   cluster by Re, sort clusters by Re desc, VMs by Rb desc
//   lines 10-12 first-fit each VM under the reservation constraint Eq. (17)
//
// The paper assumes uniform (p_on, p_off) across VMs; Section IV-E says
// heterogeneous values are "rounded to uniform values".  RoundingPolicy
// selects how: kMean averages (the natural reading), kConservative takes
// the burstiest combination (max p_on, min p_off) so the reservation can
// only be an over-estimate.

#pragma once

#include <cstddef>

#include "placement/first_fit.h"
#include "placement/placement.h"
#include "placement/sharded.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq {

enum class RoundingPolicy { kMean, kConservative };

/// Which first-fit driver Algorithm 2 uses.  kIncremental descends a
/// per-PM slack tree (O(log m) per VM, see incremental.h) and produces
/// placements bit-identical to kNaive, the straight O(m)-scan reference
/// driver kept for verification and benchmarking.  kSharded partitions
/// the PM fleet and places in parallel (sharded.h); with one shard it is
/// bit-identical to kIncremental, and its results never depend on the
/// thread count.
enum class PlacementEngine { kIncremental, kNaive, kSharded };

/// Rounds per-VM switch probabilities to one uniform pair (Section IV-E).
OnOffParams round_uniform_params(const std::vector<VmSpec>& vms,
                                 RoundingPolicy policy = RoundingPolicy::kMean);

struct QueuingFfdOptions {
  double rho{0.01};                ///< CVR budget per PM
  std::size_t max_vms_per_pm{16};  ///< d: per-PM VM cap (paper uses 16)
  std::size_t cluster_buckets{8};  ///< Re-similarity buckets (line 7)
  StationaryMethod method{StationaryMethod::kGaussian};
  RoundingPolicy rounding{RoundingPolicy::kMean};
  bool use_best_fit{false};        ///< ablation: best-fit instead of first-fit
  PlacementEngine engine{PlacementEngine::kIncremental};
  ShardedOptions sharded{};        ///< used when engine == kSharded

  void validate() const;
};

/// Everything Algorithm 2 produces, plus the mapping table for reuse by
/// the simulator and online consolidator.
struct QueuingFfdOutcome {
  PlacementResult result;
  MapCalTable table;
  OnOffParams rounded_params;
};

/// Runs Algorithm 2 on `inst`.  VMs that fit on no PM end up in
/// result.unplaced (the caller decides whether that is an error).
QueuingFfdOutcome queuing_ffd(const ProblemInstance& inst,
                              const QueuingFfdOptions& options = {});

/// Variant that reuses an existing mapping table (so sweeps over instances
/// with identical (d, p_on, p_off, rho) skip the O(d^4) precomputation).
PlacementResult queuing_ffd_with_table(const ProblemInstance& inst,
                                       const MapCalTable& table,
                                       const QueuingFfdOptions& options = {});

}  // namespace burstq
