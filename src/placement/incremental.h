// Incremental placement engine for the Eq. (17) reservation predicate.
//
// The generic first-fit driver scans PMs 0..m-1 per VM: O(n·m) checks
// even with O(1) per check.  This engine keeps a PmSlackTree over a
// conservative per-PM admissibility key
//
//   key(j) = C_j(1+eps) - re_max_j * mapping(k_j + 1) - rb_sum_j  (+margin)
//
// which upper-bounds the largest Rb the PM could still admit: Eq. (17)
// feasibility of VM i on PM j implies Rb_i <= key(j), because the true
// reserved block max(Re_i, re_max_j) is at least re_max_j.  Each VM then
// descends the tree to the lowest-indexed PM with key >= Rb_i (O(log m))
// and confirms with the exact O(1) check; a false positive (possible only
// when Re_i > re_max_j or at a float boundary inside the margin) resumes
// the descent after that PM.  Because the filter is conservative and the
// confirmation is the exact fits_with_reservation, the resulting
// placement is bit-identical to the naive linear-scan driver.
//
// Observability: `placement.fit_checks` counts exact confirmations (the
// Eq. 17 evaluations a replay must reproduce), `placement.tree_descents`
// counts tree queries; naive-scan skips no longer appear in fit_checks.

#pragma once

#include <cstddef>
#include <span>

#include "placement/first_fit.h"
#include "placement/placement.h"
#include "queuing/mapcal.h"

namespace burstq {

/// Safety margin added to the conservative filter key so float rounding
/// in the key arithmetic can never reject a PM the exact check would
/// accept (it is ~1e2 times larger than the worst-case rounding error and
/// only admits extra exact confirmations, never wrong placements).
inline constexpr double kSlackFilterMargin = 1e-9;

/// Conservative admissibility key of a PM with the given capacity and
/// load aggregates: an upper bound on the largest Rb the PM could still
/// admit under Eq. (17).  -inf once the per-PM VM cap is reached.  Shared
/// by the incremental engine, the sharded engine (sharded.h), and the
/// online/controller admit indices — all of them must compute the exact
/// same key for their slack trees to agree bit-for-bit.
double conservative_admit_key(double capacity, std::size_t vm_count,
                              double rb_sum, double re_max,
                              const MapCalTable& table);

/// Convenience overload reading the aggregates off an instance-bound
/// placement.
double conservative_admit_key(const ProblemInstance& inst,
                              const Placement& placement, PmId pm,
                              const MapCalTable& table);

/// Per-run statistics of the incremental engine (also exported as obs
/// counters; the struct serves callers compiled with BURSTQ_NO_OBS).
struct IncrementalStats {
  std::size_t tree_descents{0};  ///< slack-tree queries issued
  std::size_t exact_checks{0};   ///< exact Eq. (17) confirmations run
};

/// First-fit under Eq. (17), bit-identical to
/// first_fit_place(inst, order, fits_with_reservation-lambda) but with an
/// O(log m) tree descent per placement instead of an O(m) scan.
PlacementResult first_fit_place_reservation(const ProblemInstance& inst,
                                            std::span<const std::size_t> order,
                                            const MapCalTable& table,
                                            IncrementalStats* stats = nullptr);

}  // namespace burstq
