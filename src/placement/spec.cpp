#include "placement/spec.h"

#include <algorithm>

#include "common/error.h"

namespace burstq {

void VmSpec::validate() const {
  onoff.validate();
  BURSTQ_REQUIRE(rb >= 0.0, "VM normal demand Rb must be non-negative");
  BURSTQ_REQUIRE(re >= 0.0, "VM spike size Re must be non-negative");
}

void PmSpec::validate() const {
  BURSTQ_REQUIRE(capacity > 0.0, "PM capacity must be positive");
}

void ProblemInstance::validate() const {
  BURSTQ_REQUIRE(!vms.empty(), "instance has no VMs");
  BURSTQ_REQUIRE(!pms.empty(), "instance has no PMs");
  for (const auto& v : vms) v.validate();
  for (const auto& p : pms) p.validate();
}

Resource ProblemInstance::max_re() const {
  Resource m = 0.0;
  for (const auto& v : vms) m = std::max(m, v.re);
  return m;
}

ProblemInstance random_instance(std::size_t n_vms, std::size_t n_pms,
                                const OnOffParams& params,
                                const InstanceRanges& ranges, Rng& rng) {
  BURSTQ_REQUIRE(n_vms > 0 && n_pms > 0, "instance must be non-empty");
  params.validate();
  BURSTQ_REQUIRE(ranges.rb_lo <= ranges.rb_hi && ranges.rb_lo >= 0.0,
                 "invalid Rb range");
  BURSTQ_REQUIRE(ranges.re_lo <= ranges.re_hi && ranges.re_lo >= 0.0,
                 "invalid Re range");
  BURSTQ_REQUIRE(
      ranges.capacity_lo <= ranges.capacity_hi && ranges.capacity_lo > 0.0,
      "invalid capacity range");

  ProblemInstance inst;
  inst.vms.reserve(n_vms);
  for (std::size_t i = 0; i < n_vms; ++i) {
    VmSpec v;
    v.onoff = params;
    v.rb = rng.uniform(ranges.rb_lo, ranges.rb_hi);
    v.re = rng.uniform(ranges.re_lo, ranges.re_hi);
    inst.vms.push_back(v);
  }
  inst.pms.reserve(n_pms);
  for (std::size_t j = 0; j < n_pms; ++j)
    inst.pms.push_back(
        PmSpec{rng.uniform(ranges.capacity_lo, ranges.capacity_hi)});
  return inst;
}

}  // namespace burstq
