#include "placement/multidim.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "placement/placement.h"

namespace burstq {

void MultiVmSpec::validate() const {
  onoff.validate();
  BURSTQ_REQUIRE(dims >= 1 && dims <= kMaxDims,
                 "VM dimension count out of range");
  for (std::size_t d = 0; d < dims; ++d) {
    BURSTQ_REQUIRE(rb[d] >= 0.0, "multi-dim Rb must be non-negative");
    BURSTQ_REQUIRE(re[d] >= 0.0, "multi-dim Re must be non-negative");
  }
}

void MultiPmSpec::validate() const {
  BURSTQ_REQUIRE(dims >= 1 && dims <= kMaxDims,
                 "PM dimension count out of range");
  for (std::size_t d = 0; d < dims; ++d)
    BURSTQ_REQUIRE(capacity[d] > 0.0, "multi-dim capacity must be positive");
}

void MultiProblemInstance::validate() const {
  BURSTQ_REQUIRE(!vms.empty() && !pms.empty(), "instance must be non-empty");
  const std::size_t d = vms.front().dims;
  for (const auto& v : vms) {
    v.validate();
    BURSTQ_REQUIRE(v.dims == d, "all VMs must share a dimension count");
  }
  for (const auto& p : pms) {
    p.validate();
    BURSTQ_REQUIRE(p.dims == d, "PM dimension count must match the VMs");
  }
}

std::size_t MultiProblemInstance::dims() const {
  BURSTQ_REQUIRE(!vms.empty(), "dims() of an empty instance");
  return vms.front().dims;
}

bool multidim_fits(const std::vector<const MultiVmSpec*>& hosted,
                   const MultiVmSpec& candidate, const MultiPmSpec& pm,
                   const MapCalTable& table) {
  const std::size_t k_new = hosted.size() + 1;
  if (k_new > table.max_vms_per_pm()) return false;
  const auto blocks = static_cast<double>(table.blocks(k_new));

  for (std::size_t d = 0; d < candidate.dims; ++d) {
    Resource block = candidate.re[d];
    Resource rb_sum = candidate.rb[d];
    for (const MultiVmSpec* v : hosted) {
      block = std::max(block, v->re[d]);
      rb_sum += v->rb[d];
    }
    if (block * blocks + rb_sum >
        pm.capacity[d] * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

MultiPlacementResult multidim_queuing_first_fit(
    const MultiProblemInstance& inst, const QueuingFfdOptions& options) {
  inst.validate();
  options.validate();

  // One uniform (p_on, p_off) pair, as in the 1-D algorithm.
  std::vector<VmSpec> flat;
  flat.reserve(inst.vms.size());
  for (const auto& v : inst.vms)
    flat.push_back(VmSpec{v.onoff, 0.0, 0.0});
  const OnOffParams params = round_uniform_params(flat, options.rounding);
  const MapCalTable table(options.max_vms_per_pm, params, options.rho,
                          options.method);

  // FFD order by the dominant (largest) Rb component.
  std::vector<std::size_t> order(inst.vms.size());
  std::iota(order.begin(), order.end(), 0);
  auto dominant = [&](std::size_t i) {
    const auto& v = inst.vms[i];
    return *std::max_element(v.rb.begin(), v.rb.begin() +
                             static_cast<std::ptrdiff_t>(v.dims));
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ka = dominant(a);
    const double kb = dominant(b);
    if (ka != kb) return ka > kb;
    return a < b;
  });

  MultiPlacementResult result;
  result.pm_of.assign(inst.vms.size(), MultiPlacementResult::npos);
  std::vector<std::vector<const MultiVmSpec*>> hosted(inst.pms.size());

  for (std::size_t vi : order) {
    bool placed = false;
    for (std::size_t j = 0; j < inst.pms.size(); ++j) {
      if (multidim_fits(hosted[j], inst.vms[vi], inst.pms[j], table)) {
        hosted[j].push_back(&inst.vms[vi]);
        result.pm_of[vi] = j;
        placed = true;
        break;
      }
    }
    if (!placed) result.unplaced.push_back(vi);
  }
  for (const auto& h : hosted)
    if (!h.empty()) ++result.pms_used;
  return result;
}

ProblemInstance project_correlated(const MultiProblemInstance& inst,
                                   const std::vector<double>& weights) {
  inst.validate();
  BURSTQ_REQUIRE(weights.size() == inst.dims(),
                 "one weight per dimension required");
  double wsum = 0.0;
  for (double w : weights) {
    BURSTQ_REQUIRE(w >= 0.0, "projection weights must be non-negative");
    wsum += w;
  }
  BURSTQ_REQUIRE(wsum > 0.0, "projection weights must not all be zero");

  ProblemInstance out;
  out.vms.reserve(inst.vms.size());
  for (const auto& v : inst.vms) {
    VmSpec s;
    s.onoff = v.onoff;
    for (std::size_t d = 0; d < v.dims; ++d) {
      s.rb += weights[d] * v.rb[d];
      s.re += weights[d] * v.re[d];
    }
    out.vms.push_back(s);
  }
  out.pms.reserve(inst.pms.size());
  for (const auto& p : inst.pms) {
    Resource c = 0.0;
    for (std::size_t d = 0; d < p.dims; ++d) c += weights[d] * p.capacity[d];
    out.pms.push_back(PmSpec{c});
  }
  return out;
}

}  // namespace burstq
