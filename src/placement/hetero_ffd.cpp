#include "placement/hetero_ffd.h"

#include <algorithm>

#include "common/error.h"
#include "placement/cluster.h"
#include "placement/placement.h"
#include "queuing/hetero.h"

namespace burstq {

void HeteroFfdOptions::validate() const {
  BURSTQ_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  BURSTQ_REQUIRE(cluster_buckets >= 1, "need at least one cluster bucket");
}

namespace {

/// Footprint of a host set given its exact block count.
double exact_footprint(const ProblemInstance& inst,
                       const std::vector<std::size_t>& members, double rho) {
  std::vector<OnOffParams> params;
  params.reserve(members.size());
  Resource block = 0.0;
  Resource rb_sum = 0.0;
  for (std::size_t i : members) {
    params.push_back(inst.vms[i].onoff);
    block = std::max(block, inst.vms[i].re);
    rb_sum += inst.vms[i].rb;
  }
  const std::size_t blocks = map_cal_hetero_blocks(params, rho);
  return block * static_cast<double>(blocks) + rb_sum;
}

}  // namespace

bool fits_with_exact_reservation(const ProblemInstance& inst,
                                 const Placement& placement, VmId vm,
                                 PmId pm, const HeteroFfdOptions& options) {
  const std::size_t k_new = placement.count_on(pm) + 1;
  if (k_new > options.max_vms_per_pm) return false;
  std::vector<std::size_t> members = placement.vms_on(pm);
  members.push_back(vm.value);
  return exact_footprint(inst, members, options.rho) <=
         inst.pms[pm.value].capacity * (1.0 + kCapacityEpsilon);
}

PlacementResult queuing_ffd_hetero(const ProblemInstance& inst,
                                   const HeteroFfdOptions& options) {
  inst.validate();
  options.validate();
  const auto order = queuing_ffd_order(inst.vms, options.cluster_buckets);
  const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
    return fits_with_exact_reservation(inst, p, vm, pm, options);
  };
  return first_fit_place(inst, order, fits);
}

bool placement_satisfies_exact_reservation(const ProblemInstance& inst,
                                           const Placement& placement,
                                           const HeteroFfdOptions& options) {
  for (std::size_t j = 0; j < placement.n_pms(); ++j) {
    const PmId pm{j};
    const auto& members = placement.vms_on(pm);
    if (members.empty()) continue;
    if (members.size() > options.max_vms_per_pm) return false;
    if (exact_footprint(inst, members, options.rho) >
        inst.pms[j].capacity * (1.0 + kCapacityEpsilon))
      return false;
  }
  return true;
}

}  // namespace burstq
