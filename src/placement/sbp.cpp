#include "placement/sbp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "placement/placement.h"
#include "prob/normal.h"

namespace burstq {

double sbp_mean_demand(const VmSpec& v) {
  const double q = v.onoff.stationary_on_probability();
  return v.rb + q * v.re;
}

double sbp_demand_variance(const VmSpec& v) {
  const double q = v.onoff.stationary_on_probability();
  return q * (1.0 - q) * v.re * v.re;
}

PlacementResult sbp_normal(const ProblemInstance& inst, double epsilon,
                           std::size_t max_vms_per_pm) {
  inst.validate();
  BURSTQ_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
                 "sbp_normal requires epsilon in (0, 1)");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");

  const double z = normal_quantile(1.0 - epsilon);

  // FFD order by mean demand.
  std::vector<std::size_t> order(inst.n_vms());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ma = sbp_mean_demand(inst.vms[a]);
    const double mb = sbp_mean_demand(inst.vms[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  });

  const auto fits = [&, z, max_vms_per_pm](const Placement& p, VmId vm,
                                           PmId pm) {
    if (p.count_on(pm) + 1 > max_vms_per_pm) return false;
    double mean = sbp_mean_demand(inst.vms[vm.value]);
    double var = sbp_demand_variance(inst.vms[vm.value]);
    // A VM's demand never drops below Rb, so the aggregate never drops
    // below sum(Rb); clamp the effective size there (this mirrors the
    // paper's remark that its model "sets a lower limit of provisioning
    // at the normal workload level").
    double rb_sum = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) {
      mean += sbp_mean_demand(inst.vms[i]);
      var += sbp_demand_variance(inst.vms[i]);
      rb_sum += inst.vms[i].rb;
    }
    const double effective = std::max(mean + z * std::sqrt(var), rb_sum);
    return effective <=
           inst.pms[pm.value].capacity * (1.0 + kCapacityEpsilon);
  };
  return first_fit_place(inst, order, fits);
}

}  // namespace burstq
