#include "placement/baselines.h"

#include "common/error.h"
#include "placement/cluster.h"
#include "placement/placement.h"

namespace burstq {

namespace {

/// First-fit under "aggregate key(vm) <= budget-fraction * C" with a VM cap.
PlacementResult ffd_by_key(const ProblemInstance& inst,
                           std::span<const std::size_t> order,
                           double (*key)(const VmSpec&),
                           double capacity_fraction,
                           std::size_t max_vms_per_pm) {
  const auto fits = [&, key, capacity_fraction, max_vms_per_pm](
                        const Placement& placement, VmId vm, PmId pm) {
    if (placement.count_on(pm) + 1 > max_vms_per_pm) return false;
    Resource load = key(inst.vms[vm.value]);
    for (std::size_t i : placement.vms_on(pm)) load += key(inst.vms[i]);
    const Resource budget = inst.pms[pm.value].capacity * capacity_fraction;
    return load <= budget * (1.0 + kCapacityEpsilon);
  };
  return first_fit_place(inst, order, fits);
}

double key_peak(const VmSpec& v) { return v.rp(); }
double key_normal(const VmSpec& v) { return v.rb; }

}  // namespace

PlacementResult ffd_by_peak(const ProblemInstance& inst,
                            std::size_t max_vms_per_pm) {
  inst.validate();
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  return ffd_by_key(inst, order_by_peak_desc(inst.vms), key_peak, 1.0,
                    max_vms_per_pm);
}

PlacementResult ffd_by_normal(const ProblemInstance& inst,
                              std::size_t max_vms_per_pm) {
  inst.validate();
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  return ffd_by_key(inst, order_by_normal_desc(inst.vms), key_normal, 1.0,
                    max_vms_per_pm);
}

PlacementResult ffd_reserved(const ProblemInstance& inst, double delta,
                             std::size_t max_vms_per_pm) {
  inst.validate();
  BURSTQ_REQUIRE(delta >= 0.0 && delta < 1.0, "delta must lie in [0, 1)");
  BURSTQ_REQUIRE(max_vms_per_pm >= 1, "d must be at least 1");
  return ffd_by_key(inst, order_by_normal_desc(inst.vms), key_normal,
                    1.0 - delta, max_vms_per_pm);
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kQueue:
      return "QUEUE";
    case Strategy::kPeak:
      return "RP";
    case Strategy::kNormal:
      return "RB";
    case Strategy::kReserved:
      return "RB-EX";
    case Strategy::kSbp:
      return "SBP";
    case Strategy::kHetero:
      return "HETERO";
    case Strategy::kQuantile:
      return "QUANTILE";
  }
  return "?";
}

std::vector<Strategy> all_strategies() {
  return {Strategy::kQueue,    Strategy::kPeak,   Strategy::kNormal,
          Strategy::kReserved, Strategy::kSbp,    Strategy::kHetero,
          Strategy::kQuantile};
}

}  // namespace burstq
