// Alternative packing heuristics under the reservation constraint.
//
// Algorithm 2 uses First Fit (Decreasing, via the cluster/sort order).
// Bin-packing folklore offers Next Fit (cheaper, worse) and Worst Fit
// (spreads load, best for balancing).  Implementing them under the same
// Eq. 17 predicate isolates the heuristic choice — bench/ablation_packing
// measures what FFD buys over the alternatives and what Best Fit adds.

#pragma once

#include <span>
#include <string>

#include "placement/first_fit.h"
#include "placement/placement.h"

namespace burstq {

/// Next-fit: keep one open PM; when the next VM does not fit, move on to
/// the following PM and never look back.  O(n) placements.
PlacementResult next_fit_place(const ProblemInstance& inst,
                               std::span<const std::size_t> order,
                               const FitPredicate& fits);

/// Worst-fit: among feasible PMs pick the one with the *largest* slack
/// (the opposite of best-fit), preferring already-used PMs over opening
/// a new one only through the slack value itself.
PlacementResult worst_fit_place(const ProblemInstance& inst,
                                std::span<const std::size_t> order,
                                const FitPredicate& fits,
                                const SlackFunction& slack);

/// Convenience: the four packing heuristics under Eq. 17 with the
/// Algorithm-2 visit order.  `heuristic` is one of "first", "best",
/// "worst", "next"; throws InvalidArgument otherwise.
PlacementResult queuing_pack(const ProblemInstance& inst,
                             const MapCalTable& table,
                             const std::string& heuristic,
                             std::size_t cluster_buckets = 8);

}  // namespace burstq
