// Alternative packing heuristics under the reservation constraint.
//
// Algorithm 2 uses First Fit (Decreasing, via the cluster/sort order).
// Bin-packing folklore offers Next Fit (cheaper, worse) and Worst Fit
// (spreads load, best for balancing).  Implementing them under the same
// Eq. 17 predicate isolates the heuristic choice — bench/ablation_packing
// measures what FFD buys over the alternatives and what Best Fit adds.
//
// Like the first-fit/best-fit drivers these are templates over the
// predicate so the feasibility check inlines into the scan loop.

#pragma once

#include <limits>
#include <span>
#include <string>

#include "placement/first_fit.h"
#include "placement/placement.h"

namespace burstq {

/// Next-fit: keep one open PM; when the next VM does not fit, move on to
/// the following PM and never look back.  O(n) placements.
template <typename Fits>
PlacementResult next_fit_place(const ProblemInstance& inst,
                               std::span<const std::size_t> order,
                               const Fits& fits) {
  detail::validate_driver_inputs(inst, order);
  PlacementResult result{Placement(inst), {}};

  std::size_t open = 0;
  for (std::size_t vi : order) {
    const VmId vm{vi};
    bool placed = false;
    while (open < inst.n_pms()) {
      if (fits(result.placement, vm, PmId{open})) {
        result.placement.assign(vm, PmId{open});
        placed = true;
        break;
      }
      ++open;  // close this PM forever
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  return result;
}

/// Worst-fit: among feasible PMs pick the one with the *largest* slack
/// (the opposite of best-fit), preferring already-used PMs over opening
/// a new one only through the slack value itself.
template <typename Fits, typename Slack>
PlacementResult worst_fit_place(const ProblemInstance& inst,
                                std::span<const std::size_t> order,
                                const Fits& fits, const Slack& slack) {
  detail::validate_driver_inputs(inst, order);
  PlacementResult result{Placement(inst), {}};

  for (std::size_t vi : order) {
    const VmId vm{vi};
    PmId best{};
    double best_slack = -std::numeric_limits<double>::infinity();
    bool best_used = false;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (!fits(result.placement, vm, pm)) continue;
      const bool used = result.placement.count_on(pm) > 0;
      const double s = slack(result.placement, vm, pm);
      // Prefer used PMs; among them (or among empty ones) take max slack.
      if ((used && !best_used) ||
          (used == best_used && s > best_slack)) {
        best = pm;
        best_slack = s;
        best_used = used;
      }
    }
    if (best.valid())
      result.placement.assign(vm, best);
    else
      result.unplaced.push_back(vm);
  }
  return result;
}

/// Convenience: the four packing heuristics under Eq. 17 with the
/// Algorithm-2 visit order.  `heuristic` is one of "first", "best",
/// "worst", "next"; throws InvalidArgument otherwise.
PlacementResult queuing_pack(const ProblemInstance& inst,
                             const MapCalTable& table,
                             const std::string& heuristic,
                             std::size_t cluster_buckets = 8);

}  // namespace burstq
