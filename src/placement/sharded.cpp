#include "placement/sharded.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/obs.h"
#include "placement/incremental.h"

namespace burstq {

namespace {

/// Auto-sizing targets roughly this many PMs per shard so small fleets
/// stay single-shard (identical to the incremental engine) and large
/// fleets expose enough parallelism without shrinking shards into
/// spill-heavy slivers.
constexpr std::size_t kAutoPmsPerShard = 256;
constexpr std::size_t kMaxAutoShards = 64;

constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

}  // namespace

void ShardedOptions::validate() const {
  // Every value is meaningful: shards 0 = auto, threads 0 = default pool
  // size, decision_budget 0 = unlimited.  Nothing to reject.
}

std::size_t resolve_shard_count(std::size_t n_pms, std::size_t requested) {
  BURSTQ_REQUIRE(n_pms >= 1, "shard count needs at least one PM");
  if (requested > 0) return std::min(requested, n_pms);
  const std::size_t auto_shards = n_pms / kAutoPmsPerShard;
  return std::clamp<std::size_t>(auto_shards, 1, kMaxAutoShards);
}

ShardedAdmitIndex::ShardedAdmitIndex(std::size_t n_pms, std::size_t shards,
                                     double initial_key) {
  reset(n_pms, shards, initial_key);
}

void ShardedAdmitIndex::reset(std::size_t n_pms, std::size_t shards,
                              double initial_key) {
  const std::size_t s = resolve_shard_count(n_pms, shards);
  n_pms_ = n_pms;
  offsets_.clear();
  trees_.clear();
  offsets_.reserve(s);
  trees_.reserve(s);
  // Contiguous ranges whose sizes differ by at most one: the first
  // (n_pms % s) shards take the extra PM.
  const std::size_t base = n_pms / s;
  const std::size_t extra = n_pms % s;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    offsets_.push_back(offset);
    trees_.emplace_back(std::vector<double>(size, initial_key));
    offset += size;
  }
  BURSTQ_ASSERT(offset == n_pms, "shard ranges must tile the PM fleet");
}

std::size_t ShardedAdmitIndex::shard_of(std::size_t pm) const {
  BURSTQ_REQUIRE(pm < n_pms_, "PM index out of range");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), pm);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

std::size_t ShardedAdmitIndex::shard_begin(std::size_t shard) const {
  BURSTQ_REQUIRE(shard < offsets_.size(), "shard index out of range");
  return offsets_[shard];
}

std::size_t ShardedAdmitIndex::shard_end(std::size_t shard) const {
  BURSTQ_REQUIRE(shard < offsets_.size(), "shard index out of range");
  return offsets_[shard] + trees_[shard].size();
}

void ShardedAdmitIndex::set_key(std::size_t pm, double key) {
  const std::size_t s = shard_of(pm);
  trees_[s].update(pm - offsets_[s], key);
}

double ShardedAdmitIndex::key(std::size_t pm) const {
  const std::size_t s = shard_of(pm);
  return trees_[s].key(pm - offsets_[s]);
}

std::size_t ShardedAdmitIndex::find_in_shard(std::size_t shard, double need,
                                             std::size_t from) const {
  BURSTQ_REQUIRE(shard < trees_.size(), "shard index out of range");
  const std::size_t offset = offsets_[shard];
  const std::size_t local_from = from > offset ? from - offset : 0;
  if (local_from >= trees_[shard].size()) return npos;
  const std::size_t j = trees_[shard].find_first_ge(need, local_from);
  return j == PmSlackTree::npos ? npos : offset + j;
}

ShardedAdmitIndex::RouteOutcome ShardedAdmitIndex::route(
    double need, std::size_t home,
    const std::function<bool(std::size_t)>& exact, std::size_t budget) const {
  BURSTQ_REQUIRE(home < shard_count(), "home shard out of range");
  RouteOutcome out;
  const std::size_t s_count = shard_count();
  for (std::size_t i = 0; i <= s_count; ++i) {
    // Visit order: home, then 0..S-1 in fixed order skipping home.
    const std::size_t s = i == 0 ? home : i - 1;
    if (i > 0 && s == home) continue;
    std::size_t from = shard_begin(s);
    for (;;) {
      ++out.tree_descents;
      const std::size_t j = find_in_shard(s, need, from);
      if (j == npos) break;
      if (budget != 0 && out.exact_checks == budget) {
        out.budget_exhausted = true;
        return out;
      }
      ++out.exact_checks;
      if (exact(j)) {
        out.pm = j;
        return out;
      }
      from = j + 1;  // conservative-filter false positive: keep scanning
    }
  }
  return out;
}

PlacementResult sharded_place_reservation(const ProblemInstance& inst,
                                          std::span<const std::size_t> order,
                                          const MapCalTable& table,
                                          const ShardedOptions& options,
                                          ShardedStats* stats) {
  BURSTQ_SPAN("placement.sharded");
  detail::validate_driver_inputs(inst, order);
  options.validate();

  const std::size_t m = inst.n_pms();
  const std::size_t n_ranks = order.size();
  const std::size_t shards = resolve_shard_count(m, options.shards);
  const std::size_t requested_threads =
      options.threads == 0 ? default_thread_count() : options.threads;
  const std::size_t workers = std::min(requested_threads, shards);

  // Per-PM aggregates mirroring an instance-bound Placement's caches.
  // During phase 1 each entry is written only by the shard owning the PM,
  // so the shard tasks share no mutable state.
  std::vector<std::size_t> vm_count(m, 0);
  std::vector<double> rb_sum(m, 0.0);
  std::vector<double> re_max(m, 0.0);

  ShardedAdmitIndex index(m, shards);
  for (std::size_t j = 0; j < m; ++j)
    index.set_key(j, conservative_admit_key(inst.pms[j].capacity, 0, 0.0, 0.0,
                                            table));

  // Exact Eq. (17) over the raw aggregates; bit-identical to
  // fits_with_reservation on a bound placement with the same load.
  const auto exact_fits = [&](std::size_t vi, std::size_t j) {
    const VmSpec& v = inst.vms[vi];
    const std::size_t k_new = vm_count[j] + 1;
    if (k_new > table.max_vms_per_pm()) return false;
    const double block = std::max(v.re, re_max[j]);
    const double footprint =
        block * static_cast<double>(table.blocks(k_new)) + v.rb + rb_sum[j];
    return footprint <= inst.pms[j].capacity * (1.0 + kCapacityEpsilon);
  };
  const auto commit = [&](std::size_t vi, std::size_t j) {
    const VmSpec& v = inst.vms[vi];
    vm_count[j] += 1;
    rb_sum[j] += v.rb;
    re_max[j] = std::max(re_max[j], v.re);
    index.set_key(j, conservative_admit_key(inst.pms[j].capacity, vm_count[j],
                                            rb_sum[j], re_max[j], table));
  };

  // chosen[r] = global PM of the VM at rank r, or kUnplaced.  Phase 1
  // writes rank r only from shard r % shards; phase 2 is sequential.
  std::vector<std::size_t> chosen(n_ranks, kUnplaced);

  struct ShardCounters {
    std::size_t descents{0};
    std::size_t checks{0};
    std::size_t placed{0};
    std::size_t budget_exhausted{0};
  };
  std::vector<ShardCounters> counters(shards);
  std::vector<std::vector<std::size_t>> spill_ranks(shards);
  std::atomic<std::size_t> steals{0};

  // Phase 1: each shard first-fits its home VMs over its own PMs.
  parallel_for_workers(
      shards,
      [&](std::size_t s, std::size_t w) {
        if (w != s % workers) steals.fetch_add(1, std::memory_order_relaxed);
        ShardCounters& c = counters[s];
        for (std::size_t r = s; r < n_ranks; r += shards) {
          const std::size_t vi = order[r];
          const double need = inst.vms[vi].rb;
          std::size_t from = index.shard_begin(s);
          std::size_t decision_checks = 0;
          bool placed = false;
          for (;;) {
            ++c.descents;
            const std::size_t j = index.find_in_shard(s, need, from);
            if (j == ShardedAdmitIndex::npos) break;
            if (options.decision_budget != 0 &&
                decision_checks == options.decision_budget) {
              ++c.budget_exhausted;
              break;
            }
            ++decision_checks;
            ++c.checks;
            if (exact_fits(vi, j)) {
              commit(vi, j);
              chosen[r] = j;
              placed = true;
              ++c.placed;
              break;
            }
            from = j + 1;
          }
          if (!placed) spill_ranks[s].push_back(r);
        }
      },
      workers);

  ShardedStats st;
  st.shards = shards;
  st.threads = workers;
  st.steals = steals.load();
  for (const ShardCounters& c : counters) {
    st.tree_descents += c.descents;
    st.exact_checks += c.checks;
    st.local_placed += c.placed;
    st.budget_exhausted += c.budget_exhausted;
  }

  // Phase 2: reconcile spills sequentially in global rank order against
  // shards in fixed order 0..S-1.  The reservation predicate is monotone
  // in PM load, so a single pass is complete: load only grows during
  // reconciliation, and a VM rejected everywhere now stays infeasible.
  std::vector<std::size_t> spills;
  for (const auto& ranks : spill_ranks)
    spills.insert(spills.end(), ranks.begin(), ranks.end());
  std::sort(spills.begin(), spills.end());
  st.spills = spills.size();
  st.reconcile_passes = spills.empty() ? 0 : 1;

  for (std::size_t r : spills) {
    const std::size_t vi = order[r];
    const double need = inst.vms[vi].rb;
    std::size_t decision_checks = 0;
    bool placed = false;
    bool exhausted = false;
    for (std::size_t s = 0; s < shards && !placed && !exhausted; ++s) {
      std::size_t from = index.shard_begin(s);
      for (;;) {
        ++st.tree_descents;
        const std::size_t j = index.find_in_shard(s, need, from);
        if (j == ShardedAdmitIndex::npos) break;
        if (options.decision_budget != 0 &&
            decision_checks == options.decision_budget) {
          ++st.budget_exhausted;
          exhausted = true;
          break;
        }
        ++decision_checks;
        ++st.exact_checks;
        if (exact_fits(vi, j)) {
          commit(vi, j);
          chosen[r] = j;
          placed = true;
          ++st.reconcile_placed;
          break;
        }
        from = j + 1;
      }
    }
  }

  // Phase 3: materialize in global rank order so per-PM float aggregates
  // accumulate deterministically (and, at S = 1, in exactly the order the
  // incremental engine produced them).
  PlacementResult result{Placement(inst), {}};
  for (std::size_t r = 0; r < n_ranks; ++r) {
    const VmId vm{order[r]};
    if (chosen[r] != kUnplaced)
      result.placement.assign(vm, PmId{chosen[r]});
    else
      result.unplaced.push_back(vm);
  }

  detail::record_driver_counts(result, st.exact_checks);
  BURSTQ_COUNT("placement.tree_descents", st.tree_descents);
  BURSTQ_COUNT("placement.shard.tasks", st.shards);
  BURSTQ_COUNT("placement.shard.steals", st.steals);
  BURSTQ_COUNT("placement.shard.spills", st.spills);
  BURSTQ_COUNT("placement.shard.local_placed", st.local_placed);
  BURSTQ_COUNT("placement.shard.reconcile_placed", st.reconcile_placed);
  BURSTQ_COUNT("placement.shard.reconcile_passes", st.reconcile_passes);
  BURSTQ_COUNT("placement.shard.budget_exhausted", st.budget_exhausted);
  if constexpr (obs::kEnabled) {
    for (std::size_t s = 0; s < shards; ++s) {
      BURSTQ_HIST("placement.shard.fill", counters[s].placed);
      BURSTQ_EVENT(obs::EventLevel::kDecisions, "shard.fill", {"shard", s},
                   {"pms", index.shard_end(s) - index.shard_begin(s)},
                   {"placed", counters[s].placed},
                   {"spills", spill_ranks[s].size()});
    }
  }

  if (stats != nullptr) *stats = st;
  return result;
}

}  // namespace burstq
